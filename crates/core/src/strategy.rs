//! Parallel execution strategies: a distribution per layer (§V-C).
//!
//! A [`Strategy`] assigns every layer of a network a [`ProcGrid`] —
//! "an assignment of distributions to each layer" in the paper's words —
//! plus global execution knobs (batch-norm statistics scope). The
//! executor consumes a validated strategy; the optimizer in `fg-perf`
//! produces one.

use fg_nn::{LayerKind, NetworkSpec};
use fg_tensor::{GridWeights, ProcGrid, Shape4, TensorDist};

use crate::layers::BnMode;

/// A parallel execution strategy for a network.
#[derive(Debug, Clone, PartialEq)]
pub struct Strategy {
    /// Process grid per layer (same world size everywhere).
    pub grids: Vec<ProcGrid>,
    /// Batch-norm statistics scope.
    pub bn_mode: BnMode,
    /// Overlap halo exchanges with interior compute (§IV-A). On by
    /// default, as in the paper's measurements; results are bitwise
    /// identical either way.
    pub overlap_halo: bool,
    /// Reuse the per-layer communication plans compiled once in
    /// `DistExecutor::new` (plan-once/execute-many, the structure of the
    /// paper's implementation). Off recompiles every plan on every
    /// invocation — identical results, pure overhead — and exists for
    /// the `fg-bench` plan-caching ablation.
    pub plan_cache: bool,
    /// Per-rank relative speed weights for weighted re-decomposition
    /// (gray-failure mitigation / heterogeneity-aware placement). `None`
    /// or all-equal means the usual uniform blocked partition; otherwise
    /// every layer's distribution gives each rank an extent proportional
    /// to its weight along the split dimensions.
    pub rank_weights: Option<Vec<u64>>,
}

/// Why a strategy cannot execute a given network.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum StrategyError {
    /// grids.len() != number of layers.
    LengthMismatch {
        /// Layers in the network.
        layers: usize,
        /// Entries in the strategy.
        grids: usize,
    },
    /// A layer's grid has a different total size than the first layer's.
    WorldSizeMismatch {
        /// Offending layer.
        layer: usize,
    },
    /// Channel partitioning requested on a layer the executor runs with
    /// replicated channels (use `channel_filter` for §III-D parallelism).
    ChannelPartitionUnsupported {
        /// Offending layer.
        layer: usize,
    },
    /// The distribution leaves at least one rank without data.
    Unpopulated {
        /// Offending layer.
        layer: usize,
    },
    /// Per-sample layers (global pool, FC, classification loss) must
    /// keep their parent's grid; insert redistributions upstream instead.
    PerSampleGridMismatch {
        /// Offending layer.
        layer: usize,
    },
    /// The compiled communication schedule failed static verification
    /// (`FG_VERIFY=1`): the plans would deadlock, mis-shape a message,
    /// or mis-route a region. The detail is the first violation's full
    /// diagnostic (check kind, rank, layer, specifics).
    ScheduleUnsound {
        /// Offending layer.
        layer: usize,
        /// The first violation's diagnostic.
        detail: String,
    },
    /// `rank_weights` does not have exactly one weight per rank.
    WeightLengthMismatch {
        /// World size of the strategy.
        world: usize,
        /// Entries in `rank_weights`.
        weights: usize,
    },
    /// The static per-rank peak-memory bound exceeds the configured
    /// budget (`FG_MEM_BUDGET` bytes per rank, or an explicit budget
    /// passed to the optimizer). Raised *before* any execution: the
    /// bound comes from the tensor-liveness analysis over the compiled
    /// plans, so an over-budget strategy is rejected at plan time.
    MemBudgetExceeded {
        /// Static peak bytes per rank the strategy needs.
        needed: usize,
        /// Configured budget in bytes per rank.
        budget: usize,
    },
}

impl std::fmt::Display for StrategyError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            StrategyError::LengthMismatch { layers, grids } => {
                write!(f, "strategy has {grids} grids for {layers} layers")
            }
            StrategyError::WorldSizeMismatch { layer } => {
                write!(f, "layer {layer}: grid world size differs from the rest of the strategy")
            }
            StrategyError::ChannelPartitionUnsupported { layer } => {
                write!(
                    f,
                    "layer {layer}: executor does not partition channels (see channel_filter)"
                )
            }
            StrategyError::Unpopulated { layer } => {
                write!(f, "layer {layer}: distribution leaves ranks without data")
            }
            StrategyError::PerSampleGridMismatch { layer } => {
                write!(f, "layer {layer}: per-sample layers must inherit their parent's grid")
            }
            StrategyError::ScheduleUnsound { layer, detail } => {
                write!(f, "layer {layer}: schedule verification failed: {detail}")
            }
            StrategyError::WeightLengthMismatch { world, weights } => {
                write!(f, "strategy has {weights} rank weights for {world} ranks")
            }
            StrategyError::MemBudgetExceeded { needed, budget } => {
                write!(f, "strategy needs {needed} B/rank but the memory budget is {budget} B/rank")
            }
        }
    }
}

impl std::error::Error for StrategyError {}

impl Strategy {
    /// Same grid for every layer — the configuration the paper's
    /// end-to-end experiments use ("the same data decomposition for
    /// every layer in a given configuration", §VI-B).
    pub fn uniform(spec: &NetworkSpec, grid: ProcGrid) -> Strategy {
        Strategy {
            grids: vec![grid; spec.len()],
            bn_mode: BnMode::default(),
            overlap_halo: true,
            plan_cache: true,
            rank_weights: None,
        }
    }

    /// Pure sample parallelism over `p` ranks (the baseline).
    pub fn sample_parallel(spec: &NetworkSpec, p: usize) -> Strategy {
        Strategy::uniform(spec, ProcGrid::sample(p))
    }

    /// A model-free strategy for an arbitrary (including
    /// non-power-of-two) world size `p`: the near-square spatial
    /// factorizations of `p` first, then pure sample parallelism —
    /// returning the first that validates against `spec`/`batch`, or
    /// `None` when no uniform layout fits. This is the degradation
    /// rung's fallback when no performance-model replanner is wired in,
    /// so it must not assume `p` is a power of two: a world shrunk by a
    /// dead rank is usually odd-sized.
    pub fn spatial_fallback(spec: &NetworkSpec, batch: usize, p: usize) -> Option<Strategy> {
        if p == 0 {
            return None;
        }
        // Divisor pairs ph × pw = p, nearest-square first (smaller
        // aspect ratio ⇒ smaller halo surface).
        let mut pairs: Vec<(usize, usize)> =
            (1..=p).filter(|ph| p.is_multiple_of(*ph)).map(|ph| (ph, p / ph)).collect();
        pairs.sort_by_key(|(ph, pw)| (ph.abs_diff(*pw), *ph));
        for (ph, pw) in pairs {
            let s = Strategy::uniform(spec, ProcGrid::spatial(ph, pw));
            if s.validate(spec, batch).is_ok() {
                return Some(s);
            }
        }
        let s = Strategy::sample_parallel(spec, p);
        s.validate(spec, batch).is_ok().then_some(s)
    }

    /// Select the batch-norm scope.
    pub fn with_bn_mode(mut self, mode: BnMode) -> Strategy {
        self.bn_mode = mode;
        self
    }

    /// Enable or disable interior/boundary halo overlapping.
    pub fn with_overlap(mut self, overlap: bool) -> Strategy {
        self.overlap_halo = overlap;
        self
    }

    /// Enable or disable reuse of the precompiled per-layer plans.
    pub fn with_plan_caching(mut self, cache: bool) -> Strategy {
        self.plan_cache = cache;
        self
    }

    /// Attach per-rank speed weights: every layer's distribution becomes
    /// the weighted blocked partition derived from them. Equal weights
    /// normalize away, leaving the strategy identical to the unweighted
    /// one (`dist_for` then returns plain uniform distributions).
    pub fn with_rank_weights(mut self, weights: Vec<u64>) -> Strategy {
        self.rank_weights =
            if weights.iter().all(|&w| w == weights[0]) { None } else { Some(weights) };
        self
    }

    /// The distribution this strategy assigns to a tensor of `shape` on
    /// `grid` — uniform, or weighted when rank weights are attached.
    pub fn dist_for(&self, shape: Shape4, grid: ProcGrid) -> TensorDist {
        match &self.rank_weights {
            Some(w) if w.len() == grid.size() => {
                TensorDist::weighted(shape, grid, GridWeights::from_rank_weights(grid, w))
            }
            _ => TensorDist::new(shape, grid),
        }
    }

    /// World size the strategy targets.
    pub fn world_size(&self) -> usize {
        self.grids.first().map_or(0, |g| g.size())
    }

    /// Check the strategy against a network and batch size; returns the
    /// detailed reason on failure.
    pub fn validate(&self, spec: &NetworkSpec, batch: usize) -> Result<(), StrategyError> {
        if self.grids.len() != spec.len() {
            return Err(StrategyError::LengthMismatch {
                layers: spec.len(),
                grids: self.grids.len(),
            });
        }
        let world = self.world_size();
        if let Some(w) = &self.rank_weights {
            if w.len() != world {
                return Err(StrategyError::WeightLengthMismatch { world, weights: w.len() });
            }
        }
        let shapes = spec.shapes();
        for (id, l) in spec.layers().iter().enumerate() {
            let grid = self.grids[id];
            if grid.size() != world {
                return Err(StrategyError::WorldSizeMismatch { layer: id });
            }
            match &l.kind {
                LayerKind::GlobalAvgPool | LayerKind::Fc { .. } => {
                    if grid != self.grids[l.parents[0]] {
                        return Err(StrategyError::PerSampleGridMismatch { layer: id });
                    }
                }
                LayerKind::SoftmaxCrossEntropy => {
                    // Both shard (segmentation) and per-sample losses
                    // inherit the parent's layout.
                    if grid != self.grids[l.parents[0]] {
                        return Err(StrategyError::PerSampleGridMismatch { layer: id });
                    }
                    // A sharded loss (parent is not GAP/FC) must populate
                    // every rank with positions.
                    let parent_kind = &spec.layer(l.parents[0]).kind;
                    if !matches!(parent_kind, LayerKind::GlobalAvgPool | LayerKind::Fc { .. }) {
                        let (c, h, w) = shapes[id];
                        let dist = self.dist_for(Shape4::new(batch, c, h, w), grid);
                        if !dist.is_fully_populated() {
                            return Err(StrategyError::Unpopulated { layer: id });
                        }
                    }
                }
                _ => {
                    if grid.c != 1 {
                        return Err(StrategyError::ChannelPartitionUnsupported { layer: id });
                    }
                    let (c, h, w) = shapes[id];
                    let dist = self.dist_for(Shape4::new(batch, c, h, w), grid);
                    // Per-sample representations (H = W = 1 after GAP) are
                    // replicated, not sharded, so only sharded layers need
                    // the populated check.
                    if !per_sample_shape(shapes[id]) && !dist.is_fully_populated() {
                        return Err(StrategyError::Unpopulated { layer: id });
                    }
                    // Input to conv/pool must also populate.
                    if matches!(l.kind, LayerKind::Conv { .. } | LayerKind::Pool { .. }) {
                        let (pc, ph, pw) = shapes[l.parents[0]];
                        let pdist = self.dist_for(Shape4::new(batch, pc, ph, pw), grid);
                        if !pdist.is_fully_populated() {
                            return Err(StrategyError::Unpopulated { layer: id });
                        }
                    }
                }
            }
        }
        Ok(())
    }

    /// The paper's "GPUs per sample" for a layer's grid.
    pub fn ranks_per_sample(&self, layer: usize) -> usize {
        self.grids[layer].ranks_per_sample()
    }
}

/// Is this per-sample data (no spatial extent), handled in replicated
/// per-sample form by the executor?
pub fn per_sample_shape(shape: (usize, usize, usize)) -> bool {
    shape.1 == 1 && shape.2 == 1
}

#[cfg(test)]
mod tests {
    use super::*;

    fn toy_net() -> NetworkSpec {
        let mut net = NetworkSpec::new();
        let i = net.input("x", 3, 16, 16);
        let c = net.conv("c1", i, 8, 3, 1, 1);
        let b = net.batchnorm("bn", c);
        let r = net.relu("r", b);
        let g = net.global_avg_pool("gap", r);
        let f = net.fc("fc", g, 4);
        net.loss("loss", f);
        net
    }

    #[test]
    fn uniform_strategy_validates() {
        let net = toy_net();
        let s = Strategy::uniform(&net, ProcGrid::spatial(2, 2));
        assert_eq!(s.validate(&net, 2), Ok(()));
        let s = Strategy::sample_parallel(&net, 4);
        assert_eq!(s.validate(&net, 8), Ok(()));
    }

    #[test]
    fn length_and_world_size_checks() {
        let net = toy_net();
        let mut s = Strategy::uniform(&net, ProcGrid::sample(4));
        s.grids.pop();
        assert!(matches!(s.validate(&net, 8), Err(StrategyError::LengthMismatch { .. })));
        let mut s = Strategy::uniform(&net, ProcGrid::sample(4));
        s.grids[2] = ProcGrid::sample(2);
        assert!(matches!(s.validate(&net, 8), Err(StrategyError::WorldSizeMismatch { layer: 2 })));
    }

    #[test]
    fn unpopulated_detected() {
        let net = toy_net();
        // 8-way sample parallelism on a batch of 4: empty ranks.
        let s = Strategy::sample_parallel(&net, 8);
        assert!(matches!(s.validate(&net, 4), Err(StrategyError::Unpopulated { .. })));
    }

    #[test]
    fn channel_partition_rejected_by_executor_strategy() {
        let net = toy_net();
        let s = Strategy::uniform(&net, ProcGrid::new(1, 4, 1, 1));
        assert!(matches!(
            s.validate(&net, 4),
            Err(StrategyError::ChannelPartitionUnsupported { .. })
        ));
    }

    #[test]
    fn per_sample_layers_must_inherit_grid() {
        let net = toy_net();
        let mut s = Strategy::uniform(&net, ProcGrid::spatial(2, 2));
        let fc = net.find("fc").unwrap();
        s.grids[fc] = ProcGrid::sample(4);
        assert!(matches!(s.validate(&net, 2), Err(StrategyError::PerSampleGridMismatch { .. })));
    }

    #[test]
    fn spatial_fallback_handles_non_power_of_two_worlds() {
        let net = toy_net();
        // A world shrunk from 4 to 3 by a dead rank: 1×3 spatial strips.
        let s = Strategy::spatial_fallback(&net, 2, 3).expect("3 ranks must be viable");
        assert_eq!(s.world_size(), 3);
        assert_eq!(s.validate(&net, 2), Ok(()));
        // Composite odd worlds pick the near-square factorization.
        let s = Strategy::spatial_fallback(&net, 2, 15).expect("15 ranks must be viable");
        assert_eq!(s.world_size(), 15);
        assert_eq!(s.grids[0], ProcGrid::spatial(3, 5));
        // Degenerate requests yield None, not a panic.
        assert!(Strategy::spatial_fallback(&net, 2, 0).is_none());
    }

    #[test]
    fn spatial_fallback_validates_what_it_returns() {
        let net = toy_net();
        for p in 1..=9 {
            if let Some(s) = Strategy::spatial_fallback(&net, 4, p) {
                assert_eq!(s.validate(&net, 4), Ok(()), "fallback for p={p} must validate");
                assert_eq!(s.world_size(), p);
            }
        }
    }

    #[test]
    fn mixed_per_layer_strategy_validates() {
        // Spatial for the big early conv, sample for the rest — the
        // §III-C motivating case with a redistribution in between.
        let net = toy_net();
        let mut s = Strategy::uniform(&net, ProcGrid::sample(4));
        s.grids[net.find("c1").unwrap()] = ProcGrid::spatial(2, 2);
        s.grids[net.find("x").unwrap()] = ProcGrid::spatial(2, 2);
        // bn onwards keep sample(4); gap/fc/loss inherit sample(4). Batch
        // must be ≥ 4 for the sample-parallel layers.
        assert_eq!(s.validate(&net, 4), Ok(()));
    }
}
