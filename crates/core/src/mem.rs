//! Static tensor-liveness analysis: verified per-rank memory bounds and
//! executable memory plans.
//!
//! `DistExecutor::new` compiles every rank's per-layer plans before a
//! single step runs — so, exactly as the communication schedule is known
//! statically (see [`crate::verify`]), the *memory* schedule is too.
//! This module walks a rank's compiled forward/backward schedule in the
//! scheduler's exact order and records every buffer the step touches as
//! a [`LiveInterval`] on the step's tick line (layer `L` of an `n`-layer
//! network runs forward at tick `L` and backward at tick `2n - 1 - L`):
//!
//! * **persistent state** — parameters, gradients, optimizer momentum
//!   (3× the parameter bytes), live for the whole step;
//! * **activations** — each layer's output from its forward tick until
//!   its backward tick, plus privately-saved redistributed inputs;
//! * **error signals** — a layer's dL/dy accumulator from the first
//!   child that contributes until the layer's own backward tick;
//! * **haloed windows** — the kept forward input window and the
//!   transient backward dy window (the two arena-managed classes);
//! * **staging** — halo pack/unpack payloads, §III-C shuffle payloads
//!   (forward and adjoint), flattened gradient-allreduce staging, and
//!   the integrity layer's replay-window budget when it is on.
//!
//! From the interval list come (a) an exact per-rank peak
//! ([`fg_tensor::peak_bytes`]) — the static bound every executed step's
//! arena high-water mark is asserted against; (b) a [`MemPlan`]
//! (interval-graph coloring) that [`crate::DistExecutor`]'s arena entry
//! points execute; and (c) the soundness checks: no two live-overlapping
//! intervals share a slot, no slot or arena is undersized, no staging
//! interval understates its plan's payload, and shuffle/halo plans
//! conserve bytes across ranks. Mutation tests (`mem_mutations.rs`)
//! prove each corruption class produces a named violation.
//!
//! Because the analysis is pure plan geometry — no tensors, no threads —
//! it runs at discrete-event scale: [`analyze_strategy`] compiles plans
//! only for sampled ranks, so per-rank bounds at 2048–32768 ranks cost
//! seconds, giving the memory strong-scaling curves next to the paper's
//! Tables I–III (`repro -- memscale`).

use std::cell::RefCell;
use std::fmt;
use std::time::{Duration, Instant};

use fg_comm::collectives::block_range;
use fg_nn::{init_params, LayerKind, NetworkSpec};
use fg_tensor::{
    check_mem_plan, peak_bytes, BufClass, LiveInterval, MemPlan, MemPlanIssue, StepArena, ELT_BYTES,
};

use crate::layers::{build_layers, DistLayer, LayerPlan};
use crate::strategy::{Strategy, StrategyError};

/// The static memory bound for one rank.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RankMemBound {
    /// The rank analyzed.
    pub rank: usize,
    /// Exact peak of all live bytes over the step's tick line — the
    /// bound `measured_peak <= static_bound` is checked against.
    pub peak_bytes: usize,
    /// The whole-step persistent term (params + grads + momentum).
    pub persistent_bytes: usize,
    /// Size of the rank's step arena (managed windows only).
    pub arena_bytes: usize,
}

/// Which memory-soundness check a violation came from.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum MemCheckKind {
    /// Two live-overlapping intervals share an arena slot.
    SlotOverlap,
    /// An interval exceeds its slot's declared capacity.
    SlotUndersized,
    /// The declared arena does not cover its slots.
    ArenaUndersized,
    /// A staging interval (halo or shuffle) understates the bytes its
    /// plan actually moves.
    StagingUnderstated,
    /// A shuffle or halo plan does not conserve bytes across ranks
    /// (sent total != received total).
    ByteConservation,
}

impl MemCheckKind {
    /// Short label for diagnostics.
    pub fn label(self) -> &'static str {
        match self {
            MemCheckKind::SlotOverlap => "slot-overlap",
            MemCheckKind::SlotUndersized => "slot-undersized",
            MemCheckKind::ArenaUndersized => "arena-undersized",
            MemCheckKind::StagingUnderstated => "staging-understated",
            MemCheckKind::ByteConservation => "byte-conservation",
        }
    }
}

/// One memory-soundness violation, named by rank and layer.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct MemViolation {
    /// Which check failed.
    pub kind: MemCheckKind,
    /// Rank whose plan is unsound.
    pub rank: usize,
    /// Offending layer.
    pub layer: usize,
    /// Offending layer's name.
    pub layer_name: String,
    /// Full diagnostic.
    pub detail: String,
}

impl fmt::Display for MemViolation {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "[{}] rank {} layer {} ({}): {}",
            self.kind.label(),
            self.rank,
            self.layer,
            self.layer_name,
            self.detail
        )
    }
}

/// Outcome of one memory analysis over a set of ranks.
#[derive(Debug, Clone)]
pub struct MemReport {
    /// Per-rank bounds, in the order the ranks were analyzed.
    pub bounds: Vec<RankMemBound>,
    /// Every violation found; empty for a sound set of memory plans.
    pub violations: Vec<MemViolation>,
    /// Wall time the analysis took.
    pub wall: Duration,
}

impl MemReport {
    /// No violations?
    pub fn is_clean(&self) -> bool {
        self.violations.is_empty()
    }

    /// The worst per-rank peak — what a memory budget is compared to.
    pub fn max_peak(&self) -> usize {
        self.bounds.iter().map(|b| b.peak_bytes).max().unwrap_or(0)
    }
}

impl fmt::Display for MemReport {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{} rank(s), max peak {} B: ", self.bounds.len(), self.max_peak())?;
        if self.is_clean() {
            write!(f, "clean")
        } else {
            writeln!(f, "{} violation(s)", self.violations.len())?;
            for v in &self.violations {
                writeln!(f, "  {v}")?;
            }
            Ok(())
        }
    }
}

/// One rank's executable memory state: the colored plan, the arena that
/// executes it, and the static bound the arena's high-water mark must
/// stay under. Built by `DistExecutor::rank_arena`; consumed by the
/// `*_arena` execution entry points.
#[derive(Debug)]
pub struct RankArena {
    /// The rank this arena serves.
    pub rank: usize,
    /// Slot assignments and sizing (the coloring's output).
    pub plan: MemPlan,
    /// The runtime arena executing the plan. `RefCell` because layer
    /// drivers check buffers in and out through shared `ArenaSlot`
    /// handles during a pass.
    pub pool: RefCell<StepArena>,
    /// The rank's static peak bound in bytes (all classes, not just the
    /// arena-managed ones), so `measured_peak() <= static_bound` holds a
    /// fortiori for the arena's subset.
    pub static_bound: usize,
}

impl RankArena {
    /// High-water mark of arena bytes checked out since construction.
    pub fn measured_peak(&self) -> usize {
        self.pool.borrow().measured_peak()
    }
}

/// The per-rank memory budget from `FG_MEM_BUDGET` (bytes per rank), if
/// set and parseable.
pub fn mem_budget_from_env() -> Option<usize> {
    std::env::var("FG_MEM_BUDGET").ok().and_then(|v| v.trim().parse::<usize>().ok())
}

/// The integrity replay-window budget the analyzer charges when
/// `FG_COMM_INTEGRITY=1`: mirrors `IntegrityState::new`'s bound.
fn replay_budget_bytes() -> usize {
    if std::env::var("FG_COMM_INTEGRITY").map(|v| v == "1").unwrap_or(false) {
        std::env::var("FG_COMM_REPLAY_BYTES")
            .ok()
            .and_then(|v| v.parse::<usize>().ok())
            .unwrap_or(fg_comm::DEFAULT_REPLAY_BYTES)
    } else {
        0
    }
}

/// Bytes of layer `id`'s output activation on `rank`: the local box of
/// its sharded distribution, or the `(n_loc, C, H, W)` per-sample
/// replicated block after global average pooling.
fn act_bytes(
    layers: &[Box<dyn DistLayer>],
    shapes: &[(usize, usize, usize)],
    batch: usize,
    rank: usize,
    id: usize,
) -> usize {
    let base = layers[id].base();
    match &base.out_dist {
        Some(od) => od.local_box(rank).len() * ELT_BYTES,
        None => {
            let n_loc = block_range(batch, base.grid.n, base.grid.coords(rank)[0]).len();
            let (c, h, w) = shapes[id];
            n_loc * c * h * w * ELT_BYTES
        }
    }
}

/// Record one rank's complete tensor-liveness interval list by walking
/// its compiled plans in the scheduler's exact order — the symbolic-walk
/// mirror of `run_forward`/`run_backward`, as `verify::record_rank` is
/// for the communication schedule. `plans` is this rank's plan per
/// layer.
pub(crate) fn rank_intervals(
    spec: &NetworkSpec,
    layers: &[Box<dyn DistLayer>],
    plans: &[LayerPlan],
    param_elems: &[usize],
    batch: usize,
    rank: usize,
) -> Vec<LiveInterval> {
    let n = layers.len();
    let last_tick = 2 * n - 1;
    let fwd = |id: usize| id;
    let bwd = |id: usize| 2 * n - 1 - id;
    let shapes = spec.shapes();
    let mut ivs: Vec<LiveInterval> = Vec::new();
    let mut push = |layer: usize, class: BufClass, bytes: usize, start: usize, end: usize| {
        if bytes > 0 {
            ivs.push(LiveInterval { layer, class, bytes, start, end });
        }
    };

    // Whole-step state: parameters + gradients + momentum per parameter
    // layer, and the integrity replay budget when that layer is on.
    for (id, &elems) in param_elems.iter().enumerate() {
        push(id, BufClass::Persistent, 3 * elems * ELT_BYTES, 0, last_tick);
    }
    push(0, BufClass::ReplayWindow, replay_budget_bytes(), 0, last_tick);

    // Forward: per layer, input shuffles (staging transient at the
    // forward tick; the redistributed copy saved for backward when the
    // layer reads its input there), then the layer's own window, halo
    // staging, BN statistics, and output activation.
    for (id, layer) in layers.iter().enumerate() {
        let base = layer.base();
        let plan = &plans[id];
        for shuffle in &plan.in_shuffles {
            let Some(sp) = shuffle.as_ref() else { continue };
            let stage = sp.send_elements() + sp.recvs().iter().map(|(_, b)| b.len()).sum::<usize>();
            push(id, BufClass::ShuffleStage, stage * ELT_BYTES, fwd(id), fwd(id));
            if layer.needs_input_for_backward() {
                // The privately-saved redistributed input (one per
                // shuffled edge; sized by the layer's input
                // distribution).
                let saved =
                    base.in_dist.as_ref().map(|d| d.local_box(rank).len() * ELT_BYTES).unwrap_or(0);
                push(id, BufClass::Act, saved, fwd(id), bwd(id));
            }
        }
        let bufs = layer.memory_model(rank);
        // Kept windows stay in the pass until the end-of-step sweep
        // returns them to their slots (backward reads them at `bwd(id)`
        // but the pass owns them to the last tick), so their slots must
        // be exclusive for the whole step.
        push(id, BufClass::Window, bufs.window_elems * ELT_BYTES, fwd(id), last_tick);
        if let Some(h) = plan.x_halo.as_ref() {
            let stage = h.send_elements() + h.recv_elements();
            push(id, BufClass::HaloStage, stage * ELT_BYTES, fwd(id), fwd(id));
        }
        if matches!(base.kind, LayerKind::BatchNorm) {
            let c = shapes[id].0;
            push(id, BufClass::BnStats, 2 * c * ELT_BYTES, fwd(id), bwd(id));
        }
        if layer.seeds_backward() {
            // The saved loss gradient stays in the pass for the whole
            // backward, sized like the parent's activation it seeds.
            let p = base.parents[0];
            push(id, BufClass::Err, act_bytes(layers, &shapes, batch, rank, p), fwd(id), last_tick);
        }
        push(id, BufClass::Act, act_bytes(layers, &shapes, batch, rank, id), fwd(id), bwd(id));
    }

    // Backward: reverse order, mirroring `run_backward`'s signal flow.
    // A layer's error accumulator becomes live at the backward tick of
    // the first child that contributes to it and dies at the layer's own
    // backward tick (where `dout[id].take()` consumes it).
    let mut has_signal = vec![false; n];
    let mut err_start = vec![0usize; n];
    for (id, layer) in layers.iter().enumerate().rev() {
        let base = layer.base();
        if layer.seeds_backward() {
            let p = base.parents[0];
            if !has_signal[p] {
                has_signal[p] = true;
                err_start[p] = bwd(id);
            }
            continue;
        }
        if !has_signal[id] {
            continue;
        }
        push(
            id,
            BufClass::Err,
            act_bytes(layers, &shapes, batch, rank, id),
            err_start[id],
            bwd(id),
        );
        if base.parents.is_empty() {
            continue;
        }
        let plan = &plans[id];
        let bufs = layer.memory_model(rank);
        push(id, BufClass::DyWindow, bufs.dy_window_elems * ELT_BYTES, bwd(id), bwd(id));
        if let Some(h) = plan.dy_halo.as_ref() {
            let stage = h.send_elements() + h.recv_elements();
            push(id, BufClass::HaloStage, stage * ELT_BYTES, bwd(id), bwd(id));
        }
        // Gradient + flattened allreduce staging for parameter layers.
        push(id, BufClass::GradStage, 2 * param_elems[id] * ELT_BYTES, bwd(id), bwd(id));
        for (i, &p) in base.parents.iter().enumerate() {
            if let Some(sp) = plan.back_shuffles[i].as_ref() {
                let stage =
                    sp.send_elements() + sp.recvs().iter().map(|(_, b)| b.len()).sum::<usize>();
                push(id, BufClass::ShuffleStage, stage * ELT_BYTES, bwd(id), bwd(id));
            }
            if !has_signal[p] {
                has_signal[p] = true;
                err_start[p] = bwd(id);
            }
        }
    }
    ivs
}

/// Map one rank's [`MemPlanIssue`]s to named violations.
fn plan_violations(
    rank: usize,
    layers: &[Box<dyn DistLayer>],
    plan: &MemPlan,
    out: &mut Vec<MemViolation>,
) {
    let name = |id: usize| {
        layers.get(id).map(|l| l.base().name.clone()).unwrap_or_else(|| "<unknown>".into())
    };
    for issue in check_mem_plan(plan) {
        let (kind, layer) = match &issue {
            MemPlanIssue::SlotOverlap { a, .. } => (MemCheckKind::SlotOverlap, a.layer),
            MemPlanIssue::SlotUndersized { interval, .. } => {
                (MemCheckKind::SlotUndersized, interval.layer)
            }
            MemPlanIssue::ArenaUndersized { .. } => (
                MemCheckKind::ArenaUndersized,
                // Attribute to the largest managed interval — the most
                // plausible victim of an undersized arena.
                plan.assigns
                    .iter()
                    .max_by_key(|a| a.interval.bytes)
                    .map(|a| a.interval.layer)
                    .unwrap_or(0),
            ),
        };
        out.push(MemViolation {
            kind,
            rank,
            layer,
            layer_name: name(layer),
            detail: issue.to_string(),
        });
    }
}

/// Flag staging intervals whose recorded bytes understate what the
/// rank's plans actually move: every halo/shuffle staging interval is
/// compared against a freshly recorded walk of the same plans. (On an
/// unmutated analysis the two lists are identical, so this never fires
/// in production; mutation tests corrupt `ivs` to prove the check
/// catches understatement.)
fn staging_violations(
    rank: usize,
    layers: &[Box<dyn DistLayer>],
    ivs: &[LiveInterval],
    fresh: &[LiveInterval],
    out: &mut Vec<MemViolation>,
) {
    use std::collections::BTreeMap;
    let staged = |list: &[LiveInterval]| {
        let mut m: BTreeMap<(usize, BufClass, usize, usize), usize> = BTreeMap::new();
        for iv in list {
            if matches!(iv.class, BufClass::HaloStage | BufClass::ShuffleStage) {
                *m.entry((iv.layer, iv.class, iv.start, iv.end)).or_insert(0) += iv.bytes;
            }
        }
        m
    };
    let got = staged(ivs);
    for (key @ (layer, class, start, end), &want) in &staged(fresh) {
        let have = got.get(key).copied().unwrap_or(0);
        if have < want {
            out.push(MemViolation {
                kind: MemCheckKind::StagingUnderstated,
                rank,
                layer: *layer,
                layer_name: layers[*layer].base().name.clone(),
                detail: format!(
                    "{} staging at ticks [{start}, {end}] records {have} B but the plan moves \
                     {want} B",
                    class.label()
                ),
            });
        }
    }
}

/// Check byte conservation of every shuffle and halo plan across the
/// full world: what all ranks send for a layer's exchange must equal
/// what all ranks expect to receive. Requires the complete plan set
/// (`plans[layer][rank]` for every rank).
pub(crate) fn check_conservation(
    layers: &[Box<dyn DistLayer>],
    plans: &[Vec<LayerPlan>],
    out: &mut Vec<MemViolation>,
) {
    for (id, layer) in layers.iter().enumerate() {
        let per_rank = &plans[id];
        let name = &layer.base().name;
        let mut flag = |what: &str, sent: usize, recv: usize| {
            if sent != recv {
                out.push(MemViolation {
                    kind: MemCheckKind::ByteConservation,
                    rank: 0,
                    layer: id,
                    layer_name: name.clone(),
                    detail: format!(
                        "{what}: world sends {} B but expects {} B",
                        sent * ELT_BYTES,
                        recv * ELT_BYTES
                    ),
                });
            }
        };
        for kind in ["x_halo", "dy_halo"] {
            let (mut sent, mut recv) = (0usize, 0usize);
            for plan in per_rank {
                let h = if kind == "x_halo" { &plan.x_halo } else { &plan.dy_halo };
                if let Some(h) = h {
                    sent += h.send_elements();
                    recv += h.recv_elements();
                }
            }
            flag(kind, sent, recv);
        }
        let n_edges = layer.base().parents.len();
        for edge in 0..n_edges {
            for dir in ["in_shuffle", "back_shuffle"] {
                let (mut sent, mut recv) = (0usize, 0usize);
                for plan in per_rank {
                    let slot = if dir == "in_shuffle" {
                        &plan.in_shuffles[edge]
                    } else {
                        &plan.back_shuffles[edge]
                    };
                    if let Some(sp) = slot.as_ref() {
                        sent += sp.send_elements();
                        recv += sp.recvs().iter().map(|(_, b)| b.len()).sum::<usize>();
                    }
                }
                flag(&format!("{dir} edge {edge}"), sent, recv);
            }
        }
    }
}

/// Analyze the given ranks of a compiled plan set: record each rank's
/// intervals (through `mutate_intervals`), color them into a plan
/// (through `mutate_plan`), and run every soundness check. The hooks
/// exist for mutation tests; production passes `|_, _| {}` for both.
/// Conservation runs only when `full_plans` carries every rank.
#[allow(clippy::too_many_arguments)]
pub(crate) fn analyze_ranks(
    spec: &NetworkSpec,
    layers: &[Box<dyn DistLayer>],
    rank_plans: &dyn Fn(usize) -> Vec<LayerPlan>,
    full_plans: Option<&[Vec<LayerPlan>]>,
    batch: usize,
    ranks: &[usize],
    mutate_intervals: &dyn Fn(usize, &mut Vec<LiveInterval>),
    mutate_plan: &dyn Fn(usize, &mut MemPlan),
) -> MemReport {
    let start = Instant::now();
    let param_elems: Vec<usize> = init_params(spec, 0).iter().map(|p| p.len()).collect();
    let mut bounds = Vec::with_capacity(ranks.len());
    let mut violations = Vec::new();
    for &rank in ranks {
        let plans = rank_plans(rank);
        let fresh = rank_intervals(spec, layers, &plans, &param_elems, batch, rank);
        let mut ivs = fresh.clone();
        mutate_intervals(rank, &mut ivs);
        let mut plan = MemPlan::color(&ivs);
        mutate_plan(rank, &mut plan);
        plan_violations(rank, layers, &plan, &mut violations);
        staging_violations(rank, layers, &ivs, &fresh, &mut violations);
        let persistent = ivs
            .iter()
            .filter(|iv| iv.class == BufClass::Persistent)
            .map(|iv| iv.bytes)
            .sum::<usize>();
        bounds.push(RankMemBound {
            rank,
            peak_bytes: peak_bytes(&ivs),
            persistent_bytes: persistent,
            arena_bytes: plan.arena_bytes,
        });
    }
    if let Some(plans) = full_plans {
        check_conservation(layers, plans, &mut violations);
    }
    MemReport { bounds, violations, wall: start.elapsed() }
}

/// Which ranks to analyze for a world of `world` ranks: all of them for
/// small worlds, a corner/quartile sample at discrete-event scale
/// (per-rank bounds vary only with grid position, so the sample brackets
/// the extremes).
pub fn sample_ranks(world: usize) -> Vec<usize> {
    if world <= 64 {
        (0..world).collect()
    } else {
        let mut r = vec![0, world / 4, world / 2, 3 * world / 4, world - 1];
        r.dedup();
        r
    }
}

/// Static per-rank memory bounds for `strategy` on `spec` at batch
/// `batch`, analyzing only `ranks` — plan compilation and the symbolic
/// walk are per-rank, so bounds at 2048–32768 ranks (the paper's
/// Tables I–III scales) cost seconds without compiling the full world.
pub fn analyze_strategy(
    spec: &NetworkSpec,
    strategy: &Strategy,
    batch: usize,
    ranks: &[usize],
) -> Result<MemReport, StrategyError> {
    strategy.validate(spec, batch)?;
    let layers = build_layers(spec, strategy, batch);
    let rank_plans = |rank: usize| layers.iter().map(|l| l.compile_plan(rank)).collect::<Vec<_>>();
    Ok(analyze_ranks(spec, &layers, &rank_plans, None, batch, ranks, &|_, _| {}, &|_, _| {}))
}
