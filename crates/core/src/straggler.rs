//! Gray-failure (straggler) detection with distributed agreement.
//!
//! A *gray failure* is a node that still answers — no dead link, no
//! corrupted payload, no NaN in sight — but answers slowly: a thermally
//! throttled GPU, a flaky NIC negotiating down, a neighbor VM stealing
//! cycles. In bulk-synchronous training every collective runs at the
//! pace of the slowest rank, so one gray node silently taxes the whole
//! world; at the paper's scales (hundreds to thousands of ranks) the
//! expected number of such nodes per run is not small. [`StragglerGuard`]
//! is the detection half of the mitigation ladder in
//! [`crate::resilient::resilient_train`]:
//!
//! 1. **Measurement.** Each rank measures its own *busy time* per step —
//!    [`fg_comm::Communicator::busy_nanos`], the time spent computing
//!    between communication calls, which by construction excludes time
//!    blocked waiting for other ranks (a rank stalled on a straggler's
//!    sends would otherwise look slow itself, and the world would
//!    accuse the victim).
//! 2. **Exchange.** The per-step busy deltas are shared with a single
//!    `Sum`-allreduce of a world-sized one-hot vector: element `r` is
//!    nonzero only in rank `r`'s contribution, so every element of the
//!    reduced vector has exactly one nonzero operand and the result is
//!    **bitwise identical on every rank** regardless of reduction
//!    order. Identical inputs drive identical EMAs drive identical
//!    verdicts — the same replicated-decision discipline as
//!    [`crate::guard::StepGuard`].
//! 3. **Criterion.** Each rank's busy-time EMA is compared to the world
//!    *median* EMA (robust: up to half the world can slow down without
//!    dragging the baseline). A rank whose ratio exceeds
//!    [`StragglerConfig::threshold`] for [`StragglerConfig::patience`]
//!    consecutive observations, after [`StragglerConfig::warmup`]
//!    observations, is flagged.
//! 4. **Agreement.** Verdicts are already replicated by construction,
//!    but the flag is still confirmed with a `Max`-allreduce (the
//!    [`crate::guard::StepGuard::agree_any`] pattern) so a divergent
//!    rank cannot unilaterally unwind the world — the collective is the
//!    synchronization point at which every rank commits to the same
//!    mitigation at the same step.
//!
//! What happens to a flagged rank is the driver's decision
//! ([`StragglerConfig::action_for`]): re-decompose the spatial
//! partition with weights inversely proportional to the measured EMAs
//! ([`weights_from_ema`] feeding
//! [`crate::Strategy::with_rank_weights`]), or — past
//! [`StragglerConfig::evict_ratio`], or once the rebalance budget is
//! spent — softly evict the rank through the elastic-degradation rung.

use fg_comm::{Collectives, Communicator, ReduceOp};

/// Tuning knobs for straggler detection and the mitigation ladder.
#[derive(Debug, Clone)]
pub struct StragglerConfig {
    /// Flag a rank whose busy-time EMA exceeds this multiple of the
    /// world median EMA.
    pub threshold: f64,
    /// Escalate straight to eviction when the flagged ratio is at or
    /// above this multiple — a node this slow would dominate the
    /// weighted partition's critical path even after rebalancing.
    pub evict_ratio: f64,
    /// Observations before verdicts activate (the first steps measure
    /// cold caches and lazy allocation, not the node).
    pub warmup: u64,
    /// Consecutive over-threshold observations required to flag — a
    /// one-step hiccup (page fault, GC pause) is not a gray failure.
    pub patience: u64,
    /// EMA decay: `ema ← decay·ema + (1 − decay)·busy`.
    pub ema_decay: f64,
    /// Weighted re-decompositions tolerated before a still-slow rank is
    /// evicted instead.
    pub max_rebalances: usize,
}

impl Default for StragglerConfig {
    fn default() -> Self {
        StragglerConfig {
            threshold: 2.0,
            evict_ratio: 6.0,
            warmup: 2,
            patience: 2,
            ema_decay: 0.5,
            max_rebalances: 1,
        }
    }
}

/// The mitigation rung [`StragglerConfig::action_for`] selects for a
/// confirmed straggler.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum StragglerAction {
    /// Re-decompose the partition with speed weights; the slow rank
    /// keeps less work and the world stops waiting on it.
    Rebalance,
    /// Retire the rank through the elastic-degradation rung: it is too
    /// slow to carry any useful share (or rebalancing was already
    /// tried).
    Evict,
}

/// A confirmed straggler verdict — identical on every rank of the world
/// at the same step.
#[derive(Debug, Clone)]
pub struct StragglerFlag {
    /// The flagged rank.
    pub rank: usize,
    /// Its busy-time EMA as a multiple of the world median.
    pub ratio: f64,
    /// The full per-rank EMA vector at the flagging observation — the
    /// measurement the weighted re-decomposition is derived from.
    pub ema: Vec<f64>,
}

impl StragglerConfig {
    /// Read the `FG_STRAGGLER` environment knob: `1`/`true` enables
    /// detection with default tuning.
    pub fn from_env() -> Option<StragglerConfig> {
        match std::env::var("FG_STRAGGLER") {
            Ok(v) if v == "1" || v.eq_ignore_ascii_case("true") => Some(StragglerConfig::default()),
            _ => None,
        }
    }

    /// The mitigation rung for a confirmed flag: rebalance while the
    /// budget lasts and the slowdown is moderate, evict otherwise.
    pub fn action_for(&self, ratio: f64, rebalances_done: usize) -> StragglerAction {
        if ratio >= self.evict_ratio || rebalances_done >= self.max_rebalances {
            StragglerAction::Evict
        } else {
            StragglerAction::Rebalance
        }
    }
}

/// Per-step straggler detector with replicated state (see module docs).
#[derive(Debug, Clone)]
pub struct StragglerGuard {
    cfg: StragglerConfig,
    /// Per-rank busy-time EMA, identical on every rank.
    ema: Vec<f64>,
    /// Consecutive over-threshold observations per rank.
    over: Vec<u64>,
    /// Observations folded in so far.
    steps: u64,
}

impl StragglerGuard {
    /// A fresh detector for a `world`-rank run.
    pub fn new(cfg: StragglerConfig, world: usize) -> StragglerGuard {
        assert!(world > 0, "empty world has no stragglers");
        assert!(cfg.threshold > 1.0, "a threshold ≤ 1 would flag the median itself");
        StragglerGuard { cfg, ema: vec![0.0; world], over: vec![0; world], steps: 0 }
    }

    /// Observations folded in so far.
    pub fn observations(&self) -> u64 {
        self.steps
    }

    /// The per-rank busy-time EMA vector (identical on every rank).
    pub fn ema(&self) -> &[f64] {
        &self.ema
    }

    /// Per-rank EMA as a multiple of the world median EMA. All 1.0
    /// before the first observation.
    pub fn ratios(&self) -> Vec<f64> {
        let med = median(&self.ema);
        if med <= 0.0 {
            return vec![1.0; self.ema.len()];
        }
        self.ema.iter().map(|&e| e / med).collect()
    }

    /// Fold in this rank's busy-time delta for the step just committed
    /// and return the world's agreed verdict: `Some` iff some rank has
    /// persistently exceeded the threshold. Collective — every rank
    /// must call it at the same point with its own measurement, and
    /// every rank receives the identical verdict.
    pub fn observe<C: Communicator>(
        &mut self,
        comm: &C,
        busy_delta_nanos: u64,
    ) -> Option<StragglerFlag> {
        let world = comm.size();
        assert_eq!(world, self.ema.len(), "guard sized for a different world");
        // One-hot exchange: element r has exactly one nonzero
        // contributor, so the Sum-allreduce is bitwise identical on
        // every rank — replicated inputs for a replicated decision.
        let mut onehot = vec![0.0f64; world];
        onehot[comm.rank()] = busy_delta_nanos as f64;
        let times = comm.allreduce(&onehot, ReduceOp::Sum);
        for (e, &t) in self.ema.iter_mut().zip(&times) {
            *e = if self.steps == 0 {
                t
            } else {
                self.cfg.ema_decay * *e + (1.0 - self.cfg.ema_decay) * t
            };
        }
        self.steps += 1;
        let ratios = self.ratios();
        // Mirror the slowness picture into the comm layer so a watchdog
        // trip can say "waiting on rank 3, which is 4× slow" instead of
        // reporting a bare deadlock.
        comm.note_rank_slowness(&ratios);
        if self.steps <= self.cfg.warmup {
            return None;
        }
        for (r, &ratio) in ratios.iter().enumerate() {
            if ratio > self.cfg.threshold {
                self.over[r] += 1;
            } else {
                self.over[r] = 0;
            }
        }
        // The worst offender among ranks past their patience, if any.
        let local: Option<usize> = (0..world)
            .filter(|&r| self.over[r] >= self.cfg.patience)
            .max_by(|&a, &b| ratios[a].total_cmp(&ratios[b]));
        // Agreement confirm (StepGuard pattern): Max over `rank + 1`
        // (0 = no flag) commits every rank to the same verdict at the
        // same collective. The verdicts are already identical by
        // construction; the collective is the synchronization barrier
        // that makes acting on them safe.
        let word = local.map_or(0u32, |r| r as u32 + 1);
        let agreed = comm.allreduce(&[word], ReduceOp::Max)[0];
        if agreed == 0 {
            return None;
        }
        let rank = (agreed - 1) as usize;
        debug_assert_eq!(local, Some(rank), "one-hot exchange must replicate verdicts");
        // One event per world, not per rank: only rank 0 records it.
        if comm.rank() == 0 {
            comm.note_straggler_flag();
        }
        Some(StragglerFlag { rank, ratio: ratios[rank], ema: self.ema.clone() })
    }
}

/// Per-rank partition weights from measured busy-time EMAs: a rank's
/// share of work should be proportional to its speed, i.e. inversely
/// proportional to its per-step busy time. Quantized so the fastest
/// rank gets weight `24` (≈4 % resolution — fine enough to express any
/// plausible slowdown, coarse enough that measurement jitter does not
/// churn the partition) and no rank drops below 1.
pub fn weights_from_ema(ema: &[f64]) -> Vec<u64> {
    const SCALE: f64 = 24.0;
    // Guard against degenerate measurements (an idle rank's busy time
    // can round to zero nanoseconds).
    let min = ema.iter().copied().fold(f64::INFINITY, f64::min).max(1.0);
    ema.iter()
        .map(|&e| (((SCALE * min / e.max(1.0)).round() as u64).max(1)).min(SCALE as u64))
        .collect()
}

/// Median of `v` (mean of the middle pair for even lengths).
fn median(v: &[f64]) -> f64 {
    let mut s = v.to_vec();
    s.sort_by(f64::total_cmp);
    let n = s.len();
    if n == 0 {
        return 0.0;
    }
    if n % 2 == 1 {
        s[n / 2]
    } else {
        0.5 * (s[n / 2 - 1] + s[n / 2])
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use fg_comm::run_ranks;

    fn cfg() -> StragglerConfig {
        StragglerConfig { warmup: 2, patience: 2, ..StragglerConfig::default() }
    }

    #[test]
    fn uniform_world_never_flags_and_ratios_are_unity() {
        let verdicts = run_ranks(4, |comm| {
            let mut g = StragglerGuard::new(cfg(), 4);
            let mut flags = 0;
            for _ in 0..10 {
                if g.observe(comm, 1_000_000).is_some() {
                    flags += 1;
                }
            }
            (flags, g.ratios())
        });
        for (flags, ratios) in verdicts {
            assert_eq!(flags, 0, "uniform busy times flagged a straggler");
            assert!(ratios.iter().all(|&r| (r - 1.0).abs() < 1e-12), "ratios: {ratios:?}");
        }
    }

    #[test]
    fn persistent_straggler_flags_after_warmup_plus_patience_on_every_rank() {
        let verdicts = run_ranks(4, |comm| {
            let mut g = StragglerGuard::new(cfg(), 4);
            // Rank 2 runs 3x slow from the start.
            let mine = if comm.rank() == 2 { 3_000_000 } else { 1_000_000 };
            let mut flagged_at = None;
            for step in 1..=10u64 {
                if let Some(f) = g.observe(comm, mine) {
                    flagged_at = Some((step, f));
                    break;
                }
            }
            flagged_at
        });
        for v in verdicts {
            // warmup 2 observations, then patience 2: flag on observation 4.
            let (step, flag) = v.expect("a persistent 3x straggler must be flagged");
            assert_eq!(step, 4);
            assert_eq!(flag.rank, 2);
            assert!((flag.ratio - 3.0).abs() < 1e-9, "ratio: {}", flag.ratio);
            assert_eq!(flag.ema.len(), 4);
        }
    }

    #[test]
    fn transient_hiccups_reset_patience_and_never_flag() {
        let verdicts = run_ranks(4, |comm| {
            let mut g = StragglerGuard::new(
                StragglerConfig { warmup: 1, patience: 2, ema_decay: 0.0, ..cfg() },
                4,
            );
            let mut flags = 0;
            for step in 0..12u64 {
                // Rank 1 spikes on alternating steps only: over-threshold
                // observations never run `patience` deep.
                let mine = if comm.rank() == 1 && step % 2 == 0 { 5_000_000 } else { 1_000_000 };
                if g.observe(comm, mine).is_some() {
                    flags += 1;
                }
            }
            flags
        });
        assert!(verdicts.iter().all(|&f| f == 0), "a transient hiccup is not a gray failure");
    }

    #[test]
    fn seeded_noise_below_threshold_never_triggers() {
        // The false-positive bound: busy times jittered up to 1.4x by a
        // deterministic per-(rank, step) hash stay below the 2x
        // threshold, so no mitigation may ever fire. Pinned inputs make
        // this a regression test, not a flake.
        let verdicts = run_ranks(4, |comm| {
            let mut g = StragglerGuard::new(cfg(), 4);
            let mut flags = 0;
            for step in 0..50u64 {
                let h = (comm.rank() as u64 + 1)
                    .wrapping_mul(0x9e37_79b9_7f4a_7c15)
                    .wrapping_add(step.wrapping_mul(0x2545_f491_4f6c_dd1d));
                let noise = h % 400_000; // ≤ 0.4x on a 1ms base
                if g.observe(comm, 1_000_000 + noise).is_some() {
                    flags += 1;
                }
            }
            flags
        });
        assert!(verdicts.iter().all(|&f| f == 0), "noise within bounds must never trigger");
    }

    #[test]
    fn weights_invert_the_measured_slowdown() {
        // A 3x straggler on rank 0 gets a third of the fast ranks' share.
        assert_eq!(weights_from_ema(&[3e6, 1e6, 1e6, 1e6]), vec![8, 24, 24, 24]);
        // Equal speeds normalize to equal weights (which
        // `Strategy::with_rank_weights` then drops entirely).
        assert_eq!(weights_from_ema(&[2e6; 4]), vec![24; 4]);
        // No rank's weight collapses to zero, however slow.
        assert_eq!(weights_from_ema(&[1e9, 1e6]), vec![1, 24]);
    }

    #[test]
    fn action_escalates_past_the_budget_and_the_evict_ratio() {
        let c = StragglerConfig::default();
        assert_eq!(c.action_for(3.0, 0), StragglerAction::Rebalance);
        assert_eq!(c.action_for(3.0, c.max_rebalances), StragglerAction::Evict);
        assert_eq!(c.action_for(c.evict_ratio, 0), StragglerAction::Evict);
    }

    #[test]
    fn median_handles_even_and_odd_lengths() {
        assert_eq!(median(&[3.0, 1.0, 2.0]), 2.0);
        assert_eq!(median(&[4.0, 1.0, 2.0, 3.0]), 2.5);
        assert_eq!(median(&[]), 0.0);
    }
}
