//! Interior/boundary decomposition: overlapping halo exchange with
//! compute (paper §IV-A).
//!
//! The paper's implementation "automatically decomposes an input tensor
//! into its interior domain and boundary domains and calls cuDNN
//! convolution kernels for each region separately so that halo exchanges
//! can be run concurrently with the convolution of the interior domain."
//!
//! [`forward_overlapped`] reproduces that schedule:
//!
//! 1. post the halo sends ([`start_halo_exchange`]);
//! 2. compute the *interior* output region — outputs whose receptive
//!    fields lie entirely in the owned block;
//! 3. complete the halo receives;
//! 4. compute the (up to four) boundary strips that needed halo data.
//!
//! On the thread-simulated communicator this ordering is executed for
//! real (sends are eager, receives block), so the test below verifies
//! the decomposition is *exact*: identical output to the monolithic
//! path, which is itself bitwise-identical to a single device. The
//! latency benefit is captured by the performance model in `fg-perf`
//! (overlapped halo terms), and ablated in `fg-bench`.

use fg_comm::Communicator;
use fg_kernels::conv::conv2d_forward_region;
use fg_tensor::halo::{finish_halo_exchange, start_halo_exchange, HaloPlan};
use fg_tensor::{Box4, DistTensor, Tensor};

use crate::distconv::DistConv2d;

/// The output region computable from owned input only, plus the
/// boundary strips that complete the owned output block.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct InteriorPlan {
    /// `(rows, cols)` of the interior output region (global indices);
    /// empty if no output is interior.
    pub interior: Option<((usize, usize), (usize, usize))>,
    /// Boundary strips `(rows, cols)` covering own-output \ interior.
    pub boundary: Vec<((usize, usize), (usize, usize))>,
}

impl InteriorPlan {
    /// Build the decomposition for a conv layer's owned output block.
    pub fn build(conv: &DistConv2d, rank: usize) -> InteriorPlan {
        let geom = &conv.geom;
        let ob = conv.out_dist.local_box(rank);
        let ib = conv.in_dist.local_box(rank);
        let (oh0, oh1) = (ob.lo[2], ob.hi[2]);
        let (ow0, ow1) = (ob.lo[3], ob.hi[3]);

        // Interior rows: output rows whose input taps stay inside the
        // owned input rows.
        let rows = interior_range(
            oh0,
            oh1,
            ib.lo[2] as i64,
            ib.hi[2] as i64,
            geom.stride_h,
            geom.pad_h,
            geom.kh,
        );
        let cols = interior_range(
            ow0,
            ow1,
            ib.lo[3] as i64,
            ib.hi[3] as i64,
            geom.stride_w,
            geom.pad_w,
            geom.kw,
        );
        let (interior, boundary) = match (rows, cols) {
            (Some((r0, r1)), Some((c0, c1))) => {
                let mut strips = Vec::new();
                if oh0 < r0 {
                    strips.push(((oh0, r0), (ow0, ow1))); // top
                }
                if r1 < oh1 {
                    strips.push(((r1, oh1), (ow0, ow1))); // bottom
                }
                if ow0 < c0 {
                    strips.push(((r0, r1), (ow0, c0))); // left
                }
                if c1 < ow1 {
                    strips.push(((r0, r1), (c1, ow1))); // right
                }
                (Some(((r0, r1), (c0, c1))), strips)
            }
            // No interior: the whole block is boundary.
            // arena-exempt: coordinate-range metadata, not tensor data.
            _ => (None, vec![((oh0, oh1), (ow0, ow1))]),
        };
        InteriorPlan { interior, boundary }
    }
}

/// Interior sub-range of output `[o0, o1)` whose taps lie in owned input
/// rows `[i_lo, i_hi)`; `None` if empty.
fn interior_range(
    o0: usize,
    o1: usize,
    i_lo: i64,
    i_hi: i64,
    stride: usize,
    pad: usize,
    k: usize,
) -> Option<(usize, usize)> {
    let s = stride as i64;
    let p = pad as i64;
    let k = k as i64;
    // Need o*s - p >= i_lo and o*s - p + k <= i_hi.
    let lo = ((i_lo + p) + s - 1).div_euclid(s).max(o0 as i64);
    let hi = ((i_hi - k + p).div_euclid(s) + 1).min(o1 as i64);
    (lo < hi).then_some((lo as usize, hi as usize))
}

/// Forward convolution with the overlap schedule. Produces exactly the
/// same result as [`DistConv2d::forward`].
pub fn forward_overlapped<C: Communicator>(
    conv: &DistConv2d,
    comm: &C,
    x: &DistTensor,
    w: &Tensor,
    bias: Option<&[f32]>,
) -> (DistTensor, DistTensor) {
    let rank = comm.rank();
    let halo = conv.x_halo_plan(rank);
    let iplan = InteriorPlan::build(conv, rank);
    forward_overlapped_with_plans(conv, comm, x, w, bias, &halo, &iplan)
}

/// [`forward_overlapped`] with precompiled halo and interior plans.
pub fn forward_overlapped_with_plans<C: Communicator>(
    conv: &DistConv2d,
    comm: &C,
    x: &DistTensor,
    w: &Tensor,
    bias: Option<&[f32]>,
    plan: &HaloPlan,
    iplan: &InteriorPlan,
) -> (DistTensor, DistTensor) {
    forward_overlapped_with_plans_in(conv, comm, x, w, bias, plan, iplan, None)
}

/// [`forward_overlapped_with_plans`] with the window's storage drawn
/// from `store` when provided (the arena path); bitwise-identical.
#[allow(clippy::too_many_arguments)]
pub fn forward_overlapped_with_plans_in<C: Communicator>(
    conv: &DistConv2d,
    comm: &C,
    x: &DistTensor,
    w: &Tensor,
    bias: Option<&[f32]>,
    plan: &HaloPlan,
    iplan: &InteriorPlan,
    store: Option<Vec<f32>>,
) -> (DistTensor, DistTensor) {
    let rank = comm.rank();
    // Window with owned data; margins zero until the exchange completes.
    let mut win = x.to_window_in(conv.x_margins.0, conv.x_margins.1, store);

    // (1) post sends; (2) interior compute; (3) receive; (4) boundary.
    let tag = start_halo_exchange(comm, &win, plan);

    let mut y = DistTensor::new_unpadded(conv.out_dist.clone(), rank);
    let origin = (win.origin()[2], win.origin()[3]);
    let ob = y.own_box();
    if let Some((rows, cols)) = iplan.interior {
        let t = conv2d_forward_region(win.local(), origin, w, bias, &conv.geom, rows, cols);
        write_region(&mut y, rows, cols, &t, &ob);
    }

    finish_halo_exchange(comm, &mut win, plan, tag);

    for &(rows, cols) in &iplan.boundary {
        let t = conv2d_forward_region(win.local(), origin, w, bias, &conv.geom, rows, cols);
        write_region(&mut y, rows, cols, &t, &ob);
    }
    (y, win)
}

/// Backward pass with the §IV-A task-parallel schedule: "we exploit the
/// task-level parallelism of backward data and filter convolutions to
/// hide the halo exchange for the data convolution within the filter
/// convolution. Note that the filter convolution does not require halo
/// exchanges."
///
/// Schedule: post the `dL/dy` halo sends → compute the (halo-free)
/// local filter gradient → complete the halo receives → compute
/// `dL/dx`. Results are identical to the monolithic path; the allreduce
/// completing `dL/dw` is performed as usual.
pub fn backward_overlapped<C: Communicator>(
    conv: &DistConv2d,
    comm: &C,
    x_window: &DistTensor,
    dy: &DistTensor,
    w: &Tensor,
    with_bias: bool,
) -> (DistTensor, Tensor, Option<Vec<f32>>) {
    let plan = conv.dy_halo_plan(comm.rank());
    backward_overlapped_with_plans(conv, comm, x_window, dy, w, with_bias, &plan)
}

/// [`backward_overlapped`] with a precompiled dy halo plan.
pub fn backward_overlapped_with_plans<C: Communicator>(
    conv: &DistConv2d,
    comm: &C,
    x_window: &DistTensor,
    dy: &DistTensor,
    w: &Tensor,
    with_bias: bool,
    plan: &HaloPlan,
) -> (DistTensor, Tensor, Option<Vec<f32>>) {
    let (dx, dw, db, _) =
        backward_overlapped_with_plans_in(conv, comm, x_window, dy, w, with_bias, plan, None);
    (dx, dw, db)
}

/// [`backward_overlapped_with_plans`] with the transient dy window's
/// storage drawn from `store` when provided; the spent storage comes
/// back as the last element (only when `store` was `Some`) so the
/// caller can return it to its arena slot.
#[allow(clippy::too_many_arguments)]
pub fn backward_overlapped_with_plans_in<C: Communicator>(
    conv: &DistConv2d,
    comm: &C,
    x_window: &DistTensor,
    dy: &DistTensor,
    w: &Tensor,
    with_bias: bool,
    plan: &HaloPlan,
    store: Option<Vec<f32>>,
) -> (DistTensor, Tensor, Option<Vec<f32>>, Option<Vec<f32>>) {
    use fg_comm::{Collectives, ReduceOp};
    use fg_kernels::conv::conv2d_backward_data_region;

    let rank = comm.rank();
    // (1) Post dy halo sends.
    let had_store = store.is_some();
    let mut dyw = dy.to_window_in(conv.dy_margins.0, conv.dy_margins.1, store);
    let tag = start_halo_exchange(comm, &dyw, plan);

    // (2) Filter-gradient compute — needs no halo on dy.
    let (dw_local, db_local) = conv.backward_filter_local(x_window, dy, with_bias);

    // (3) Complete the halo, (4) backward-data compute.
    finish_halo_exchange(comm, &mut dyw, plan, tag);
    let mut dx = DistTensor::new_unpadded(conv.in_dist.clone(), rank);
    let ib = dx.own_box();
    let local = conv2d_backward_data_region(
        dyw.local(),
        (dyw.origin()[2], dyw.origin()[3]),
        w,
        &conv.geom,
        (ib.lo[2], ib.hi[2]),
        (ib.lo[3], ib.hi[3]),
    );
    dx.set_owned(&local);

    // Complete dL/dw with the global allreduce (BPa), as usual.
    let mut flat = dw_local.as_slice().to_vec();
    if let Some(db) = &db_local {
        flat.extend_from_slice(db);
    }
    let flat = comm.allreduce(&flat, ReduceOp::Sum);
    let dw_len = dw_local.len();
    let dw = Tensor::from_vec(dw_local.shape(), flat[..dw_len].to_vec());
    let db = db_local.map(|_| flat[dw_len..].to_vec());
    let spent = had_store.then(|| dyw.into_storage());
    (dx, dw, db, spent)
}

fn write_region(
    y: &mut DistTensor,
    rows: (usize, usize),
    cols: (usize, usize),
    t: &Tensor,
    ob: &Box4,
) {
    let gbox =
        Box4::new([ob.lo[0], ob.lo[1], rows.0, cols.0], [ob.hi[0], ob.hi[1], rows.1, cols.1]);
    let lbox = y.global_to_local_box(&gbox);
    y.local_mut().unpack_box(&lbox, t.as_slice());
}

#[cfg(test)]
mod tests {
    use super::*;
    use fg_comm::run_ranks;
    use fg_kernels::conv::ConvGeometry;
    use fg_tensor::{ProcGrid, Shape4};

    fn pattern(shape: Shape4, seed: usize) -> Tensor {
        Tensor::from_fn(shape, |n, c, h, w| {
            (((n * 23 + c * 11 + h * 5 + w * 3 + seed) % 19) as f32) * 0.3 - 2.0
        })
    }

    #[test]
    fn interior_plan_partitions_owned_output() {
        let geom = ConvGeometry::square(16, 16, 3, 1, 1);
        let conv = DistConv2d::new(1, 1, 1, geom, ProcGrid::spatial(2, 2));
        for rank in 0..4 {
            let plan = InteriorPlan::build(&conv, rank);
            let ob = conv.out_dist.local_box(rank);
            // Interior + boundary must tile the owned output exactly.
            let mut covered = vec![0u8; (ob.hi[2] - ob.lo[2]) * (ob.hi[3] - ob.lo[3])];
            let mut mark = |rows: (usize, usize), cols: (usize, usize)| {
                for r in rows.0..rows.1 {
                    for c in cols.0..cols.1 {
                        covered[(r - ob.lo[2]) * (ob.hi[3] - ob.lo[3]) + (c - ob.lo[3])] += 1;
                    }
                }
            };
            if let Some((rows, cols)) = plan.interior {
                mark(rows, cols);
            }
            for &(rows, cols) in &plan.boundary {
                mark(rows, cols);
            }
            assert!(covered.iter().all(|&c| c == 1), "rank {rank}: region overlap or gap");
        }
    }

    #[test]
    fn interior_shrinks_with_kernel_size() {
        // Bigger halo ⇒ smaller interior.
        let g3 = ConvGeometry::square(16, 16, 3, 1, 1);
        let g7 = ConvGeometry::square(16, 16, 7, 1, 3);
        let c3 = DistConv2d::new(1, 1, 1, g3, ProcGrid::spatial(2, 2));
        let c7 = DistConv2d::new(1, 1, 1, g7, ProcGrid::spatial(2, 2));
        let area =
            |p: &InteriorPlan| p.interior.map_or(0, |((r0, r1), (c0, c1))| (r1 - r0) * (c1 - c0));
        assert!(area(&InteriorPlan::build(&c3, 0)) > area(&InteriorPlan::build(&c7, 0)));
    }

    #[test]
    fn overlapped_forward_is_bitwise_identical() {
        for (geom, grid, n, c, f) in [
            (ConvGeometry::square(12, 12, 3, 1, 1), ProcGrid::spatial(2, 2), 2, 2, 3),
            (ConvGeometry::square(16, 16, 7, 2, 3), ProcGrid::spatial(2, 2), 1, 3, 2),
            (ConvGeometry::square(10, 10, 3, 2, 1), ProcGrid::hybrid(2, 2, 1), 2, 1, 2),
            (ConvGeometry::square(9, 9, 5, 1, 2), ProcGrid::spatial(3, 1), 1, 1, 1),
        ] {
            let conv = DistConv2d::new(n, c, f, geom, grid);
            let x = pattern(Shape4::new(n, c, geom.in_h, geom.in_w), 1);
            let w = pattern(Shape4::new(f, c, geom.kh, geom.kw), 2);
            let outs = run_ranks(grid.size(), |comm| {
                let xs =
                    DistTensor::from_global(conv.in_dist.clone(), comm.rank(), &x, [0; 4], [0; 4]);
                let (y_mono, _) = conv.forward(comm, &xs, &w, None);
                let (y_ovl, _) = forward_overlapped(&conv, comm, &xs, &w, None);
                (y_mono.owned_tensor(), y_ovl.owned_tensor())
            });
            for (mono, ovl) in &outs {
                assert_eq!(mono, ovl, "overlap decomposition changed results for {geom:?}");
            }
        }
    }

    #[test]
    fn overlapped_backward_matches_monolithic() {
        for (geom, grid) in [
            (ConvGeometry::square(12, 12, 3, 1, 1), ProcGrid::spatial(2, 2)),
            (ConvGeometry::square(10, 10, 5, 2, 2), ProcGrid::hybrid(2, 2, 1)),
        ] {
            let (n, c, f) = (grid.n, 2, 3);
            let conv = DistConv2d::new(n, c, f, geom, grid);
            let x = pattern(Shape4::new(n, c, geom.in_h, geom.in_w), 5);
            let w = pattern(Shape4::new(f, c, geom.kh, geom.kw), 6);
            let dy = pattern(Shape4::new(n, f, geom.out_h(), geom.out_w()), 7);
            let outs = run_ranks(grid.size(), |comm| {
                let xs =
                    DistTensor::from_global(conv.in_dist.clone(), comm.rank(), &x, [0; 4], [0; 4]);
                let (_y, win) = conv.forward(comm, &xs, &w, None);
                let dys = DistTensor::from_global(
                    conv.out_dist.clone(),
                    comm.rank(),
                    &dy,
                    [0; 4],
                    [0; 4],
                );
                // Monolithic path.
                let dx_mono = conv.backward_data(comm, &dys, &w);
                let (dw_mono, _) = conv.backward_filter(comm, &win, &dys, false);
                // Overlapped path.
                let (dx_ovl, dw_ovl, _db) = backward_overlapped(&conv, comm, &win, &dys, &w, false);
                (dx_mono.owned_tensor(), dx_ovl.owned_tensor(), dw_mono, dw_ovl)
            });
            for (dx_m, dx_o, dw_m, dw_o) in &outs {
                assert_eq!(dx_m, dx_o, "overlap changed backward-data for {geom:?}");
                assert_eq!(dw_m, dw_o, "overlap changed backward-filter for {geom:?}");
            }
        }
    }

    #[test]
    fn tiny_shard_has_no_interior() {
        // Shard rows smaller than the kernel: everything is boundary.
        let geom = ConvGeometry::square(8, 8, 5, 1, 2);
        let conv = DistConv2d::new(1, 1, 1, geom, ProcGrid::spatial(4, 1));
        let plan = InteriorPlan::build(&conv, 1);
        assert!(plan.interior.is_none());
        assert_eq!(plan.boundary.len(), 1);
    }
}
