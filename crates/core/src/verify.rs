//! Static communication-schedule verification.
//!
//! `DistExecutor::new` compiles every rank's per-layer plans before a
//! single training step runs — which means the complete communication
//! schedule of a step is known statically. This module symbolically
//! executes those plans: each rank's plan walk emits the wire operations
//! its `forward`/`backward` would issue (shapes, element counts, and
//! tags only — no tensor math, no threads, no real communicator) into an
//! [`fg_comm::RankTrace`], and the traces plus the plan geometry are
//! checked for five properties:
//!
//! 1. **p2p matching** — every send has exactly one matching recv with
//!    equal count and scalar type (deadlock-freedom at the message
//!    level); checked in [`fg_comm::check_traces`].
//! 2. **collective consistency** — all members of each group issue the
//!    same collective sequence; also in `check_traces`.
//! 3. **halo symmetry** — what rank A sends rank B for a layer's halo is
//!    exactly the global region B's `HaloPlan` expects, forward and
//!    adjoint; checked here on the plan geometry (the trace only sees
//!    element counts — two same-sized but different regions would slip
//!    through it).
//! 4. **shuffle conservation** — every `ShufflePlan`'s receives
//!    partition the destination shard (no gaps, no overlaps), and send
//!    and receive geometry agree across ranks.
//! 5. **tag/stream discipline** — no two concurrent exchanges share a
//!    `(src, dst, tag)` stream; in `check_traces`.
//!
//! What is *not* checked: numerics (the equivalence tests do that),
//! timing/overlap efficiency, and memory capacity (the optimizer's
//! memory model does that). A clean report means the schedule cannot
//! deadlock or mis-shape a message — it says nothing about whether the
//! answer is right or fast.
//!
//! The walker mirrors the executor's scheduling exactly: forward walks
//! layers in order, input shuffles before the layer's own exchanges;
//! backward walks in reverse with loss layers seeding their parent
//! (communication-free) and dead branches skipped, the layer's own
//! exchanges before the adjoint shuffles.

use std::collections::BTreeMap;
use std::time::{Duration, Instant};

use fg_comm::{check_traces, CheckKind, Phase, RankTrace, TraceRecorder, VerifyStats, Violation};
use fg_nn::{init_params, LayerKind, NetworkSpec};
use fg_tensor::shuffle::ShufflePlan;
use fg_tensor::{Box4, ProcGrid, Shape4, TensorDist};

use crate::layers::{DistLayer, LayerPlan, TraceCx};
use crate::strategy::{per_sample_shape, Strategy};

/// Outcome of one verification pass over a compiled executor.
#[derive(Debug, Clone)]
pub struct VerifyReport {
    /// Aggregate counters (ops traced, links checked, bytes accounted).
    pub stats: VerifyStats,
    /// Every violation found; empty for a sound schedule.
    pub violations: Vec<Violation>,
    /// Wall time the verification took.
    pub wall: Duration,
}

impl VerifyReport {
    /// No violations?
    pub fn is_clean(&self) -> bool {
        self.violations.is_empty()
    }
}

/// Supplies modeled local-compute times for trace recording, so the
/// symbolic traces carry `Advance` ops and can drive the discrete-event
/// engine (`fg_comm::simulate_traces`) as *executed* virtual-time runs.
/// `fg-perf` provides the production implementation from its device
/// model; the verifier itself records without one (compute does not
/// affect schedule soundness).
pub trait ComputeOracle {
    /// Modeled seconds of local compute rank `rank` spends in `layer`
    /// during `phase` (forward: the layer kernel; backward: both data
    /// and filter passes). Return 0.0 for communication-only layers.
    fn secs(&self, layer: usize, phase: Phase, rank: usize) -> f64;
}

impl std::fmt::Display for VerifyReport {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "{} ops, {} links, {} collectives, {} bytes: ",
            self.stats.ops_traced,
            self.stats.links_checked,
            self.stats.collectives_checked,
            self.stats.bytes_accounted
        )?;
        if self.is_clean() {
            write!(f, "clean")
        } else {
            writeln!(f, "{} violation(s)", self.violations.len())?;
            for v in &self.violations {
                writeln!(f, "  {v}")?;
            }
            Ok(())
        }
    }
}

/// Verify a compiled plan set: symbolically execute every rank's plans,
/// run the trace-level checks, and check the plan geometry. The
/// `mutate_traces` hook lets mutation tests corrupt the recorded traces
/// (tag flips, dropped collectives) between recording and checking;
/// production callers pass `|_| {}`.
pub(crate) fn verify_plans(
    spec: &NetworkSpec,
    strategy: &Strategy,
    layers: &[Box<dyn DistLayer>],
    plans: &[Vec<LayerPlan>],
    mutate_traces: impl FnOnce(&mut Vec<RankTrace>),
) -> VerifyReport {
    let start = Instant::now();
    let world = strategy.world_size();
    // Parameter payload sizes: materialize a throwaway init so the
    // traced gradient-allreduce counts come from the same code path the
    // runtime uses.
    let param_elems: Vec<usize> = init_params(spec, 0).iter().map(|p| p.len()).collect();
    let names: Vec<String> = layers.iter().map(|l| l.base().name.clone()).collect();

    let mut traces: Vec<RankTrace> = (0..world)
        .map(|rank| record_rank(strategy, layers, plans, &param_elems, rank, world, None))
        .collect();
    mutate_traces(&mut traces);

    let (stats, mut violations) = check_traces(&traces, &names);
    check_plan_geometry(layers, plans, world, &mut violations);
    VerifyReport { stats, violations, wall: start.elapsed() }
}

/// Record every rank's symbolic trace, optionally costing local compute
/// through `oracle` — the input format of the discrete-event engine.
pub(crate) fn record_traces(
    spec: &NetworkSpec,
    strategy: &Strategy,
    layers: &[Box<dyn DistLayer>],
    plans: &[Vec<LayerPlan>],
    oracle: Option<&dyn ComputeOracle>,
) -> Vec<RankTrace> {
    let world = strategy.world_size();
    let param_elems: Vec<usize> = init_params(spec, 0).iter().map(|p| p.len()).collect();
    (0..world)
        .map(|rank| record_rank(strategy, layers, plans, &param_elems, rank, world, oracle))
        .collect()
}

/// Symbolically execute one rank's plans in exact scheduler order.
fn record_rank(
    strategy: &Strategy,
    layers: &[Box<dyn DistLayer>],
    plans: &[Vec<LayerPlan>],
    param_elems: &[usize],
    rank: usize,
    world: usize,
    oracle: Option<&dyn ComputeOracle>,
) -> RankTrace {
    let mut rec = TraceRecorder::new(rank, world);

    // Forward: per layer, input shuffles in parent-edge order, then the
    // layer's own exchanges, then the modeled kernel time (the layer
    // computes on its exchanged inputs).
    for (id, layer) in layers.iter().enumerate() {
        rec.scope(id, Phase::Forward);
        let plan = &plans[id][rank];
        for shuffle in plan.in_shuffles.iter().flatten() {
            shuffle.record(&mut rec);
        }
        let cx = trace_cx(strategy, plan, world, rank, param_elems[id]);
        layer.record_forward(&cx, &mut rec);
        if let Some(o) = oracle {
            rec.advance(o.secs(id, Phase::Forward, rank));
        }
    }

    // Backward: reverse order; loss layers seed their parent without
    // communication, layers whose error slot never fills are skipped
    // (dead branches), and adjoint shuffles follow the layer's own
    // exchanges, as in `run_backward`.
    let mut has_signal = vec![false; layers.len()];
    for (id, layer) in layers.iter().enumerate().rev() {
        rec.scope(id, Phase::Backward);
        let base = layer.base();
        if layer.seeds_backward() {
            has_signal[base.parents[0]] = true;
            continue;
        }
        if !has_signal[id] || base.parents.is_empty() {
            continue;
        }
        let plan = &plans[id][rank];
        let cx = trace_cx(strategy, plan, world, rank, param_elems[id]);
        // Gradient kernels run before the layer's exchanges put their
        // results (dparams, adjoint halos) on the wire.
        if let Some(o) = oracle {
            rec.advance(o.secs(id, Phase::Backward, rank));
        }
        layer.record_backward(&cx, &mut rec);
        // Every layer kind emits a dparent on each of its edges (joins
        // on all, single-parent layers on their only edge).
        for (i, &p) in base.parents.iter().enumerate() {
            if let Some(shuffle) = plan.back_shuffles[i].as_ref() {
                shuffle.record(&mut rec);
            }
            has_signal[p] = true;
        }
    }
    rec.finish()
}

fn trace_cx<'a>(
    strategy: &Strategy,
    plan: &'a LayerPlan,
    world: usize,
    rank: usize,
    param_elems: usize,
) -> TraceCx<'a> {
    TraceCx { plan, bn_mode: strategy.bn_mode, world, rank, param_elems }
}

/// Checks 3 and 4: plan-geometry properties the count-level traces
/// cannot see — region identity of halos and partition-exactness of
/// shuffles.
fn check_plan_geometry(
    layers: &[Box<dyn DistLayer>],
    plans: &[Vec<LayerPlan>],
    world: usize,
    violations: &mut Vec<Violation>,
) {
    for (id, layer) in layers.iter().enumerate() {
        let name = &layer.base().name;
        let per_rank = &plans[id];

        // Halo symmetry, forward and adjoint windows.
        for kind in ["x_halo", "dy_halo"] {
            let mut sent: BTreeMap<(usize, usize), Vec<Box4>> = BTreeMap::new();
            let mut expected: BTreeMap<(usize, usize), Vec<Box4>> = BTreeMap::new();
            for (rank, plan) in per_rank.iter().enumerate().take(world) {
                let h = if kind == "x_halo" { &plan.x_halo } else { &plan.dy_halo };
                if let Some(h) = h {
                    for (peer, b) in &h.sends {
                        sent.entry((rank, *peer)).or_default().push(*b);
                    }
                    for (peer, b) in &h.recvs {
                        expected.entry((*peer, rank)).or_default().push(*b);
                    }
                }
            }
            compare_box_maps(&sent, &expected, id, name, kind, CheckKind::HaloSymmetry, violations);
        }

        // Shuffle conservation and cross-rank symmetry, per parent edge.
        let n_edges = layers[id].base().parents.len();
        for edge in 0..n_edges {
            for dir in ["in_shuffle", "back_shuffle"] {
                let mut sent: BTreeMap<(usize, usize), Vec<Box4>> = BTreeMap::new();
                let mut expected: BTreeMap<(usize, usize), Vec<Box4>> = BTreeMap::new();
                let mut any = false;
                for (rank, plan) in per_rank.iter().enumerate().take(world) {
                    let slot: &Option<ShufflePlan> = if dir == "in_shuffle" {
                        &plan.in_shuffles[edge]
                    } else {
                        &plan.back_shuffles[edge]
                    };
                    let Some(sp) = slot.as_ref() else { continue };
                    any = true;
                    if let Err(e) = sp.check_conservation() {
                        violations.push(Violation {
                            check: CheckKind::Conservation,
                            rank,
                            layer: id,
                            layer_name: name.clone(),
                            detail: format!("{dir} edge {edge}: {e}"),
                        });
                    }
                    for (peer, b) in sp.sends() {
                        sent.entry((rank, *peer)).or_default().push(*b);
                    }
                    for (peer, b) in sp.recvs() {
                        expected.entry((*peer, rank)).or_default().push(*b);
                    }
                }
                if any {
                    let label = format!("{dir} edge {edge}");
                    compare_box_maps(
                        &sent,
                        &expected,
                        id,
                        name,
                        &label,
                        CheckKind::Conservation,
                        violations,
                    );
                }
            }
        }
    }
}

/// Compare per-link sent vs expected global boxes; a mismatch means the
/// sender packs a different region than the receiver unpacks — same
/// element counts or not, the data lands in the wrong place (or a
/// message goes missing entirely).
fn compare_box_maps(
    sent: &BTreeMap<(usize, usize), Vec<Box4>>,
    expected: &BTreeMap<(usize, usize), Vec<Box4>>,
    layer: usize,
    name: &str,
    what: &str,
    check: CheckKind,
    violations: &mut Vec<Violation>,
) {
    let mut links: Vec<(usize, usize)> = sent.keys().chain(expected.keys()).copied().collect();
    links.sort_unstable();
    links.dedup();
    for (src, dst) in links {
        let mut s = sent.get(&(src, dst)).cloned().unwrap_or_default();
        let mut e = expected.get(&(src, dst)).cloned().unwrap_or_default();
        s.sort_unstable_by_key(|b| (b.lo, b.hi));
        e.sort_unstable_by_key(|b| (b.lo, b.hi));
        if s != e {
            violations.push(Violation {
                check,
                rank: src,
                layer,
                layer_name: name.to_string(),
                detail: format!(
                    "{what}: rank {src} sends {s:?} to rank {dst}, which expects {e:?}"
                ),
            });
        }
    }
}

/// Is `grid` a legal distribution for layer `id` of `spec`? The
/// per-layer subset of `Strategy::validate` — the legality pre-filter
/// `StrategyOptimizer` applies to each candidate grid before the cost
/// model ever scores it, so no provably unsound distribution can win.
/// (Cross-layer rules — per-sample layers inheriting the parent grid —
/// are enforced by the optimizer's candidate construction itself.)
pub fn candidate_grid_legal(
    spec: &NetworkSpec,
    batch: usize,
    world: usize,
    id: usize,
    grid: ProcGrid,
) -> bool {
    if grid.size() != world {
        return false;
    }
    let l = spec.layer(id);
    let shapes = spec.shapes();
    match &l.kind {
        // Per-sample layers replicate within sample groups; their grids
        // are pinned to the parent's, which is checked when the parent's
        // own candidate is screened.
        LayerKind::GlobalAvgPool | LayerKind::Fc { .. } => true,
        LayerKind::SoftmaxCrossEntropy => {
            let parent_kind = &spec.layer(l.parents[0]).kind;
            if matches!(parent_kind, LayerKind::GlobalAvgPool | LayerKind::Fc { .. }) {
                return true;
            }
            let (c, h, w) = shapes[id];
            TensorDist::new(Shape4::new(batch, c, h, w), grid).is_fully_populated()
        }
        _ => {
            if grid.c != 1 {
                return false;
            }
            let (c, h, w) = shapes[id];
            if !per_sample_shape(shapes[id])
                && !TensorDist::new(Shape4::new(batch, c, h, w), grid).is_fully_populated()
            {
                return false;
            }
            if matches!(l.kind, LayerKind::Conv { .. } | LayerKind::Pool { .. }) {
                let (pc, ph, pw) = shapes[l.parents[0]];
                if !TensorDist::new(Shape4::new(batch, pc, ph, pw), grid).is_fully_populated() {
                    return false;
                }
            }
            true
        }
    }
}
