//! Distributed-memory convolution (paper §III-A): sample, spatial, and
//! hybrid sample/spatial parallelism.
//!
//! A [`DistConv2d`] binds a convolution geometry to a process grid. The
//! grid factorizes the world into `n × h × w` ranks (`c` must be 1 here;
//! channel/filter parallelism lives in [`crate::channel_filter`]):
//!
//! * `grid = (P, 1, 1, 1)` — pure sample parallelism (the data-parallel
//!   baseline): no halo, weight-gradient allreduce only;
//! * `grid = (1, 1, ph, pw)` — pure spatial parallelism: halo exchanges
//!   in forward and backward-data, plus the allreduce;
//! * `grid = (pn, 1, ph, pw)` — the paper's hybrid: samples partitioned
//!   into `pn` groups, each sample split spatially `ph × pw` ways.
//!
//! The forward/backward-data halos are sized from the convolution
//! geometry per §III-A (the `O = ⌊K/2⌋` rows/columns, adjusted for
//! stride), computed as uniform bounds over all ranks so every shard
//! shares one layout. All compute runs through the region kernels of
//! `fg-kernels`, so results are **bitwise identical** to a single-device
//! run — the paper's exact-replication property.

use fg_comm::{Collectives, Communicator, ReduceOp};
use fg_kernels::conv::{
    conv2d_backward_data_region, conv2d_backward_filter_region, conv2d_forward_region, ConvGeometry,
};
use fg_tensor::halo::{exchange_halo_with_plan, HaloPlan};
use fg_tensor::{DistTensor, ProcGrid, Shape4, Tensor, TensorDist, NDIMS};

/// Margins `(below, above)` for one dimension.
type DimMargins = (usize, usize);

/// A distributed 2-D convolution layer bound to a process grid.
#[derive(Debug, Clone)]
pub struct DistConv2d {
    /// Convolution geometry (global extents).
    pub geom: ConvGeometry,
    /// Distribution of the input `x` (shape `N×C×H×W` over the grid).
    pub in_dist: TensorDist,
    /// Distribution of the output `y` (shape `N×F×OH×OW`, same grid).
    pub out_dist: TensorDist,
    /// Margins of the forward input window.
    pub x_margins: ([usize; NDIMS], [usize; NDIMS]),
    /// Margins of the backward-data error-signal window.
    pub dy_margins: ([usize; NDIMS], [usize; NDIMS]),
}

impl DistConv2d {
    /// Create the layer for a mini-batch of `n` samples with `c` input
    /// channels and `f` filters, over `grid` (whose `c` extent must be 1).
    ///
    /// Panics if the grid cannot partition the problem (more ranks than
    /// rows on some dimension, or a spatial shard smaller than its halo —
    /// the degenerate cases §III-A calls out as better served by other
    /// parallelism).
    pub fn new(n: usize, c: usize, f: usize, geom: ConvGeometry, grid: ProcGrid) -> Self {
        let in_shape = Shape4::new(n, c, geom.in_h, geom.in_w);
        let out_shape = Shape4::new(n, f, geom.out_h(), geom.out_w());
        Self::with_dists(geom, TensorDist::new(in_shape, grid), TensorDist::new(out_shape, grid))
    }

    /// Create the layer from explicit input/output distributions (which
    /// may carry non-uniform weights — gray-failure rebalancing). Margins
    /// are computed from the distributions' actual block boundaries, so
    /// weighted layouts get correctly sized halos.
    pub fn with_dists(geom: ConvGeometry, in_dist: TensorDist, out_dist: TensorDist) -> Self {
        let grid = in_dist.grid;
        assert_eq!(grid.c, 1, "channel/filter parallelism is handled by channel_filter");
        assert_eq!(out_dist.grid, grid, "conv input and output must share a grid");
        let in_shape = in_dist.shape;
        assert!(
            in_dist.is_fully_populated() && out_dist.is_fully_populated(),
            "grid {grid} leaves ranks without work for conv {geom:?} on {in_shape}"
        );

        // Forward x window: covers input rows/cols needed by the owned
        // output block. Uniform over ranks (max per side).
        let (h_lo, h_hi) = margin_bound(grid.h, |g| {
            let ob = out_dist.dim_range(2, g);
            let ib = in_dist.dim_range(2, g);
            let (lo, hi) = geom.input_rows_for_output(ob.start, ob.end);
            (ib.start as i64 - lo, hi - ib.end as i64)
        });
        let (w_lo, w_hi) = margin_bound(grid.w, |g| {
            let ob = out_dist.dim_range(3, g);
            let ib = in_dist.dim_range(3, g);
            let (lo, hi) = geom.input_cols_for_output(ob.start, ob.end);
            (ib.start as i64 - lo, hi - ib.end as i64)
        });
        let x_margins = ([0, 0, h_lo, w_lo], [0, 0, h_hi, w_hi]);

        // Backward dy window: covers output rows/cols contributing to the
        // owned input block.
        let (dh_lo, dh_hi) = margin_bound(grid.h, |g| {
            let ib = in_dist.dim_range(2, g);
            let ob = out_dist.dim_range(2, g);
            let (lo, hi) = geom.output_rows_for_input(ib.start, ib.end);
            (ob.start as i64 - lo as i64, hi as i64 - ob.end as i64)
        });
        let (dw_lo, dw_hi) = margin_bound(grid.w, |g| {
            let ib = in_dist.dim_range(3, g);
            let ob = out_dist.dim_range(3, g);
            let (lo, hi) = geom.output_cols_for_input(ib.start, ib.end);
            (ob.start as i64 - lo as i64, hi as i64 - ob.end as i64)
        });
        let dy_margins = ([0, 0, dh_lo, dw_lo], [0, 0, dh_hi, dw_hi]);

        DistConv2d { geom, in_dist, out_dist, x_margins, dy_margins }
    }

    /// Does this layer need a halo exchange at all? (`K = 1` and stride
    /// alignment can make all margins zero — the paper's
    /// `res3b_branch2a` case where spatial parallelism is
    /// communication-free.)
    pub fn needs_halo(&self) -> bool {
        self.x_margins.0.iter().any(|&m| m > 0) || self.x_margins.1.iter().any(|&m| m > 0)
    }

    /// The forward halo plan for this rank's input window — pure
    /// geometry, compiled once per layer by the executor.
    pub fn x_halo_plan(&self, rank: usize) -> HaloPlan {
        HaloPlan::for_layout(&self.in_dist, rank, self.x_margins.0, self.x_margins.1)
    }

    /// The backward-data halo plan for this rank's error-signal window.
    pub fn dy_halo_plan(&self, rank: usize) -> HaloPlan {
        HaloPlan::for_layout(&self.out_dist, rank, self.dy_margins.0, self.dy_margins.1)
    }

    /// Build this rank's haloed input window from its unpadded shard.
    pub fn build_x_window<C: Communicator>(&self, comm: &C, x: &DistTensor) -> DistTensor {
        self.build_x_window_with_plan(comm, x, &self.x_halo_plan(comm.rank()))
    }

    /// [`DistConv2d::build_x_window`] with a precompiled halo plan.
    pub fn build_x_window_with_plan<C: Communicator>(
        &self,
        comm: &C,
        x: &DistTensor,
        plan: &HaloPlan,
    ) -> DistTensor {
        self.build_x_window_with_plan_in(comm, x, plan, None)
    }

    /// [`DistConv2d::build_x_window_with_plan`] drawing the window's
    /// storage from `store` when provided (the arena path); results are
    /// bitwise-identical either way.
    pub fn build_x_window_with_plan_in<C: Communicator>(
        &self,
        comm: &C,
        x: &DistTensor,
        plan: &HaloPlan,
        store: Option<Vec<f32>>,
    ) -> DistTensor {
        debug_assert_eq!(*x.dist(), self.in_dist, "input shard has wrong distribution");
        let mut win = x.to_window_in(self.x_margins.0, self.x_margins.1, store);
        exchange_halo_with_plan(comm, &mut win, plan);
        win
    }

    /// Forward propagation (Eq. 1). Takes the unpadded input shard;
    /// returns `(y, x_window)` — the window is kept for backward-filter.
    ///
    /// Collective over `comm` (world size must equal the grid size).
    pub fn forward<C: Communicator>(
        &self,
        comm: &C,
        x: &DistTensor,
        w: &Tensor,
        bias: Option<&[f32]>,
    ) -> (DistTensor, DistTensor) {
        self.forward_with_plan(comm, x, w, bias, &self.x_halo_plan(comm.rank()))
    }

    /// [`DistConv2d::forward`] with a precompiled forward halo plan.
    pub fn forward_with_plan<C: Communicator>(
        &self,
        comm: &C,
        x: &DistTensor,
        w: &Tensor,
        bias: Option<&[f32]>,
        plan: &HaloPlan,
    ) -> (DistTensor, DistTensor) {
        self.forward_with_plan_in(comm, x, w, bias, plan, None)
    }

    /// [`DistConv2d::forward_with_plan`] with the window's storage drawn
    /// from `store` when provided (the arena path).
    pub fn forward_with_plan_in<C: Communicator>(
        &self,
        comm: &C,
        x: &DistTensor,
        w: &Tensor,
        bias: Option<&[f32]>,
        plan: &HaloPlan,
        store: Option<Vec<f32>>,
    ) -> (DistTensor, DistTensor) {
        let win = self.build_x_window_with_plan_in(comm, x, plan, store);
        let y = self.forward_from_window(comm.rank(), &win, w, bias);
        (y, win)
    }

    /// Local forward compute given an already-exchanged window.
    pub fn forward_from_window(
        &self,
        rank: usize,
        win: &DistTensor,
        w: &Tensor,
        bias: Option<&[f32]>,
    ) -> DistTensor {
        let mut y = DistTensor::new_unpadded(self.out_dist.clone(), rank);
        let ob = y.own_box();
        let origin = (win.origin()[2], win.origin()[3]);
        let local = conv2d_forward_region(
            win.local(),
            origin,
            w,
            bias,
            &self.geom,
            (ob.lo[2], ob.hi[2]),
            (ob.lo[3], ob.hi[3]),
        );
        y.set_owned(&local);
        y
    }

    /// Backward-data (Eq. 3): error signal for the parent layer, in this
    /// layer's input distribution. Collective (halo exchange on `dy`).
    pub fn backward_data<C: Communicator>(
        &self,
        comm: &C,
        dy: &DistTensor,
        w: &Tensor,
    ) -> DistTensor {
        self.backward_data_with_plan(comm, dy, w, &self.dy_halo_plan(comm.rank()))
    }

    /// [`DistConv2d::backward_data`] with a precompiled dy halo plan.
    pub fn backward_data_with_plan<C: Communicator>(
        &self,
        comm: &C,
        dy: &DistTensor,
        w: &Tensor,
        plan: &HaloPlan,
    ) -> DistTensor {
        self.backward_data_with_plan_in(comm, dy, w, plan, None).0
    }

    /// [`DistConv2d::backward_data_with_plan`] with the transient dy
    /// window's storage drawn from `store` when provided. The spent
    /// storage comes back as the second element (only when `store` was
    /// `Some`) so the caller can return it to its arena slot.
    pub fn backward_data_with_plan_in<C: Communicator>(
        &self,
        comm: &C,
        dy: &DistTensor,
        w: &Tensor,
        plan: &HaloPlan,
        store: Option<Vec<f32>>,
    ) -> (DistTensor, Option<Vec<f32>>) {
        debug_assert_eq!(*dy.dist(), self.out_dist, "error signal has wrong distribution");
        let had_store = store.is_some();
        let mut dyw = dy.to_window_in(self.dy_margins.0, self.dy_margins.1, store);
        exchange_halo_with_plan(comm, &mut dyw, plan);

        let mut dx = DistTensor::new_unpadded(self.in_dist.clone(), comm.rank());
        let ib = dx.own_box();
        let origin = (dyw.origin()[2], dyw.origin()[3]);
        let local = conv2d_backward_data_region(
            dyw.local(),
            origin,
            w,
            &self.geom,
            (ib.lo[2], ib.hi[2]),
            (ib.lo[3], ib.hi[3]),
        );
        dx.set_owned(&local);
        let spent = had_store.then(|| dyw.into_storage());
        (dx, spent)
    }

    /// Local weight-gradient contribution (Eq. 2), **without** the final
    /// allreduce. `x_window` is the window saved by [`DistConv2d::forward`].
    pub fn backward_filter_local(
        &self,
        x_window: &DistTensor,
        dy: &DistTensor,
        with_bias: bool,
    ) -> (Tensor, Option<Vec<f32>>) {
        let ob = dy.own_box();
        let x_origin = (x_window.origin()[2], x_window.origin()[3]);
        let dy_origin = (ob.lo[2] as i64, ob.lo[3] as i64);
        let (dw, db) = conv2d_backward_filter_region(
            x_window.local(),
            x_origin,
            &dy.owned_tensor(),
            dy_origin,
            &self.geom,
            (ob.lo[2], ob.hi[2]),
            (ob.lo[3], ob.hi[3]),
        );
        (dw, with_bias.then_some(db))
    }

    /// Complete weight gradient: local contribution + allreduce over all
    /// ranks (the sum over N, H, W of Eq. 2 — `BPa` in the performance
    /// model). Weights are replicated, so the group is the whole world.
    pub fn backward_filter<C: Communicator>(
        &self,
        comm: &C,
        x_window: &DistTensor,
        dy: &DistTensor,
        with_bias: bool,
    ) -> (Tensor, Option<Vec<f32>>) {
        let (dw, db) = self.backward_filter_local(x_window, dy, with_bias);
        // One allreduce for weights (+ bias, concatenated), as the paper
        // models: AR(|P|, F·C·K²).
        let mut flat = dw.as_slice().to_vec();
        if let Some(db) = &db {
            flat.extend_from_slice(db);
        }
        let flat = comm.allreduce(&flat, ReduceOp::Sum);
        let dw_len = dw.len();
        let dw = Tensor::from_vec(dw.shape(), flat[..dw_len].to_vec());
        let db = db.map(|_| flat[dw_len..].to_vec());
        (dw, db)
    }
}

/// Uniform margin bound over all grid coordinates of one dimension:
/// `per(g)` returns `(needed_below, needed_above)` as signed counts;
/// negative values (needs less than owned) clamp to zero.
fn margin_bound(parts: usize, per: impl Fn(usize) -> (i64, i64)) -> DimMargins {
    let mut lo = 0i64;
    let mut hi = 0i64;
    for g in 0..parts {
        let (l, h) = per(g);
        lo = lo.max(l);
        hi = hi.max(h);
    }
    (lo.max(0) as usize, hi.max(0) as usize)
}

#[cfg(test)]
mod tests {
    use super::*;
    use fg_comm::run_ranks;
    use fg_kernels::conv::{conv2d_backward_data, conv2d_backward_filter, conv2d_forward};
    use fg_tensor::gather::gather_to_root;

    fn pattern(shape: Shape4, seed: usize) -> Tensor {
        Tensor::from_fn(shape, |n, c, h, w| {
            (((n * 31 + c * 17 + h * 5 + w * 3 + seed) % 13) as f32) * 0.5 - 3.0
        })
    }

    /// Distributed forward+backward must equal the serial kernels
    /// *bitwise* (same inner loops, same windows).
    fn check_equivalence(n: usize, c: usize, f: usize, geom: ConvGeometry, grid: ProcGrid) {
        let x_shape = Shape4::new(n, c, geom.in_h, geom.in_w);
        let w_shape = Shape4::new(f, c, geom.kh, geom.kw);
        let x = pattern(x_shape, 1);
        let w = pattern(w_shape, 2);
        let bias: Vec<f32> = (0..f).map(|i| i as f32 * 0.25 - 0.5).collect();
        let y_serial = conv2d_forward(&x, &w, Some(&bias), &geom);
        let dy = pattern(y_serial.shape(), 3);
        let dx_serial = conv2d_backward_data(&dy, &w, &geom);
        let (dw_serial, db_serial) = conv2d_backward_filter(&x, &dy, &geom);

        let layer = DistConv2d::new(n, c, f, geom, grid);
        let results = run_ranks(grid.size(), |comm| {
            let xs =
                DistTensor::from_global(layer.in_dist.clone(), comm.rank(), &x, [0; 4], [0; 4]);
            let (y, win) = layer.forward(comm, &xs, &w, Some(&bias));
            let dys =
                DistTensor::from_global(layer.out_dist.clone(), comm.rank(), &dy, [0; 4], [0; 4]);
            let dx = layer.backward_data(comm, &dys, &w);
            let (dw, db) = layer.backward_filter(comm, &win, &dys, true);
            let y_full = gather_to_root(comm, &y, 0);
            let dx_full = gather_to_root(comm, &dx, 0);
            (y_full, dx_full, dw, db)
        });
        let (y_full, dx_full, _, _) = &results[0];
        assert_eq!(
            y_full.as_ref().unwrap(),
            &y_serial,
            "forward not bitwise-identical for grid {grid}"
        );
        assert_eq!(
            dx_full.as_ref().unwrap(),
            &dx_serial,
            "backward-data not bitwise-identical for grid {grid}"
        );
        // dw goes through an allreduce → summation order differs from the
        // serial single accumulation; compare with tolerance.
        for (_, _, dw, db) in &results {
            dw.assert_close(&dw_serial, 1e-4);
            for (a, b) in db.as_ref().unwrap().iter().zip(&db_serial) {
                assert!((a - b).abs() <= 1e-4 * a.abs().max(1.0), "db {a} vs {b}");
            }
        }
    }

    #[test]
    fn sample_parallelism_matches_serial() {
        check_equivalence(4, 3, 2, ConvGeometry::square(8, 8, 3, 1, 1), ProcGrid::sample(4));
    }

    #[test]
    fn spatial_2x2_matches_serial() {
        check_equivalence(2, 3, 4, ConvGeometry::square(8, 8, 3, 1, 1), ProcGrid::spatial(2, 2));
    }

    #[test]
    fn spatial_strided_matches_serial() {
        check_equivalence(1, 2, 3, ConvGeometry::square(12, 12, 3, 2, 1), ProcGrid::spatial(2, 2));
        check_equivalence(1, 2, 3, ConvGeometry::square(9, 11, 3, 2, 1), ProcGrid::spatial(3, 1));
    }

    #[test]
    fn spatial_large_kernel_matches_serial() {
        // K=7 like ResNet conv1 (large halo), stride 2.
        check_equivalence(1, 3, 2, ConvGeometry::square(16, 16, 7, 2, 3), ProcGrid::spatial(2, 2));
    }

    #[test]
    fn spatial_1x1_conv_needs_no_halo() {
        let geom = ConvGeometry::square(8, 8, 1, 1, 0);
        let layer = DistConv2d::new(2, 4, 4, geom, ProcGrid::spatial(2, 2));
        assert!(!layer.needs_halo(), "1x1 stride-1 conv must not exchange halos");
        check_equivalence(2, 4, 4, geom, ProcGrid::spatial(2, 2));
    }

    #[test]
    fn hybrid_sample_spatial_matches_serial() {
        check_equivalence(4, 2, 3, ConvGeometry::square(8, 8, 3, 1, 1), ProcGrid::hybrid(2, 2, 1));
        check_equivalence(4, 2, 3, ConvGeometry::square(8, 8, 5, 1, 2), ProcGrid::hybrid(2, 1, 2));
    }

    #[test]
    fn uneven_spatial_blocks_match_serial() {
        // 10 rows over 3 ranks (4,3,3) with stride 2.
        check_equivalence(1, 1, 2, ConvGeometry::square(10, 7, 3, 2, 1), ProcGrid::spatial(3, 1));
    }

    #[test]
    fn halo_traffic_matches_paper_model() {
        use fg_comm::{OpClass, TrafficStats};
        // 2x2 spatial grid, K=3 (O=1): each rank sends 2 side halos + 1
        // corner in forward (interior of a 2x2 grid: every rank is a
        // corner rank with 2 neighbors + 1 diagonal).
        let geom = ConvGeometry::square(8, 8, 3, 1, 1);
        let layer = DistConv2d::new(1, 2, 2, geom, ProcGrid::spatial(2, 2));
        let x = pattern(Shape4::new(1, 2, 8, 8), 4);
        let w = pattern(Shape4::new(2, 2, 3, 3), 5);
        let stats: Vec<TrafficStats> = run_ranks(4, |comm| {
            let xs =
                DistTensor::from_global(layer.in_dist.clone(), comm.rank(), &x, [0; 4], [0; 4]);
            let _ = layer.forward(comm, &xs, &w, None);
            comm.stats()
        });
        for s in &stats {
            assert_eq!(s.messages(OpClass::Halo), 3, "2 sides + 1 corner");
            // Side: 1 row/col of 4 elements × 2 channels = 8; corner: 1×2.
            assert_eq!(s.bytes(OpClass::Halo), (8 + 8 + 2) * 4);
        }
    }

    #[test]
    fn margins_match_paper_o_for_unit_stride() {
        // For S=1, the halo is exactly O = ⌊K/2⌋ on each side (§III-A).
        for k in [3usize, 5, 7] {
            let geom = ConvGeometry::square(16, 16, k, 1, k / 2);
            let layer = DistConv2d::new(1, 1, 1, geom, ProcGrid::spatial(2, 2));
            let o = k / 2;
            assert_eq!(layer.x_margins.0, [0, 0, o, o], "K={k}");
            assert_eq!(layer.x_margins.1, [0, 0, o, o], "K={k}");
        }
    }
}
