//! # fg-core — fine-grained parallel convolution and CNN training
//!
//! The reproduction of the paper's primary contribution: distributed-
//! memory algorithms for convolutional layers that exploit parallelism
//! beyond the sample dimension, and a distributed training executor that
//! runs whole CNNs under per-layer *parallel execution strategies*.
//!
//! * [`distconv`] — sample / spatial / hybrid convolution with halo
//!   exchange (§III-A), bitwise-equivalent to single-device execution;
//! * [`layers`] — distributed pooling, batch norm (local and aggregated,
//!   §III-B), ReLU, residual joins, global average pooling, and losses;
//! * [`channel_filter`] — channel and filter parallelism (§III-D);
//! * [`mp_fc`] — model-parallel fully-connected layers (§III-B);
//! * [`executor`] — runs an `fg-nn` [`fg_nn::NetworkSpec`] under a
//!   [`strategy::Strategy`], inserting halo exchanges, redistributions
//!   (§III-C) and gradient allreduces where the strategy demands them;
//! * [`overlap`] — interior/boundary decomposition so halo exchange
//!   overlaps interior compute (§IV-A);
//! * [`strategy`] — strategy containers and validation;
//! * [`verify`] — static schedule verification: symbolically executes
//!   every rank's compiled plans and proves the step deadlock-free and
//!   shape-sound before it runs (`FG_VERIFY=1`, `repro -- verify`);
//! * [`mem`] — static tensor-liveness analysis over the same compiled
//!   plans: exact per-rank peak-memory bounds (any world size, sampled
//!   ranks), interval-colored memory plans the executor runs via
//!   per-rank step arenas, and a budget gate (`FG_MEM_BUDGET`,
//!   `repro -- memscale`).

pub mod channel_filter;
pub mod distconv;
pub mod executor;
pub mod guard;
pub mod layers;
pub mod mem;
pub mod mp_fc;
pub mod overlap;
pub mod resilient;
pub mod servable;
pub mod spatial3d;
pub mod straggler;
pub mod strategy;
pub mod verify;

pub use channel_filter::ChannelFilterConv2d;
pub use distconv::DistConv2d;
pub use executor::{Act, DistExecutor, DistPass};
pub use guard::{Anomaly, GuardConfig, StepGuard};
pub use layers::{BnMode, DistPool2d};
pub use mem::{
    analyze_strategy, mem_budget_from_env, sample_ranks, MemCheckKind, MemReport, MemViolation,
    RankArena, RankMemBound,
};
pub use mp_fc::ModelParallelFc;
pub use resilient::{
    resilient_train, ComputeFault, Degradation, DegradeConfig, Rebalance, Replanner,
    ResilientConfig, ResilientReport, RungTimes, SgdHyper, SnapshotTelemetry,
};
pub use servable::ServableModel;
pub use straggler::{
    weights_from_ema, StragglerAction, StragglerConfig, StragglerFlag, StragglerGuard,
};
pub use strategy::{Strategy, StrategyError};
pub use verify::{candidate_grid_legal, ComputeOracle, VerifyReport};
