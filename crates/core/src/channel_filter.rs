//! Channel and filter parallelism for convolution (paper §III-D).
//!
//! The paper sketches these decompositions and defers implementation to
//! future work; we implement the natural 1-D variant the sketch
//! describes, over a group of `P` ranks:
//!
//! * the input `x` is partitioned on its **channel** dimension
//!   (`x_loc = x[:, c_block(r), :, :]`);
//! * the output `y` is partitioned on its **filter** dimension —
//!   "if the input x to a layer is partitioned on its C dimension, the
//!   output y is partitioned on its F dimension";
//! * weights are stored in two shards per rank — `w_c = w[:, c_block]`
//!   (used forward) and `w_f = w[f_block, :]` (used backward-data) —
//!   so each rank holds `2/P` of the weights.
//!
//! Communication, matching the paper's analysis:
//!
//! * **forward**: local partial over owned channels for *all* filters,
//!   then a reduce-scatter over the group completes the channel sum and
//!   leaves each rank its filter block;
//! * **backward-data**: symmetric — local partial from owned filters for
//!   all channels, reduce-scatter onto channel blocks;
//! * **backward-filter**: `dL/dw[f, c]` needs `x[c]` and `dy[f]`
//!   co-located ("may require data to be gathered"): the group
//!   allgathers `dy`, each rank computes `dw[:, c_block]`, and an
//!   all-to-all of filter-block slices assembles `dw[f_block, :]`.

use fg_comm::{Collectives, Communicator, ReduceOp};
use fg_kernels::conv::{
    conv2d_backward_data, conv2d_backward_filter, conv2d_forward, ConvGeometry,
};
use fg_tensor::{Box4, Shape4, Tensor};

/// A convolution layer parallelized over channels and filters across a
/// 1-D group of ranks. Spatial and sample dimensions stay local (compose
/// with other parallelism at a higher level).
#[derive(Debug, Clone, Copy)]
pub struct ChannelFilterConv2d {
    /// Convolution geometry.
    pub geom: ConvGeometry,
    /// Mini-batch size.
    pub n: usize,
    /// Global input channels.
    pub c: usize,
    /// Global filters.
    pub f: usize,
    /// Group size P.
    pub parts: usize,
}

impl ChannelFilterConv2d {
    /// Create the layer; both `c` and `f` must be divisible into
    /// non-empty blocks over `parts`.
    pub fn new(n: usize, c: usize, f: usize, geom: ConvGeometry, parts: usize) -> Self {
        assert!(c >= parts && f >= parts, "channel/filter blocks would be empty");
        ChannelFilterConv2d { geom, n, c, f, parts }
    }

    /// Channel block of `rank`.
    pub fn c_block(&self, rank: usize) -> std::ops::Range<usize> {
        fg_comm::collectives::block_range(self.c, self.parts, rank)
    }

    /// Filter block of `rank`.
    pub fn f_block(&self, rank: usize) -> std::ops::Range<usize> {
        fg_comm::collectives::block_range(self.f, self.parts, rank)
    }

    /// Extract this rank's weight shards `(w_c, w_f)` from full weights
    /// (for initialization/testing).
    pub fn shard_weights(&self, w: &Tensor, rank: usize) -> (Tensor, Tensor) {
        assert_eq!(w.shape(), Shape4::new(self.f, self.c, self.geom.kh, self.geom.kw));
        let cb = self.c_block(rank);
        let fb = self.f_block(rank);
        let w_c = w.slice_box(&Box4::new(
            [0, cb.start, 0, 0],
            [self.f, cb.end, self.geom.kh, self.geom.kw],
        ));
        let w_f = w.slice_box(&Box4::new(
            [fb.start, 0, 0, 0],
            [fb.end, self.c, self.geom.kh, self.geom.kw],
        ));
        (w_c, w_f)
    }

    /// Forward: `x_loc (N, C_loc, H, W)` with `w_c (F, C_loc, K, K)` →
    /// `y_loc (N, F_loc, OH, OW)`. Collective over the group.
    pub fn forward<C: Communicator>(&self, comm: &C, x_loc: &Tensor, w_c: &Tensor) -> Tensor {
        debug_assert_eq!(comm.size(), self.parts);
        // Local partial for all filters over owned channels (Eq. 1's
        // channel sum restricted to I_p^(C)).
        let partial = conv2d_forward(x_loc, w_c, None, &self.geom);
        // Reduce-scatter the filter dimension across the group.
        self.reduce_scatter_dim_c(comm, &partial, self.f)
    }

    /// Backward-data: `dy_loc (N, F_loc, OH, OW)` with
    /// `w_f (F_loc, C, K, K)` → `dx_loc (N, C_loc, H, W)`.
    pub fn backward_data<C: Communicator>(
        &self,
        comm: &C,
        dy_loc: &Tensor,
        w_f: &Tensor,
    ) -> Tensor {
        debug_assert_eq!(comm.size(), self.parts);
        // Local partial over owned filters for all channels (Eq. 3's
        // filter sum restricted to I_p^(F)).
        let partial = conv2d_backward_data(dy_loc, w_f, &self.geom);
        self.reduce_scatter_dim_c(comm, &partial, self.c)
    }

    /// Backward-filter: returns this rank's gradient shards
    /// `(dw_c, dw_f)` (matching `shard_weights`' layout), with the
    /// channel/filter sums completed inside the group. A cross-group
    /// (sample) allreduce composes on top, as with replicated weights.
    pub fn backward_filter<C: Communicator>(
        &self,
        comm: &C,
        x_loc: &Tensor,
        dy_loc: &Tensor,
    ) -> (Tensor, Tensor) {
        debug_assert_eq!(comm.size(), self.parts);
        let rank = comm.rank();
        // Gather the full error signal (partitioned on F) into the group.
        let dy_parts = comm.allgatherv(dy_loc.as_slice().to_vec());
        let (oh, ow) = (self.geom.out_h(), self.geom.out_w());
        let mut dy_full = Tensor::zeros(Shape4::new(self.n, self.f, oh, ow));
        for (r, data) in dy_parts.iter().enumerate() {
            let fb = self.f_block(r);
            dy_full.unpack_box(&Box4::new([0, fb.start, 0, 0], [self.n, fb.end, oh, ow]), data);
        }
        // dw over my channel block, all filters.
        let (dw_c, _db) = conv2d_backward_filter(x_loc, &dy_full, &self.geom);
        // Exchange filter-block slices so each rank also assembles
        // dw[f_block, :] (the w_f shard's gradient).
        let sends: Vec<Vec<f32>> = (0..self.parts)
            .map(|r| {
                let fb = self.f_block(r);
                let cb = self.c_block(rank);
                dw_c.pack_box(&Box4::new(
                    [fb.start, 0, 0, 0],
                    [fb.end, cb.len(), self.geom.kh, self.geom.kw],
                ))
            })
            .collect();
        let recvs = comm.alltoallv(sends);
        let fb = self.f_block(rank);
        let mut dw_f = Tensor::zeros(Shape4::new(fb.len(), self.c, self.geom.kh, self.geom.kw));
        for (r, data) in recvs.iter().enumerate() {
            let cb = self.c_block(r);
            dw_f.unpack_box(
                &Box4::new([0, cb.start, 0, 0], [fb.len(), cb.end, self.geom.kh, self.geom.kw]),
                data,
            );
        }
        (dw_c, dw_f)
    }

    /// Reduce-scatter a locally complete tensor partitioned on its C
    /// dimension: every rank contributes a full `(N, dim, H', W')`
    /// partial; rank `r` receives the summed block `dim_block(r)`.
    fn reduce_scatter_dim_c<C: Communicator>(
        &self,
        comm: &C,
        partial: &Tensor,
        dim: usize,
    ) -> Tensor {
        let s = partial.shape();
        debug_assert_eq!(s.c, dim);
        // Pack per-destination blocks and exchange pairwise, then sum —
        // a reduce-scatter with tensor-aware chunking.
        let sends: Vec<Vec<f32>> = (0..self.parts)
            .map(|r| {
                let b = fg_comm::collectives::block_range(dim, self.parts, r);
                partial.pack_box(&Box4::new([0, b.start, 0, 0], [s.n, b.end, s.h, s.w]))
            })
            .collect();
        let recvs = comm.alltoallv(sends);
        let my = fg_comm::collectives::block_range(dim, self.parts, comm.rank());
        let mut out = vec![0.0f32; s.n * my.len() * s.h * s.w];
        // Deterministic order: contributions summed by source rank.
        for data in &recvs {
            debug_assert_eq!(data.len(), out.len());
            for (o, v) in out.iter_mut().zip(data) {
                *o += v;
            }
        }
        Tensor::from_vec(Shape4::new(s.n, my.len(), s.h, s.w), out)
    }
}

/// Convenience used by tests and the perf model: the per-rank traffic of
/// one forward reduce-scatter in elements (every rank sends P−1 blocks).
pub fn forward_rs_elements(layer: &ChannelFilterConv2d) -> usize {
    let per_block = layer.n * layer.geom.out_h() * layer.geom.out_w() * (layer.f / layer.parts);
    per_block * (layer.parts - 1)
}

// Re-export for the allreduce used when composing with sample groups.
#[allow(unused_imports)]
use ReduceOp as _ReduceOpUsed;

#[cfg(test)]
mod tests {
    use super::*;
    use fg_comm::run_ranks;
    use fg_kernels::conv::{
        conv2d_backward_data as serial_bd, conv2d_backward_filter as serial_bf,
        conv2d_forward as serial_fwd,
    };
    use fg_tensor::Shape4;

    fn pattern(shape: Shape4, seed: usize) -> Tensor {
        Tensor::from_fn(shape, |n, c, h, w| {
            (((n * 19 + c * 11 + h * 5 + w * 3 + seed) % 23) as f32) * 0.25 - 2.0
        })
    }

    fn check(n: usize, c: usize, f: usize, geom: ConvGeometry, parts: usize) {
        let layer = ChannelFilterConv2d::new(n, c, f, geom, parts);
        let x = pattern(Shape4::new(n, c, geom.in_h, geom.in_w), 1);
        let w = pattern(Shape4::new(f, c, geom.kh, geom.kw), 2);
        let y_serial = serial_fwd(&x, &w, None, &geom);
        let dy = pattern(y_serial.shape(), 3);
        let dx_serial = serial_bd(&dy, &w, &geom);
        let (dw_serial, _db) = serial_bf(&x, &dy, &geom);

        let outs = run_ranks(parts, |comm| {
            let r = comm.rank();
            let cb = layer.c_block(r);
            let fb = layer.f_block(r);
            let x_loc =
                x.slice_box(&Box4::new([0, cb.start, 0, 0], [n, cb.end, geom.in_h, geom.in_w]));
            let (w_c, w_f) = layer.shard_weights(&w, r);
            let y_loc = layer.forward(comm, &x_loc, &w_c);
            let dy_loc = dy.slice_box(&Box4::new(
                [0, fb.start, 0, 0],
                [n, fb.end, geom.out_h(), geom.out_w()],
            ));
            let dx_loc = layer.backward_data(comm, &dy_loc, &w_f);
            let (dw_c, dw_f) = layer.backward_filter(comm, &x_loc, &dy_loc);
            (y_loc, dx_loc, dw_c, dw_f)
        });

        for (r, (y_loc, dx_loc, dw_c, dw_f)) in outs.iter().enumerate() {
            let fb = layer.f_block(r);
            let cb = layer.c_block(r);
            // Forward: y block matches serial.
            let want_y = y_serial.slice_box(&Box4::new(
                [0, fb.start, 0, 0],
                [n, fb.end, geom.out_h(), geom.out_w()],
            ));
            y_loc.assert_close(&want_y, 1e-4);
            // Backward-data: dx block matches serial.
            let want_dx = dx_serial
                .slice_box(&Box4::new([0, cb.start, 0, 0], [n, cb.end, geom.in_h, geom.in_w]));
            dx_loc.assert_close(&want_dx, 1e-4);
            // Filter gradients: both shards match serial slices.
            let want_dw_c =
                dw_serial.slice_box(&Box4::new([0, cb.start, 0, 0], [f, cb.end, geom.kh, geom.kw]));
            dw_c.assert_close(&want_dw_c, 1e-4);
            let want_dw_f =
                dw_serial.slice_box(&Box4::new([fb.start, 0, 0, 0], [fb.end, c, geom.kh, geom.kw]));
            dw_f.assert_close(&want_dw_f, 1e-4);
        }
    }

    #[test]
    fn two_way_channel_filter_matches_serial() {
        check(2, 4, 6, ConvGeometry::square(6, 6, 3, 1, 1), 2);
    }

    #[test]
    fn four_way_matches_serial() {
        check(1, 8, 8, ConvGeometry::square(8, 8, 3, 1, 1), 4);
    }

    #[test]
    fn strided_and_1x1_cases() {
        check(2, 4, 4, ConvGeometry::square(8, 8, 3, 2, 1), 2);
        check(1, 6, 9, ConvGeometry::square(5, 5, 1, 1, 0), 3);
    }

    #[test]
    fn uneven_blocks_match_serial() {
        // 5 channels / 7 filters over 2 ranks: blocks (3,2) and (4,3).
        check(1, 5, 7, ConvGeometry::square(6, 6, 3, 1, 1), 2);
    }

    #[test]
    fn weight_shards_cover_memory_claim() {
        // Each rank holds F·C_loc + F_loc·C kernels ≈ 2/P of the weights.
        let geom = ConvGeometry::square(8, 8, 3, 1, 1);
        let layer = ChannelFilterConv2d::new(1, 8, 8, geom, 4);
        let w = pattern(Shape4::new(8, 8, 3, 3), 9);
        let (w_c, w_f) = layer.shard_weights(&w, 1);
        assert_eq!(w_c.shape(), Shape4::new(8, 2, 3, 3));
        assert_eq!(w_f.shape(), Shape4::new(2, 8, 3, 3));
        assert_eq!(w_c.len() + w_f.len(), w.len() / 2); // 2/P with P=4
    }
}
