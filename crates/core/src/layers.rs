//! Distributed versions of the non-convolution layers (paper §III-B).
//!
//! * **Pooling** — partitioned like convolution, with halo exchanges
//!   sized from the pooling window.
//! * **Batch normalization** — two variants, as discussed in the paper:
//!   [`BnMode::Local`] (statistics over the local shard only; no
//!   communication, different numerics from a single device) and
//!   [`BnMode::Aggregated`] (partial moments allreduced, exactly
//!   replicating single-device training).
//! * **ReLU / Add** — elementwise; "parallelize trivially regardless of
//!   distribution".
//! * **Global average pooling** — spatial-partial sums reduced within
//!   each sample's spatial group, producing a *per-sample replicated*
//!   activation (the representation FC layers and classification losses
//!   consume).
//! * **Softmax cross-entropy** — per-position over shards (semantic
//!   segmentation) or per-sample over replicated activations
//!   (classification).

use fg_comm::{Collectives, Communicator, ReduceOp, SubComm};
use fg_kernels::batchnorm::{
    bn_backward_apply, bn_backward_partials, bn_forward_with_stats, bn_partial_moments,
    BnPartials, BnStats,
};
use fg_kernels::conv::ConvGeometry;
use fg_kernels::loss::{softmax_cross_entropy, Labels};
use fg_kernels::pool::{pool2d_backward_region, pool2d_forward_region, PoolKind};
use fg_tensor::halo::exchange_halo;
use fg_tensor::{DistTensor, ProcGrid, Shape4, Tensor, TensorDist, NDIMS};

/// Batch-norm statistics scope under data decomposition (§III-B).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum BnMode {
    /// Statistics over the whole mini-batch (allreduced); bit-comparable
    /// to single-device training.
    #[default]
    Aggregated,
    /// Purely local statistics; no communication (the "typically
    /// computed locally" variant).
    Local,
}

/// A distributed 2-D pooling layer.
#[derive(Debug, Clone)]
pub struct DistPool2d {
    /// Pooling kind.
    pub kind: PoolKind,
    /// Window geometry (reuses the convolution geometry container).
    pub geom: ConvGeometry,
    /// Input distribution.
    pub in_dist: TensorDist,
    /// Output distribution.
    pub out_dist: TensorDist,
    x_margins: ([usize; NDIMS], [usize; NDIMS]),
    dy_margins: ([usize; NDIMS], [usize; NDIMS]),
}

impl DistPool2d {
    /// Create a pooling layer over `grid` (channel extent must be 1).
    pub fn new(kind: PoolKind, n: usize, c: usize, geom: ConvGeometry, grid: ProcGrid) -> Self {
        assert_eq!(grid.c, 1, "pooling does not partition channels");
        let in_shape = Shape4::new(n, c, geom.in_h, geom.in_w);
        let out_shape = Shape4::new(n, c, geom.out_h(), geom.out_w());
        let in_dist = TensorDist::new(in_shape, grid);
        let out_dist = TensorDist::new(out_shape, grid);
        assert!(
            in_dist.is_fully_populated() && out_dist.is_fully_populated(),
            "grid {grid} leaves ranks without work for pooling on {in_shape}"
        );
        // The x window must cover forward taps of the owned output block
        // AND (for backward) the taps of every output contributing to the
        // owned input block. Take the elementwise max of the two needs.
        let h = margin_max(grid.h, in_shape.h, out_shape.h, |o0, o1| {
            geom.input_rows_for_output(o0, o1)
        }, |i0, i1| geom.output_rows_for_input(i0, i1));
        let w = margin_max(grid.w, in_shape.w, out_shape.w, |o0, o1| {
            geom.input_cols_for_output(o0, o1)
        }, |i0, i1| geom.output_cols_for_input(i0, i1));
        let x_margins = ([0, 0, h.0 .0, w.0 .0], [0, 0, h.0 .1, w.0 .1]);
        let dy_margins = ([0, 0, h.1 .0, w.1 .0], [0, 0, h.1 .1, w.1 .1]);
        DistPool2d { kind, geom, in_dist, out_dist, x_margins, dy_margins }
    }

    /// Forward pooling; returns `(y, x_window)`.
    pub fn forward<C: Communicator>(&self, comm: &C, x: &DistTensor) -> (DistTensor, DistTensor) {
        debug_assert_eq!(*x.dist(), self.in_dist);
        let mut win =
            DistTensor::new(self.in_dist, comm.rank(), self.x_margins.0, self.x_margins.1);
        win.set_owned(&x.owned_tensor());
        exchange_halo(comm, &mut win);
        let mut y = DistTensor::new_unpadded(self.out_dist, comm.rank());
        let ob = y.own_box();
        let local = pool2d_forward_region(
            self.kind,
            win.local(),
            (win.origin()[2], win.origin()[3]),
            &self.geom,
            (ob.lo[2], ob.hi[2]),
            (ob.lo[3], ob.hi[3]),
        );
        y.set_owned(&local);
        (y, win)
    }

    /// Backward pooling: error signal for the parent.
    pub fn backward<C: Communicator>(
        &self,
        comm: &C,
        x_window: &DistTensor,
        dy: &DistTensor,
    ) -> DistTensor {
        debug_assert_eq!(*dy.dist(), self.out_dist);
        let mut dyw =
            DistTensor::new(self.out_dist, comm.rank(), self.dy_margins.0, self.dy_margins.1);
        dyw.set_owned(&dy.owned_tensor());
        exchange_halo(comm, &mut dyw);
        let mut dx = DistTensor::new_unpadded(self.in_dist, comm.rank());
        let ib = dx.own_box();
        let local = pool2d_backward_region(
            self.kind,
            x_window.local(),
            (x_window.origin()[2], x_window.origin()[3]),
            dyw.local(),
            (dyw.origin()[2], dyw.origin()[3]),
            &self.geom,
            (ib.lo[2], ib.hi[2]),
            (ib.lo[3], ib.hi[3]),
        );
        dx.set_owned(&local);
        dx
    }
}

/// For one dimension, compute `(x_margins, dy_margins)` as
/// `((lo, hi), (lo, hi))` covering both forward and backward needs.
#[allow(clippy::type_complexity)]
fn margin_max(
    parts: usize,
    in_total: usize,
    out_total: usize,
    in_for_out: impl Fn(usize, usize) -> (i64, i64),
    out_for_in: impl Fn(usize, usize) -> (usize, usize),
) -> ((usize, usize), (usize, usize)) {
    let mut x_lo = 0i64;
    let mut x_hi = 0i64;
    let mut d_lo = 0i64;
    let mut d_hi = 0i64;
    for g in 0..parts {
        let ib = fg_comm::collectives::block_range(in_total, parts, g);
        let ob = fg_comm::collectives::block_range(out_total, parts, g);
        // Forward: x needed for own output block.
        let (lo, hi) = in_for_out(ob.start, ob.end);
        x_lo = x_lo.max(ib.start as i64 - lo);
        x_hi = x_hi.max(hi - ib.end as i64);
        // Backward: outputs touching own input block...
        let (q0, q1) = out_for_in(ib.start, ib.end);
        d_lo = d_lo.max(ob.start as i64 - q0 as i64);
        d_hi = d_hi.max(q1 as i64 - ob.end as i64);
        // ...and the x taps of those outputs (the backward kernel walks
        // each contributing window over x).
        if q0 < q1 {
            let (lo, hi) = in_for_out(q0, q1);
            x_lo = x_lo.max(ib.start as i64 - lo);
            x_hi = x_hi.max(hi - ib.end as i64);
        }
    }
    (
        (x_lo.max(0) as usize, x_hi.max(0) as usize),
        (d_lo.max(0) as usize, d_hi.max(0) as usize),
    )
}

/// Distributed batch-norm forward on an unpadded shard. Returns
/// `(y, stats)`; in aggregated mode the stats equal single-device batch
/// statistics.
pub fn dist_bn_forward<C: Communicator>(
    comm: &C,
    x: &DistTensor,
    gamma: &[f32],
    beta: &[f32],
    eps: f32,
    mode: BnMode,
) -> (DistTensor, BnStats) {
    let owned = x.owned_tensor();
    let partials = bn_partial_moments(&owned);
    let stats = match mode {
        BnMode::Local => partials.finalize(),
        BnMode::Aggregated => {
            let summed = comm.allreduce(&partials.to_flat(), ReduceOp::Sum);
            BnPartials::from_flat(&summed, owned.shape().c).finalize()
        }
    };
    let y_local = bn_forward_with_stats(&owned, &stats, gamma, beta, eps);
    let mut y = DistTensor::new_unpadded(*x.dist(), x.rank());
    y.set_owned(&y_local);
    (y, stats)
}

/// Distributed batch-norm backward. Returns `(dx, dgamma, dbeta)` with
/// parameter gradients already globally summed (identical on all ranks).
pub fn dist_bn_backward<C: Communicator>(
    comm: &C,
    x: &DistTensor,
    dy: &DistTensor,
    stats: &BnStats,
    gamma: &[f32],
    eps: f32,
    mode: BnMode,
) -> (DistTensor, Vec<f32>, Vec<f32>) {
    let x_owned = x.owned_tensor();
    let dy_owned = dy.owned_tensor();
    let (sum_dy, sum_dy_xhat) = bn_backward_partials(&x_owned, &dy_owned, stats, eps);
    let c = x_owned.shape().c;
    match mode {
        BnMode::Aggregated => {
            // One allreduce carries both partials plus the local count.
            let mut flat = sum_dy.clone();
            flat.extend_from_slice(&sum_dy_xhat);
            flat.push((x_owned.shape().n * x_owned.shape().h * x_owned.shape().w) as f64);
            let summed = comm.allreduce(&flat, ReduceOp::Sum);
            let g_sum_dy = &summed[..c];
            let g_sum_dy_xhat = &summed[c..2 * c];
            let total = summed[2 * c];
            let dx_local = bn_backward_apply(
                &x_owned, &dy_owned, stats, gamma, g_sum_dy, g_sum_dy_xhat, total, eps,
            );
            let mut dx = DistTensor::new_unpadded(*x.dist(), x.rank());
            dx.set_owned(&dx_local);
            let dgamma: Vec<f32> = g_sum_dy_xhat.iter().map(|&v| v as f32).collect();
            let dbeta: Vec<f32> = g_sum_dy.iter().map(|&v| v as f32).collect();
            (dx, dgamma, dbeta)
        }
        BnMode::Local => {
            let total = (x_owned.shape().n * x_owned.shape().h * x_owned.shape().w) as f64;
            let dx_local = bn_backward_apply(
                &x_owned, &dy_owned, stats, gamma, &sum_dy, &sum_dy_xhat, total, eps,
            );
            let mut dx = DistTensor::new_unpadded(*x.dist(), x.rank());
            dx.set_owned(&dx_local);
            // Parameters are replicated, so their gradients still sum
            // over all shards even when statistics were local.
            let mut flat = sum_dy_xhat;
            flat.extend_from_slice(&sum_dy);
            let summed = comm.allreduce(&flat, ReduceOp::Sum);
            let dgamma: Vec<f32> = summed[..c].iter().map(|&v| v as f32).collect();
            let dbeta: Vec<f32> = summed[c..].iter().map(|&v| v as f32).collect();
            (dx, dgamma, dbeta)
        }
    }
}

/// Distributed ReLU: elementwise on the owned region.
pub fn dist_relu_forward(x: &DistTensor) -> DistTensor {
    let mut y = DistTensor::new_unpadded(*x.dist(), x.rank());
    y.set_owned(&fg_kernels::relu::relu_forward(&x.owned_tensor()));
    y
}

/// Distributed ReLU backward.
pub fn dist_relu_backward(x: &DistTensor, dy: &DistTensor) -> DistTensor {
    let mut dx = DistTensor::new_unpadded(*x.dist(), x.rank());
    dx.set_owned(&fg_kernels::relu::relu_backward(&x.owned_tensor(), &dy.owned_tensor()));
    dx
}

/// Distributed elementwise add (residual join); shards must share a
/// distribution.
pub fn dist_add(parts: &[&DistTensor]) -> DistTensor {
    assert!(!parts.is_empty());
    let mut acc = parts[0].owned_tensor();
    for p in &parts[1..] {
        assert_eq!(p.dist(), parts[0].dist(), "residual join requires matching distributions");
        acc.add_assign(&p.owned_tensor());
    }
    let mut y = DistTensor::new_unpadded(*parts[0].dist(), parts[0].rank());
    y.set_owned(&acc);
    y
}

/// The spatial subgroup of `rank` under `grid`: ranks sharing its sample
/// (and channel) coordinates. Collectives in this group aggregate over
/// one sample block's spatial shards.
pub fn spatial_group<'a, C: Communicator>(comm: &'a C, grid: ProcGrid) -> SubComm<'a, C> {
    let fixed = [true, true, false, false];
    let members = grid.group_of(comm.rank(), fixed);
    let id = grid.group_id(comm.rank(), fixed);
    SubComm::new(comm, members, id).expect("spatial group is valid")
}

/// The cross-section subgroup: ranks sharing this rank's spatial/channel
/// position across all sample groups. Collectives here sum per-sample
/// partials into whole-batch values without double-counting replicas.
pub fn cross_section_group<'a, C: Communicator>(comm: &'a C, grid: ProcGrid) -> SubComm<'a, C> {
    let fixed = [false, true, true, true];
    let members = grid.group_of(comm.rank(), fixed);
    let id = grid.group_id(comm.rank(), fixed) + (1 << 20); // distinct salt space
    SubComm::new(comm, members, id).expect("cross-section group is valid")
}

/// Distributed global average pooling: shard → per-sample replicated
/// `(n_loc, C, 1, 1)` tensor (identical on all ranks of a sample group).
pub fn dist_global_avg_pool<C: Communicator>(comm: &C, x: &DistTensor) -> Tensor {
    let shape = x.dist().shape;
    let grid = x.dist().grid;
    let own = x.own_box();
    let n_loc = own.hi[0] - own.lo[0];
    let owned = x.owned_tensor();
    // Local spatial partial sums, already scaled by the global plane size.
    let s = owned.shape();
    let scale = 1.0f32 / (shape.h * shape.w) as f32;
    let mut partial = vec![0.0f32; n_loc * shape.c];
    for n in 0..s.n {
        for c in 0..s.c {
            let base = s.offset(n, c, 0, 0);
            let sum: f32 = owned.as_slice()[base..base + s.h * s.w].iter().sum();
            partial[n * shape.c + c] = sum * scale;
        }
    }
    let group = spatial_group(comm, grid);
    let total = group.allreduce(&partial, ReduceOp::Sum);
    Tensor::from_vec(Shape4::new(n_loc, shape.c, 1, 1), total)
}

/// Backward of [`dist_global_avg_pool`]: per-sample replicated `dy`
/// broadcast over the owned spatial region.
pub fn dist_global_avg_pool_backward(x: &DistTensor, dy: &Tensor) -> DistTensor {
    let shape = x.dist().shape;
    let scale = 1.0f32 / (shape.h * shape.w) as f32;
    let own = x.own_box();
    let mut dx = DistTensor::new_unpadded(*x.dist(), x.rank());
    let mut local = Tensor::zeros(own.shape());
    let s = local.shape();
    for n in 0..s.n {
        for c in 0..s.c {
            let g = dy.at(n, c, 0, 0) * scale;
            let base = s.offset(n, c, 0, 0);
            for v in &mut local.as_mut_slice()[base..base + s.h * s.w] {
                *v = g;
            }
        }
    }
    dx.set_owned(&local);
    dx
}

/// Distributed per-position softmax cross-entropy on a shard
/// (semantic segmentation). Returns `(global mean loss, local dlogits)`.
///
/// Labels are globally replicated; each rank slices its owned positions.
pub fn dist_softmax_xent_shard<C: Communicator>(
    comm: &C,
    logits: &DistTensor,
    labels: &Labels,
) -> (f64, DistTensor) {
    let shape = logits.dist().shape;
    assert_eq!((labels.n, labels.h, labels.w), (shape.n, shape.h, shape.w));
    let own = logits.own_box();
    let owned = logits.owned_tensor();
    // Slice labels to the owned positions.
    let mut local_labels = Vec::with_capacity((own.hi[0] - own.lo[0]) * (own.hi[2] - own.lo[2]) * (own.hi[3] - own.lo[3]));
    for n in own.lo[0]..own.hi[0] {
        for h in own.lo[2]..own.hi[2] {
            for w in own.lo[3]..own.hi[3] {
                local_labels.push(labels.at(n, h, w));
            }
        }
    }
    let local_lab = Labels::per_pixel(
        own.hi[0] - own.lo[0],
        own.hi[2] - own.lo[2],
        own.hi[3] - own.lo[3],
        local_labels,
    );
    let (mean_local, mut grad_local) = softmax_cross_entropy(&owned, &local_lab);
    let local_positions = (local_lab.n * local_lab.h * local_lab.w) as f64;
    let global_positions = (shape.n * shape.h * shape.w) as f64;
    // Convert the local mean into a global mean and rescale the gradient.
    let sums = comm.allreduce(&[mean_local * local_positions], ReduceOp::Sum);
    grad_local.scale((local_positions / global_positions) as f32);
    let mut dlogits = DistTensor::new_unpadded(*logits.dist(), logits.rank());
    dlogits.set_owned(&grad_local);
    (sums[0] / global_positions, dlogits)
}

/// Classification softmax cross-entropy on per-sample replicated logits
/// `(n_loc, C, 1, 1)`. Returns `(global mean loss, dlogits)` with the
/// gradient scaled by the global batch size.
pub fn dist_softmax_xent_per_sample<C: Communicator>(
    comm: &C,
    grid: ProcGrid,
    logits: &Tensor,
    labels_local: &Labels,
) -> (f64, Tensor) {
    let n_loc = logits.shape().n;
    assert_eq!(labels_local.n, n_loc, "labels must match the local sample block");
    let (mean_local, mut grad) = softmax_cross_entropy(logits, labels_local);
    // Sum distinct sample blocks only: replicas within a sample group
    // hold identical values, so reduce across the cross-section.
    let group = cross_section_group(comm, grid);
    let sums = group.allreduce(&[mean_local * n_loc as f64, n_loc as f64], ReduceOp::Sum);
    let global_n = sums[1];
    grad.scale((n_loc as f64 / global_n) as f32);
    (sums[0] / global_n, grad)
}

#[cfg(test)]
mod tests {
    use super::*;
    use fg_comm::run_ranks;
    use fg_kernels::batchnorm::{bn_backward, bn_forward};
    use fg_kernels::pool::{pool2d_backward, pool2d_forward};
    use fg_tensor::gather::gather_to_root;

    fn pattern(shape: Shape4, seed: usize) -> Tensor {
        Tensor::from_fn(shape, |n, c, h, w| {
            (((n * 29 + c * 13 + h * 7 + w * 3 + seed) % 17) as f32) * 0.4 - 3.0
        })
    }

    fn check_pool(kind: PoolKind, n: usize, c: usize, geom: ConvGeometry, grid: ProcGrid) {
        let x = pattern(Shape4::new(n, c, geom.in_h, geom.in_w), 1);
        let y_serial = pool2d_forward(kind, &x, &geom);
        let dy = pattern(y_serial.shape(), 2);
        let dx_serial = pool2d_backward(kind, &x, &dy, &geom);
        let layer = DistPool2d::new(kind, n, c, geom, grid);
        let outs = run_ranks(grid.size(), |comm| {
            let xs = DistTensor::from_global(layer.in_dist, comm.rank(), &x, [0; 4], [0; 4]);
            let (y, win) = layer.forward(comm, &xs);
            let dys = DistTensor::from_global(layer.out_dist, comm.rank(), &dy, [0; 4], [0; 4]);
            let dx = layer.backward(comm, &win, &dys);
            (gather_to_root(comm, &y, 0), gather_to_root(comm, &dx, 0))
        });
        assert_eq!(outs[0].0.as_ref().unwrap(), &y_serial, "pool fwd {kind:?} grid {grid}");
        assert_eq!(outs[0].1.as_ref().unwrap(), &dx_serial, "pool bwd {kind:?} grid {grid}");
    }

    #[test]
    fn max_pool_resnet_style_spatial() {
        // 3x3 stride-2 pad-1 (ResNet's pool after conv1), overlapping
        // windows crossing shard borders.
        check_pool(PoolKind::Max, 2, 2, ConvGeometry::square(8, 8, 3, 2, 1), ProcGrid::spatial(2, 2));
    }

    #[test]
    fn avg_pool_spatial_and_hybrid() {
        check_pool(PoolKind::Avg, 2, 3, ConvGeometry::square(8, 8, 2, 2, 0), ProcGrid::spatial(2, 2));
        check_pool(PoolKind::Avg, 4, 1, ConvGeometry::square(6, 6, 3, 1, 1), ProcGrid::hybrid(2, 2, 1));
    }

    #[test]
    fn pool_uneven_blocks() {
        check_pool(PoolKind::Max, 1, 1, ConvGeometry::square(10, 10, 3, 2, 1), ProcGrid::spatial(3, 1));
    }

    #[test]
    fn aggregated_bn_matches_serial() {
        let shape = Shape4::new(4, 3, 8, 8);
        let x = pattern(shape, 3);
        let gamma = vec![1.5, 0.5, 1.0];
        let beta = vec![0.1, -0.2, 0.0];
        let (y_serial, stats_serial) = bn_forward(&x, &gamma, &beta, 1e-5);
        let dy = pattern(shape, 4);
        let (dx_serial, dg_serial, db_serial) = bn_backward(&x, &dy, &stats_serial, &gamma, 1e-5);

        let grid = ProcGrid::hybrid(2, 2, 1);
        let dist = TensorDist::new(shape, grid);
        let outs = run_ranks(4, |comm| {
            let xs = DistTensor::from_global(dist, comm.rank(), &x, [0; 4], [0; 4]);
            let (y, stats) = dist_bn_forward(comm, &xs, &gamma, &beta, 1e-5, BnMode::Aggregated);
            let dys = DistTensor::from_global(dist, comm.rank(), &dy, [0; 4], [0; 4]);
            let (dx, dg, db) =
                dist_bn_backward(comm, &xs, &dys, &stats, &gamma, 1e-5, BnMode::Aggregated);
            (gather_to_root(comm, &y, 0), gather_to_root(comm, &dx, 0), dg, db, stats)
        });
        outs[0].0.as_ref().unwrap().assert_close(&y_serial, 1e-4);
        outs[0].1.as_ref().unwrap().assert_close(&dx_serial, 1e-3);
        for (dg, db) in outs.iter().map(|o| (&o.2, &o.3)) {
            for (a, b) in dg.iter().zip(&dg_serial) {
                assert!((a - b).abs() < 1e-3 * a.abs().max(1.0), "dgamma {a} vs {b}");
            }
            for (a, b) in db.iter().zip(&db_serial) {
                assert!((a - b).abs() < 1e-3 * a.abs().max(1.0), "dbeta {a} vs {b}");
            }
        }
        // Aggregated statistics equal serial batch statistics.
        for c in 0..3 {
            assert!((outs[0].4.mean[c] - stats_serial.mean[c]).abs() < 1e-5);
            assert!((outs[0].4.var[c] - stats_serial.var[c]).abs() < 1e-4);
        }
    }

    #[test]
    fn local_bn_differs_from_serial_but_is_consistent() {
        let shape = Shape4::new(4, 2, 4, 4);
        let x = pattern(shape, 5);
        let gamma = vec![1.0, 1.0];
        let beta = vec![0.0, 0.0];
        let (y_serial, _stats) = bn_forward(&x, &gamma, &beta, 1e-5);
        let grid = ProcGrid::sample(4);
        let dist = TensorDist::new(shape, grid);
        let ys = run_ranks(4, |comm| {
            let xs = DistTensor::from_global(dist, comm.rank(), &x, [0; 4], [0; 4]);
            let (y, _stats) = dist_bn_forward(comm, &xs, &gamma, &beta, 1e-5, BnMode::Local);
            gather_to_root(comm, &y, 0)
        });
        let y_local = ys[0].as_ref().unwrap();
        // Local statistics genuinely differ from batch statistics here.
        assert!(y_local.max_abs_diff(&y_serial) > 1e-3, "local BN should differ from serial");
        // But each local shard is itself normalized (mean ~ 0 per shard).
        let p = fg_kernels::batchnorm::bn_partial_moments(
            &y_local.slice_box(&fg_tensor::Box4::new([0, 0, 0, 0], [1, 2, 4, 4])),
        )
        .finalize();
        assert!(p.mean.iter().all(|m| m.abs() < 1e-4));
    }

    #[test]
    fn relu_and_add_preserve_distribution_equivalence() {
        let shape = Shape4::new(2, 2, 6, 6);
        let a = pattern(shape, 6);
        let b = pattern(shape, 7);
        let grid = ProcGrid::spatial(2, 2);
        let dist = TensorDist::new(shape, grid);
        let outs = run_ranks(4, |comm| {
            let da = DistTensor::from_global(dist, comm.rank(), &a, [0; 4], [0; 4]);
            let db = DistTensor::from_global(dist, comm.rank(), &b, [0; 4], [0; 4]);
            let sum = dist_add(&[&da, &db]);
            let r = dist_relu_forward(&sum);
            let dy = DistTensor::from_global(dist, comm.rank(), &b, [0; 4], [0; 4]);
            let dx = dist_relu_backward(&sum, &dy);
            (gather_to_root(comm, &r, 0), gather_to_root(comm, &dx, 0))
        });
        let mut sum_serial = a.clone();
        sum_serial.add_assign(&b);
        let r_serial = fg_kernels::relu::relu_forward(&sum_serial);
        let dx_serial = fg_kernels::relu::relu_backward(&sum_serial, &b);
        assert_eq!(outs[0].0.as_ref().unwrap(), &r_serial);
        assert_eq!(outs[0].1.as_ref().unwrap(), &dx_serial);
    }

    #[test]
    fn global_avg_pool_replicates_within_sample_groups() {
        let shape = Shape4::new(4, 3, 6, 6);
        let x = pattern(shape, 8);
        let grid = ProcGrid::hybrid(2, 2, 1);
        let dist = TensorDist::new(shape, grid);
        let serial = fg_nn::network::global_avg_pool(&x);
        let outs = run_ranks(4, |comm| {
            let xs = DistTensor::from_global(dist, comm.rank(), &x, [0; 4], [0; 4]);
            dist_global_avg_pool(comm, &xs)
        });
        // Ranks 0,1 share sample block 0..2; ranks 2,3 share 2..4.
        assert_eq!(outs[0], outs[1]);
        assert_eq!(outs[2], outs[3]);
        for n in 0..2 {
            for c in 0..3 {
                assert!((outs[0].at(n, c, 0, 0) - serial.at(n, c, 0, 0)).abs() < 1e-5);
                assert!((outs[2].at(n, c, 0, 0) - serial.at(n + 2, c, 0, 0)).abs() < 1e-5);
            }
        }
    }

    #[test]
    fn global_avg_pool_backward_matches_serial() {
        let shape = Shape4::new(2, 2, 4, 4);
        let x = pattern(shape, 9);
        let grid = ProcGrid::spatial(2, 2);
        let dist = TensorDist::new(shape, grid);
        let dy = pattern(Shape4::new(2, 2, 1, 1), 10);
        let serial = fg_nn::network::global_avg_pool_backward(&x, &dy);
        let outs = run_ranks(4, |comm| {
            let xs = DistTensor::from_global(dist, comm.rank(), &x, [0; 4], [0; 4]);
            let dx = dist_global_avg_pool_backward(&xs, &dy);
            gather_to_root(comm, &dx, 0)
        });
        assert_eq!(outs[0].as_ref().unwrap(), &serial);
    }

    #[test]
    fn shard_loss_matches_serial() {
        let shape = Shape4::new(2, 3, 4, 4);
        let logits = pattern(shape, 11);
        let labels = Labels::per_pixel(
            2,
            4,
            4,
            (0..32).map(|i| (i % 3) as u32).collect(),
        );
        let (loss_serial, grad_serial) = softmax_cross_entropy(&logits, &labels);
        let grid = ProcGrid::spatial(2, 2);
        let dist = TensorDist::new(shape, grid);
        let outs = run_ranks(4, |comm| {
            let ls = DistTensor::from_global(dist, comm.rank(), &logits, [0; 4], [0; 4]);
            let (loss, dl) = dist_softmax_xent_shard(comm, &ls, &labels);
            (loss, gather_to_root(comm, &dl, 0))
        });
        for (loss, _) in &outs {
            assert!((loss - loss_serial).abs() < 1e-9, "{loss} vs {loss_serial}");
        }
        outs[0].1.as_ref().unwrap().assert_close(&grad_serial, 1e-5);
    }

    #[test]
    fn per_sample_loss_sums_across_sample_groups_only() {
        // 2 sample groups × 2 replicas. Each group sees its own samples;
        // the loss must average over the 4 distinct samples once.
        let grid = ProcGrid::hybrid(2, 2, 1);
        let all_logits = pattern(Shape4::new(4, 3, 1, 1), 12);
        let all_labels: Vec<u32> = vec![0, 1, 2, 1];
        let (serial_loss, serial_grad) =
            softmax_cross_entropy(&all_logits, &Labels::per_sample(all_labels.clone()));
        let outs = run_ranks(4, |comm| {
            let coords = grid.coords(comm.rank());
            let nb = fg_comm::collectives::block_range(4, 2, coords[0]);
            let local_logits = all_logits.slice_box(&fg_tensor::Box4::new(
                [nb.start, 0, 0, 0],
                [nb.end, 3, 1, 1],
            ));
            let local_labels = Labels::per_sample(all_labels[nb.clone()].to_vec());
            dist_softmax_xent_per_sample(comm, grid, &local_logits, &local_labels)
        });
        for (loss, _) in &outs {
            assert!((loss - serial_loss).abs() < 1e-9, "{loss} vs {serial_loss}");
        }
        // Gradients: rank 0 holds samples 0..2 scaled by 1/4 globally.
        let g0 = &outs[0].1;
        for c in 0..3 {
            assert!((g0.at(0, c, 0, 0) - serial_grad.at(0, c, 0, 0)).abs() < 1e-6);
            assert!((g0.at(1, c, 0, 0) - serial_grad.at(1, c, 0, 0)).abs() < 1e-6);
        }
    }
}
