//! Single-precision dense matrix multiply.
//!
//! The workhorse behind the im2col convolution path and the
//! fully-connected layer. Row-major, `C += A · B` semantics with a
//! cache-friendly i-k-j loop order (the inner loop streams both `B` and
//! `C` rows contiguously, which the optimizer vectorizes).

/// `c[m×n] += a[m×k] · b[k×n]`, all row-major.
pub fn sgemm_acc(m: usize, k: usize, n: usize, a: &[f32], b: &[f32], c: &mut [f32]) {
    assert_eq!(a.len(), m * k, "A dimensions mismatch");
    assert_eq!(b.len(), k * n, "B dimensions mismatch");
    assert_eq!(c.len(), m * n, "C dimensions mismatch");
    for i in 0..m {
        let a_row = &a[i * k..(i + 1) * k];
        let c_row = &mut c[i * n..(i + 1) * n];
        for (p, &aip) in a_row.iter().enumerate() {
            if aip == 0.0 {
                continue;
            }
            let b_row = &b[p * n..(p + 1) * n];
            for (cv, bv) in c_row.iter_mut().zip(b_row) {
                *cv += aip * bv;
            }
        }
    }
}

/// `c = a · b`, allocating the result.
pub fn sgemm(m: usize, k: usize, n: usize, a: &[f32], b: &[f32]) -> Vec<f32> {
    let mut c = vec![0.0; m * n];
    sgemm_acc(m, k, n, a, b, &mut c);
    c
}

/// `c[m×n] += aᵀ[m×k] · b[k×n]` where `a` is stored as `k×m` row-major
/// (i.e. multiply by the transpose of a without materializing it).
pub fn sgemm_at_acc(m: usize, k: usize, n: usize, a: &[f32], b: &[f32], c: &mut [f32]) {
    assert_eq!(a.len(), k * m, "A (transposed) dimensions mismatch");
    assert_eq!(b.len(), k * n, "B dimensions mismatch");
    assert_eq!(c.len(), m * n, "C dimensions mismatch");
    for p in 0..k {
        let a_row = &a[p * m..(p + 1) * m];
        let b_row = &b[p * n..(p + 1) * n];
        for (i, &api) in a_row.iter().enumerate() {
            if api == 0.0 {
                continue;
            }
            let c_row = &mut c[i * n..(i + 1) * n];
            for (cv, bv) in c_row.iter_mut().zip(b_row) {
                *cv += api * bv;
            }
        }
    }
}

/// `c[m×n] += a[m×k] · bᵀ[k×n]` where `b` is stored as `n×k` row-major.
pub fn sgemm_bt_acc(m: usize, k: usize, n: usize, a: &[f32], b: &[f32], c: &mut [f32]) {
    assert_eq!(a.len(), m * k, "A dimensions mismatch");
    assert_eq!(b.len(), n * k, "B (transposed) dimensions mismatch");
    assert_eq!(c.len(), m * n, "C dimensions mismatch");
    for i in 0..m {
        let a_row = &a[i * k..(i + 1) * k];
        let c_row = &mut c[i * n..(i + 1) * n];
        for (j, cv) in c_row.iter_mut().enumerate() {
            let b_row = &b[j * k..(j + 1) * k];
            let mut acc = 0.0f32;
            for (av, bv) in a_row.iter().zip(b_row) {
                acc += av * bv;
            }
            *cv += acc;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn gemm_matches_hand_computed() {
        // [1 2; 3 4] · [5 6; 7 8] = [19 22; 43 50]
        let c = sgemm(2, 2, 2, &[1., 2., 3., 4.], &[5., 6., 7., 8.]);
        assert_eq!(c, vec![19., 22., 43., 50.]);
    }

    #[test]
    fn gemm_acc_accumulates() {
        let mut c = vec![1.0; 4];
        sgemm_acc(2, 2, 2, &[1., 0., 0., 1.], &[5., 6., 7., 8.], &mut c);
        assert_eq!(c, vec![6., 7., 8., 9.]);
    }

    #[test]
    fn rectangular_shapes() {
        // (1×3) · (3×2)
        let c = sgemm(1, 3, 2, &[1., 2., 3.], &[1., 4., 2., 5., 3., 6.]);
        assert_eq!(c, vec![14., 32.]);
    }

    #[test]
    fn transposed_variants_agree_with_plain() {
        let m = 3;
        let k = 4;
        let n = 5;
        let a: Vec<f32> = (0..m * k).map(|i| (i as f32) * 0.5 - 2.0).collect();
        let b: Vec<f32> = (0..k * n).map(|i| (i as f32) * 0.25 + 1.0).collect();
        let want = sgemm(m, k, n, &a, &b);

        // Aᵀ path: store a as k×m.
        let mut at = vec![0.0; k * m];
        for i in 0..m {
            for p in 0..k {
                at[p * m + i] = a[i * k + p];
            }
        }
        let mut c1 = vec![0.0; m * n];
        sgemm_at_acc(m, k, n, &at, &b, &mut c1);
        assert_eq!(c1, want);

        // Bᵀ path: store b as n×k.
        let mut bt = vec![0.0; n * k];
        for p in 0..k {
            for j in 0..n {
                bt[j * k + p] = b[p * n + j];
            }
        }
        let mut c2 = vec![0.0; m * n];
        sgemm_bt_acc(m, k, n, &a, &bt, &mut c2);
        assert_eq!(c2, want);
    }
}
