//! im2col + GEMM convolution path.
//!
//! cuDNN selects among several convolution algorithms at runtime (the
//! paper's §V-A models this empirically, and §VI-B1 attributes a
//! performance anomaly to algorithm selection). We reproduce the
//! algorithmic dimension with two interchangeable implementations: the
//! direct loops in [`crate::conv`] and this GEMM-based lowering. The
//! ablation bench `ablate_conv_kernel` compares them.

use fg_tensor::{Shape4, Tensor};

use crate::conv::ConvGeometry;
use crate::gemm::{sgemm_acc, sgemm_at_acc};

/// Lower the receptive fields of one sample into a `(C·kh·kw) × (OH·OW)`
/// matrix. `x` is the sample's window with materialized padding and
/// origin `x_origin`.
pub fn im2col(x: &Tensor, sample: usize, x_origin: (i64, i64), geom: &ConvGeometry) -> Vec<f32> {
    let s = x.shape();
    let (oh, ow) = (geom.out_h(), geom.out_w());
    let mut col = vec![0.0f32; s.c * geom.kh * geom.kw * oh * ow];
    let xs = x.as_slice();
    let mut row = 0usize;
    for c in 0..s.c {
        for r in 0..geom.kh {
            for t in 0..geom.kw {
                for o_h in 0..oh {
                    let ih = (o_h * geom.stride_h + r) as i64 - geom.pad_h as i64;
                    let lh = (ih - x_origin.0) as usize;
                    let x_base = s.offset(sample, c, lh, 0);
                    let dst = row * oh * ow + o_h * ow;
                    for o_w in 0..ow {
                        let iw = (o_w * geom.stride_w + t) as i64 - geom.pad_w as i64;
                        let lw = (iw - x_origin.1) as usize;
                        col[dst + o_w] = xs[x_base + lw];
                    }
                }
                row += 1;
            }
        }
    }
    col
}

/// Forward convolution via im2col + GEMM; numerically equivalent to
/// [`crate::conv::conv2d_forward`] up to summation order.
pub fn conv2d_forward_gemm(
    x: &Tensor,
    w: &Tensor,
    bias: Option<&[f32]>,
    geom: &ConvGeometry,
) -> Tensor {
    let padded = crate::conv::pad_window(x, geom.pad_h, geom.pad_w);
    let origin = (-(geom.pad_h as i64), -(geom.pad_w as i64));
    let xs = x.shape();
    let wsh = w.shape();
    let (f_out, c_in) = (wsh.n, wsh.c);
    assert_eq!(c_in, xs.c, "input channels do not match weights");
    let (oh, ow) = (geom.out_h(), geom.out_w());
    let k = c_in * geom.kh * geom.kw;

    let mut y = Tensor::zeros(Shape4::new(xs.n, f_out, oh, ow));
    for sample in 0..xs.n {
        let col = im2col(&padded, sample, origin, geom);
        let y_base = y.shape().offset(sample, 0, 0, 0);
        let y_block = &mut y.as_mut_slice()[y_base..y_base + f_out * oh * ow];
        // (F × k) · (k × OH·OW)
        sgemm_acc(f_out, k, oh * ow, w.as_slice(), &col, y_block);
        if let Some(b) = bias {
            for f in 0..f_out {
                for v in &mut y_block[f * oh * ow..(f + 1) * oh * ow] {
                    *v += b[f];
                }
            }
        }
    }
    y
}

/// Backward-filter via GEMM: `dW = dY · colᵀ` accumulated over samples.
pub fn conv2d_backward_filter_gemm(
    x: &Tensor,
    dy: &Tensor,
    geom: &ConvGeometry,
) -> (Tensor, Vec<f32>) {
    let padded = crate::conv::pad_window(x, geom.pad_h, geom.pad_w);
    let origin = (-(geom.pad_h as i64), -(geom.pad_w as i64));
    let xs = x.shape();
    let dysh = dy.shape();
    let f_out = dysh.c;
    let (oh, ow) = (geom.out_h(), geom.out_w());
    assert_eq!((dysh.h, dysh.w), (oh, ow), "dy does not match geometry");
    let k = xs.c * geom.kh * geom.kw;

    let mut dw_flat = vec![0.0f32; f_out * k];
    let mut db = vec![0.0f32; f_out];
    for sample in 0..xs.n {
        let col = im2col(&padded, sample, origin, geom);
        let dy_base = dysh.offset(sample, 0, 0, 0);
        let dy_block = &dy.as_slice()[dy_base..dy_base + f_out * oh * ow];
        // (F × OH·OW) · (OH·OW × k): col is (k × OH·OW) so use Bᵀ form via
        // sgemm with swapped roles: dW += dY · colᵀ. colᵀ is (OH·OW × k),
        // stored as col (k × OH·OW) — i.e. multiply by stored-transposed B.
        crate::gemm::sgemm_bt_acc(f_out, oh * ow, k, dy_block, &col, &mut dw_flat);
        for f in 0..f_out {
            db[f] += dy_block[f * oh * ow..(f + 1) * oh * ow].iter().sum::<f32>();
        }
    }
    (Tensor::from_vec(Shape4::new(f_out, xs.c, geom.kh, geom.kw), dw_flat), db)
}

/// Backward-data via GEMM + col2im: `col = Wᵀ · dY`, then scatter.
pub fn conv2d_backward_data_gemm(dy: &Tensor, w: &Tensor, geom: &ConvGeometry) -> Tensor {
    let dysh = dy.shape();
    let wsh = w.shape();
    let (f_out, c_in) = (wsh.n, wsh.c);
    let (oh, ow) = (geom.out_h(), geom.out_w());
    let k = c_in * geom.kh * geom.kw;
    let mut dx = Tensor::zeros(Shape4::new(dysh.n, c_in, geom.in_h, geom.in_w));
    for sample in 0..dysh.n {
        let dy_base = dysh.offset(sample, 0, 0, 0);
        let dy_block = &dy.as_slice()[dy_base..dy_base + f_out * oh * ow];
        // (k × F) · (F × OH·OW) with W stored (F × k): Aᵀ form.
        let mut col = vec![0.0f32; k * oh * ow];
        sgemm_at_acc(k, f_out, oh * ow, w.as_slice(), dy_block, &mut col);
        col2im_acc(&col, sample, geom, c_in, &mut dx);
    }
    dx
}

/// Scatter-accumulate a column matrix back into the input gradient.
fn col2im_acc(col: &[f32], sample: usize, geom: &ConvGeometry, c_in: usize, dx: &mut Tensor) {
    let (oh, ow) = (geom.out_h(), geom.out_w());
    let s = dx.shape();
    let dxs = dx.as_mut_slice();
    let mut row = 0usize;
    for c in 0..c_in {
        for r in 0..geom.kh {
            for t in 0..geom.kw {
                for o_h in 0..oh {
                    let ih = (o_h * geom.stride_h + r) as i64 - geom.pad_h as i64;
                    if ih < 0 || ih as usize >= geom.in_h {
                        continue;
                    }
                    let base = s.offset(sample, c, ih as usize, 0);
                    let src = row * oh * ow + o_h * ow;
                    for o_w in 0..ow {
                        let iw = (o_w * geom.stride_w + t) as i64 - geom.pad_w as i64;
                        if iw < 0 || iw as usize >= geom.in_w {
                            continue;
                        }
                        dxs[base + iw as usize] += col[src + o_w];
                    }
                }
                row += 1;
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::conv::{conv2d_backward_data, conv2d_backward_filter, conv2d_forward};

    fn test_tensor(shape: Shape4, seed: u32) -> Tensor {
        Tensor::from_fn(shape, |n, c, h, w| {
            ((n * 31 + c * 17 + h * 7 + w * 3 + seed as usize) % 19) as f32 * 0.5 - 4.0
        })
    }

    fn cases() -> Vec<(Shape4, Shape4, ConvGeometry)> {
        vec![
            (Shape4::new(2, 3, 8, 8), Shape4::new(4, 3, 3, 3), ConvGeometry::square(8, 8, 3, 1, 1)),
            (Shape4::new(1, 2, 9, 7), Shape4::new(3, 2, 3, 3), ConvGeometry::square(9, 7, 3, 2, 1)),
            (Shape4::new(1, 4, 5, 5), Shape4::new(2, 4, 1, 1), ConvGeometry::square(5, 5, 1, 1, 0)),
            (
                Shape4::new(2, 1, 11, 11),
                Shape4::new(2, 1, 5, 5),
                ConvGeometry::square(11, 11, 5, 2, 2),
            ),
        ]
    }

    #[test]
    fn gemm_forward_matches_direct() {
        for (xs, wsz, g) in cases() {
            let x = test_tensor(xs, 1);
            let w = test_tensor(wsz, 2);
            let bias: Vec<f32> = (0..wsz.n).map(|f| 0.1 * f as f32).collect();
            let direct = conv2d_forward(&x, &w, Some(&bias), &g);
            let gemm = conv2d_forward_gemm(&x, &w, Some(&bias), &g);
            gemm.assert_close(&direct, 1e-4);
        }
    }

    #[test]
    fn gemm_backward_filter_matches_direct() {
        for (xs, wsz, g) in cases() {
            let x = test_tensor(xs, 3);
            let dy = test_tensor(Shape4::new(xs.n, wsz.n, g.out_h(), g.out_w()), 4);
            let (dw_d, db_d) = conv2d_backward_filter(&x, &dy, &g);
            let (dw_g, db_g) = conv2d_backward_filter_gemm(&x, &dy, &g);
            dw_g.assert_close(&dw_d, 1e-3);
            for (a, b) in db_g.iter().zip(&db_d) {
                assert!((a - b).abs() < 1e-3 * a.abs().max(1.0));
            }
        }
    }

    #[test]
    fn gemm_backward_data_matches_direct() {
        for (xs, wsz, g) in cases() {
            let w = test_tensor(wsz, 5);
            let dy = test_tensor(Shape4::new(xs.n, wsz.n, g.out_h(), g.out_w()), 6);
            let direct = conv2d_backward_data(&dy, &w, &g);
            let gemm = conv2d_backward_data_gemm(&dy, &w, &g);
            gemm.assert_close(&direct, 1e-3);
        }
    }
}
