//! Rectified linear unit. Elementwise, so it "parallelizes trivially
//! regardless of distribution" (paper §III-B) — the distributed layer
//! just applies it to the owned region of any shard.

use fg_tensor::Tensor;

/// `y = max(x, 0)`.
pub fn relu_forward(x: &Tensor) -> Tensor {
    let mut y = x.clone();
    for v in y.as_mut_slice() {
        if *v < 0.0 {
            *v = 0.0;
        }
    }
    y
}

/// `dx = dy · 1[x > 0]`.
pub fn relu_backward(x: &Tensor, dy: &Tensor) -> Tensor {
    assert_eq!(x.shape(), dy.shape(), "relu backward shape mismatch");
    let mut dx = dy.clone();
    for (d, &xv) in dx.as_mut_slice().iter_mut().zip(x.as_slice()) {
        if xv <= 0.0 {
            *d = 0.0;
        }
    }
    dx
}

/// In-place variant of [`relu_forward`], for the distributed layer which
/// mutates owned regions.
pub fn relu_forward_inplace(x: &mut Tensor) {
    for v in x.as_mut_slice() {
        if *v < 0.0 {
            *v = 0.0;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use fg_tensor::Shape4;

    #[test]
    fn forward_clamps_negatives() {
        let x = Tensor::from_vec(Shape4::new(1, 1, 1, 4), vec![-1.0, 0.0, 2.0, -3.5]);
        let y = relu_forward(&x);
        assert_eq!(y.as_slice(), &[0.0, 0.0, 2.0, 0.0]);
    }

    #[test]
    fn backward_masks_by_input_sign() {
        let x = Tensor::from_vec(Shape4::new(1, 1, 1, 4), vec![-1.0, 0.0, 2.0, 3.0]);
        let dy = Tensor::from_vec(Shape4::new(1, 1, 1, 4), vec![10.0, 10.0, 10.0, 10.0]);
        let dx = relu_backward(&x, &dy);
        // Subgradient at 0 chosen as 0 (matches cuDNN).
        assert_eq!(dx.as_slice(), &[0.0, 0.0, 10.0, 10.0]);
    }

    #[test]
    fn inplace_matches_forward() {
        let x = Tensor::from_vec(Shape4::new(1, 2, 1, 2), vec![-1.0, 5.0, -0.5, 0.25]);
        let y = relu_forward(&x);
        let mut z = x.clone();
        relu_forward_inplace(&mut z);
        assert_eq!(z, y);
    }
}
