//! 2-D pooling (max and average), forward and backward, in region form.
//!
//! Pooling layers are "parallelized similarly" to convolution in the
//! paper (§III-B): spatial partitioning plus a halo exchange when the
//! pooling window crosses a shard border. The kernels therefore take the
//! same window/origin/region arguments as [`crate::conv`].
//!
//! Padding semantics follow cuDNN: padding positions are *excluded* —
//! they never win a max and are not counted in an average.

use fg_tensor::{Shape4, Tensor};

use crate::conv::ConvGeometry;

/// Pooling operation kind.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum PoolKind {
    /// Maximum over the (valid part of the) window.
    Max,
    /// Mean over the valid (in-bounds) part of the window.
    Avg,
}

/// Forward pooling over an output region (window/origin contract as in
/// [`crate::conv::conv2d_forward_region`]). Channel count is preserved.
pub fn pool2d_forward_region(
    kind: PoolKind,
    x: &Tensor,
    x_origin: (i64, i64),
    geom: &ConvGeometry,
    out_rows: (usize, usize),
    out_cols: (usize, usize),
) -> Tensor {
    let s = x.shape();
    let (oh0, oh1) = out_rows;
    let (ow0, ow1) = out_cols;
    assert!(oh0 < oh1 && ow0 < ow1, "empty output region");
    assert!(oh1 <= geom.out_h() && ow1 <= geom.out_w(), "region exceeds layer output");
    let mut y = Tensor::zeros(Shape4::new(s.n, s.c, oh1 - oh0, ow1 - ow0));
    for k in 0..s.n {
        for c in 0..s.c {
            for oh in oh0..oh1 {
                for ow in ow0..ow1 {
                    let v = match kind {
                        PoolKind::Max => window_iter(geom, x, x_origin, k, c, oh, ow)
                            .fold(f32::NEG_INFINITY, f32::max),
                        PoolKind::Avg => {
                            let mut sum = 0.0f32;
                            let mut cnt = 0usize;
                            for v in window_iter(geom, x, x_origin, k, c, oh, ow) {
                                sum += v;
                                cnt += 1;
                            }
                            debug_assert!(cnt > 0, "pooling window fully out of bounds");
                            sum / cnt as f32
                        }
                    };
                    *y.at_mut(k, c, oh - oh0, ow - ow0) = v;
                }
            }
        }
    }
    y
}

/// Backward pooling over an input-gradient region.
///
/// * `x` — the forward input window (max pooling recomputes the argmax;
///   average pooling only needs validity counts).
/// * `dy` — error-signal window covering every valid output contributing
///   to the requested region.
///
/// Returns `dL/dx` of shape `(N, C, rows, cols)`.
#[allow(clippy::too_many_arguments)]
pub fn pool2d_backward_region(
    kind: PoolKind,
    x: &Tensor,
    x_origin: (i64, i64),
    dy: &Tensor,
    dy_origin: (i64, i64),
    geom: &ConvGeometry,
    dx_rows: (usize, usize),
    dx_cols: (usize, usize),
) -> Tensor {
    let s = x.shape();
    let (ih0, ih1) = dx_rows;
    let (iw0, iw1) = dx_cols;
    assert!(ih0 < ih1 && iw0 < iw1, "empty input region");
    let mut dx = Tensor::zeros(Shape4::new(s.n, s.c, ih1 - ih0, iw1 - iw0));
    let (oh_lo, oh_hi) = geom.output_rows_for_input(ih0, ih1);
    let (ow_lo, ow_hi) = geom.output_cols_for_input(iw0, iw1);
    for k in 0..s.n {
        for c in 0..s.c {
            for oh in oh_lo..oh_hi {
                for ow in ow_lo..ow_hi {
                    let lh = (oh as i64 - dy_origin.0) as usize;
                    let lw = (ow as i64 - dy_origin.1) as usize;
                    let g = dy.at(k, c, lh, lw);
                    match kind {
                        PoolKind::Max => {
                            // Deterministic argmax: first maximum in
                            // row-major window order.
                            let mut best = f32::NEG_INFINITY;
                            let mut best_pos = None;
                            for (ih, iw, v) in window_iter_pos(geom, x, x_origin, k, c, oh, ow) {
                                if v > best {
                                    best = v;
                                    best_pos = Some((ih, iw));
                                }
                            }
                            if let Some((ih, iw)) = best_pos {
                                if ih >= ih0 && ih < ih1 && iw >= iw0 && iw < iw1 {
                                    *dx.at_mut(k, c, ih - ih0, iw - iw0) += g;
                                }
                            }
                        }
                        PoolKind::Avg => {
                            let cnt = window_iter(geom, x, x_origin, k, c, oh, ow).count() as f32;
                            for (ih, iw, _v) in window_iter_pos(geom, x, x_origin, k, c, oh, ow) {
                                if ih >= ih0 && ih < ih1 && iw >= iw0 && iw < iw1 {
                                    *dx.at_mut(k, c, ih - ih0, iw - iw0) += g / cnt;
                                }
                            }
                        }
                    }
                }
            }
        }
    }
    dx
}

/// Serial forward pooling with symmetric padding.
pub fn pool2d_forward(kind: PoolKind, x: &Tensor, geom: &ConvGeometry) -> Tensor {
    pool2d_forward_region(kind, x, (0, 0), geom, (0, geom.out_h()), (0, geom.out_w()))
}

/// Serial backward pooling.
pub fn pool2d_backward(kind: PoolKind, x: &Tensor, dy: &Tensor, geom: &ConvGeometry) -> Tensor {
    pool2d_backward_region(kind, x, (0, 0), dy, (0, 0), geom, (0, geom.in_h), (0, geom.in_w))
}

/// Iterate over the *valid* (in global bounds) values of the pooling
/// window of output `(oh, ow)`.
fn window_iter<'a>(
    geom: &'a ConvGeometry,
    x: &'a Tensor,
    x_origin: (i64, i64),
    k: usize,
    c: usize,
    oh: usize,
    ow: usize,
) -> impl Iterator<Item = f32> + 'a {
    window_iter_pos(geom, x, x_origin, k, c, oh, ow).map(|(_, _, v)| v)
}

/// As [`window_iter`], also yielding the global `(ih, iw)` position.
fn window_iter_pos<'a>(
    geom: &'a ConvGeometry,
    x: &'a Tensor,
    x_origin: (i64, i64),
    k: usize,
    c: usize,
    oh: usize,
    ow: usize,
) -> impl Iterator<Item = (usize, usize, f32)> + 'a {
    let h_base = oh as i64 * geom.stride_h as i64 - geom.pad_h as i64;
    let w_base = ow as i64 * geom.stride_w as i64 - geom.pad_w as i64;
    (0..geom.kh).flat_map(move |r| {
        (0..geom.kw).filter_map(move |s| {
            let ih = h_base + r as i64;
            let iw = w_base + s as i64;
            if ih < 0 || iw < 0 || ih >= geom.in_h as i64 || iw >= geom.in_w as i64 {
                return None; // padding: excluded
            }
            let lh = ih - x_origin.0;
            let lw = iw - x_origin.1;
            debug_assert!(
                lh >= 0 && lw >= 0 && (lh as usize) < x.shape().h && (lw as usize) < x.shape().w,
                "pooling window not covered by the provided x window"
            );
            Some((ih as usize, iw as usize, x.at(k, c, lh as usize, lw as usize)))
        })
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    fn t(shape: Shape4, seed: usize) -> Tensor {
        Tensor::from_fn(shape, |n, c, h, w| {
            ((n * 37 + c * 19 + h * 11 + w * 5 + seed) % 29) as f32 - 14.0
        })
    }

    #[test]
    fn max_pool_hand_computed() {
        // 1x1x4x4, 2x2 stride 2, no padding.
        let x = Tensor::from_vec(
            Shape4::new(1, 1, 4, 4),
            vec![1., 2., 3., 4., 5., 6., 7., 8., 9., 10., 11., 12., 13., 14., 15., 16.],
        );
        let g = ConvGeometry::square(4, 4, 2, 2, 0);
        let y = pool2d_forward(PoolKind::Max, &x, &g);
        assert_eq!(y.as_slice(), &[6., 8., 14., 16.]);
        let a = pool2d_forward(PoolKind::Avg, &x, &g);
        assert_eq!(a.as_slice(), &[3.5, 5.5, 11.5, 13.5]);
    }

    #[test]
    fn padding_is_excluded_from_max_and_avg() {
        // All negative values: with padding included, max would be 0.
        let x = Tensor::full(Shape4::new(1, 1, 3, 3), -2.0);
        let g = ConvGeometry::square(3, 3, 3, 2, 1);
        let y = pool2d_forward(PoolKind::Max, &x, &g);
        assert!(y.as_slice().iter().all(|&v| v == -2.0), "padding leaked into max: {y:?}");
        let a = pool2d_forward(PoolKind::Avg, &x, &g);
        // Every window contains only -2s among valid positions.
        assert!(a.as_slice().iter().all(|&v| (v + 2.0).abs() < 1e-6));
    }

    #[test]
    fn resnet_style_overlapping_max_pool_backward_routes_to_argmax() {
        let g = ConvGeometry::square(6, 6, 3, 2, 1);
        let x = t(Shape4::new(1, 2, 6, 6), 3);
        let y = pool2d_forward(PoolKind::Max, &x, &g);
        let dy = Tensor::full(y.shape(), 1.0);
        let dx = pool2d_backward(PoolKind::Max, &x, &dy, &g);
        // Total gradient mass is conserved: each output routes 1.0 to one
        // input position.
        let total: f32 = dx.as_slice().iter().sum();
        assert_eq!(total, (y.shape().len()) as f32);
        // Gradient lands only where x attains each window max.
        for n in 0..1 {
            for c in 0..2 {
                for h in 0..6 {
                    for w in 0..6 {
                        if dx.at(n, c, h, w) != 0.0 {
                            // This position must be the max of at least
                            // one window containing it.
                            let v = x.at(n, c, h, w);
                            let (o0, o1) = g.output_rows_for_input(h, h + 1);
                            let (p0, p1) = g.output_cols_for_input(w, w + 1);
                            let mut is_max = false;
                            for oh in o0..o1 {
                                for ow in p0..p1 {
                                    let m = window_iter(&g, &x, (0, 0), n, c, oh, ow)
                                        .fold(f32::NEG_INFINITY, f32::max);
                                    if m == v {
                                        is_max = true;
                                    }
                                }
                            }
                            assert!(is_max, "gradient at non-max position ({h},{w})");
                        }
                    }
                }
            }
        }
    }

    #[test]
    fn avg_pool_gradcheck() {
        let g = ConvGeometry::square(5, 5, 3, 2, 1);
        let x = t(Shape4::new(1, 1, 5, 5), 7);
        let q = t(Shape4::new(1, 1, g.out_h(), g.out_w()), 9);
        let loss = |x: &Tensor| -> f64 {
            pool2d_forward(PoolKind::Avg, x, &g)
                .as_slice()
                .iter()
                .zip(q.as_slice())
                .map(|(a, b)| (*a as f64) * (*b as f64))
                .sum()
        };
        let dx = pool2d_backward(PoolKind::Avg, &x, &q, &g);
        let eps = 1e-2f32;
        for (h, w) in [(0, 0), (2, 2), (4, 4), (1, 3)] {
            let mut xp = x.clone();
            *xp.at_mut(0, 0, h, w) += eps;
            let mut xm = x.clone();
            *xm.at_mut(0, 0, h, w) -= eps;
            let fd = (loss(&xp) - loss(&xm)) / (2.0 * eps as f64);
            let an = dx.at(0, 0, h, w) as f64;
            assert!((fd - an).abs() < 1e-3, "avg pool dx[{h},{w}]: {an} vs {fd}");
        }
    }

    #[test]
    fn region_forward_matches_full() {
        let g = ConvGeometry::square(8, 8, 3, 2, 1);
        let x = t(Shape4::new(2, 2, 8, 8), 11);
        for kind in [PoolKind::Max, PoolKind::Avg] {
            let full = pool2d_forward(kind, &x, &g);
            let region = pool2d_forward_region(kind, &x, (0, 0), &g, (1, 3), (0, 4));
            for n in 0..2 {
                for c in 0..2 {
                    for oh in 1..3 {
                        for ow in 0..4 {
                            assert_eq!(region.at(n, c, oh - 1, ow), full.at(n, c, oh, ow));
                        }
                    }
                }
            }
        }
    }

    #[test]
    fn backward_region_partition_sums_to_full() {
        // Computing dx in two half-regions must equal the full dx.
        let g = ConvGeometry::square(6, 6, 3, 2, 1);
        let x = t(Shape4::new(1, 1, 6, 6), 13);
        let dy = t(Shape4::new(1, 1, g.out_h(), g.out_w()), 17);
        for kind in [PoolKind::Max, PoolKind::Avg] {
            let full = pool2d_backward(kind, &x, &dy, &g);
            let top = pool2d_backward_region(kind, &x, (0, 0), &dy, (0, 0), &g, (0, 3), (0, 6));
            let bot = pool2d_backward_region(kind, &x, (0, 0), &dy, (0, 0), &g, (3, 6), (0, 6));
            for h in 0..6 {
                for w in 0..6 {
                    let v = if h < 3 { top.at(0, 0, h, w) } else { bot.at(0, 0, h - 3, w) };
                    assert_eq!(v, full.at(0, 0, h, w), "kind {kind:?} at ({h},{w})");
                }
            }
        }
    }
}
