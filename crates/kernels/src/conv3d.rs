//! 3-D convolution over volumetric NCDHW tensors.
//!
//! The paper's conclusion: "as 3D data becomes more widespread, spatial
//! parallelism, which can be easily extended to 3D, becomes critical,
//! and more advantageous, due to the more favorable surface-to-volume
//! ratio." This module provides that extension's compute substrate:
//! a minimal dense 5-D tensor and direct 3-D convolution kernels in the
//! same *region/window* form as [`crate::conv`], so the distributed
//! layer (`fg_core::spatial3d`) can partition depth, height and width
//! with halo exchanges exactly as in the 2-D case.

/// A dense, owned, row-major NCDHW tensor of `f32` (W fastest).
#[derive(Debug, Clone, PartialEq)]
pub struct Tensor5 {
    /// Samples.
    pub n: usize,
    /// Channels.
    pub c: usize,
    /// Depth.
    pub d: usize,
    /// Height.
    pub h: usize,
    /// Width.
    pub w: usize,
    data: Vec<f32>,
}

impl Tensor5 {
    /// Zero-filled tensor.
    pub fn zeros(n: usize, c: usize, d: usize, h: usize, w: usize) -> Self {
        Tensor5 { n, c, d, h, w, data: vec![0.0; n * c * d * h * w] }
    }

    /// Build from a function of the NCDHW index.
    pub fn from_fn(
        n: usize,
        c: usize,
        d: usize,
        h: usize,
        w: usize,
        mut f: impl FnMut(usize, usize, usize, usize, usize) -> f32,
    ) -> Self {
        let mut data = Vec::with_capacity(n * c * d * h * w);
        for ni in 0..n {
            for ci in 0..c {
                for di in 0..d {
                    for hi in 0..h {
                        for wi in 0..w {
                            data.push(f(ni, ci, di, hi, wi));
                        }
                    }
                }
            }
        }
        Tensor5 { n, c, d, h, w, data }
    }

    /// Linear offset of `(n, c, d, h, w)`.
    #[inline(always)]
    pub fn offset(&self, n: usize, c: usize, d: usize, h: usize, w: usize) -> usize {
        (((n * self.c + c) * self.d + d) * self.h + h) * self.w + w
    }

    /// Read an element.
    #[inline(always)]
    pub fn at(&self, n: usize, c: usize, d: usize, h: usize, w: usize) -> f32 {
        self.data[self.offset(n, c, d, h, w)]
    }

    /// Mutable element access.
    #[inline(always)]
    pub fn at_mut(&mut self, n: usize, c: usize, d: usize, h: usize, w: usize) -> &mut f32 {
        let o = self.offset(n, c, d, h, w);
        &mut self.data[o]
    }

    /// Raw backing slice.
    pub fn as_slice(&self) -> &[f32] {
        &self.data
    }

    /// Mutable raw backing slice.
    pub fn as_mut_slice(&mut self) -> &mut [f32] {
        &mut self.data
    }

    /// Total elements.
    pub fn len(&self) -> usize {
        self.data.len()
    }

    /// True when empty.
    pub fn is_empty(&self) -> bool {
        self.data.is_empty()
    }

    /// Maximum absolute difference (for tests).
    pub fn max_abs_diff(&self, other: &Tensor5) -> f32 {
        assert_eq!(self.data.len(), other.data.len());
        self.data.iter().zip(&other.data).map(|(a, b)| (a - b).abs()).fold(0.0f32, f32::max)
    }
}

/// Geometry of a cubic-kernel 3-D convolution with symmetric padding.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Conv3dGeometry {
    /// Global input depth.
    pub in_d: usize,
    /// Global input height.
    pub in_h: usize,
    /// Global input width.
    pub in_w: usize,
    /// Kernel size K (cubic).
    pub k: usize,
    /// Stride S (isotropic).
    pub s: usize,
    /// Zero padding P (isotropic).
    pub p: usize,
}

impl Conv3dGeometry {
    /// Output depth.
    pub const fn out_d(&self) -> usize {
        (self.in_d + 2 * self.p - self.k) / self.s + 1
    }
    /// Output height.
    pub const fn out_h(&self) -> usize {
        (self.in_h + 2 * self.p - self.k) / self.s + 1
    }
    /// Output width.
    pub const fn out_w(&self) -> usize {
        (self.in_w + 2 * self.p - self.k) / self.s + 1
    }

    /// Input range `[lo, hi)` (unclamped) read by output range
    /// `[o0, o1)` along any dimension.
    pub fn input_range_for_output(&self, o0: usize, o1: usize) -> (i64, i64) {
        debug_assert!(o0 < o1);
        let lo = o0 as i64 * self.s as i64 - self.p as i64;
        let hi = (o1 - 1) as i64 * self.s as i64 - self.p as i64 + self.k as i64;
        (lo, hi)
    }
}

/// Forward 3-D convolution over an output region, reading a window with
/// materialized padding addressed by `origin` (d, h, w in global,
/// possibly negative coordinates). Weights are `(F, C, K, K, K)` packed
/// in a [`Tensor5`] with `n = F`, `d = h = w = K`.
#[allow(clippy::too_many_arguments)]
pub fn conv3d_forward_region(
    x: &Tensor5,
    origin: (i64, i64, i64),
    weights: &Tensor5,
    geom: &Conv3dGeometry,
    out_d: (usize, usize),
    out_h: (usize, usize),
    out_w: (usize, usize),
) -> Tensor5 {
    let f_out = weights.n;
    let c_in = weights.c;
    assert_eq!(c_in, x.c, "channels do not match weights");
    assert_eq!((weights.d, weights.h, weights.w), (geom.k, geom.k, geom.k));
    // Window coverage checks per dimension.
    for (dim, (o0, o1), (org, ext)) in
        [(0, out_d, (origin.0, x.d)), (1, out_h, (origin.1, x.h)), (2, out_w, (origin.2, x.w))]
    {
        assert!(o0 < o1, "empty output region on dim {dim}");
        let (lo, hi) = geom.input_range_for_output(o0, o1);
        assert!(
            lo >= org && hi <= org + ext as i64,
            "dim {dim}: window [{org}, {}) does not cover [{lo}, {hi})",
            org + ext as i64
        );
    }
    let (dd, hh, ww) = (out_d.1 - out_d.0, out_h.1 - out_h.0, out_w.1 - out_w.0);
    let mut y = Tensor5::zeros(x.n, f_out, dd, hh, ww);
    for ni in 0..x.n {
        for fi in 0..f_out {
            for od in out_d.0..out_d.1 {
                for oh in out_h.0..out_h.1 {
                    for ow in out_w.0..out_w.1 {
                        let mut acc = 0.0f32;
                        for ci in 0..c_in {
                            for kd in 0..geom.k {
                                let ld = (od as i64 * geom.s as i64 - geom.p as i64 + kd as i64
                                    - origin.0) as usize;
                                for kh in 0..geom.k {
                                    let lh = (oh as i64 * geom.s as i64 - geom.p as i64 + kh as i64
                                        - origin.1)
                                        as usize;
                                    let x_base = x.offset(
                                        ni,
                                        ci,
                                        ld,
                                        lh,
                                        (ow as i64 * geom.s as i64 - geom.p as i64 - origin.2)
                                            as usize,
                                    );
                                    let w_base = weights.offset(fi, ci, kd, kh, 0);
                                    for kw in 0..geom.k {
                                        acc += x.as_slice()[x_base + kw]
                                            * weights.as_slice()[w_base + kw];
                                    }
                                }
                            }
                        }
                        *y.at_mut(ni, fi, od - out_d.0, oh - out_h.0, ow - out_w.0) = acc;
                    }
                }
            }
        }
    }
    y
}

/// Serial 3-D forward convolution with symmetric zero padding.
pub fn conv3d_forward(x: &Tensor5, weights: &Tensor5, geom: &Conv3dGeometry) -> Tensor5 {
    let padded = pad_window3d(x, geom.p);
    conv3d_forward_region(
        &padded,
        (-(geom.p as i64), -(geom.p as i64), -(geom.p as i64)),
        weights,
        geom,
        (0, geom.out_d()),
        (0, geom.out_h()),
        (0, geom.out_w()),
    )
}

/// Copy `x` into a zero-filled buffer with `p` margins on every spatial
/// side.
pub fn pad_window3d(x: &Tensor5, p: usize) -> Tensor5 {
    if p == 0 {
        return x.clone();
    }
    let mut out = Tensor5::zeros(x.n, x.c, x.d + 2 * p, x.h + 2 * p, x.w + 2 * p);
    for ni in 0..x.n {
        for ci in 0..x.c {
            for di in 0..x.d {
                for hi in 0..x.h {
                    let src = x.offset(ni, ci, di, hi, 0);
                    let dst = out.offset(ni, ci, di + p, hi + p, p);
                    let w = x.w;
                    let (src_row, dst_start) = (&x.as_slice()[src..src + w], dst);
                    out.as_mut_slice()[dst_start..dst_start + w].copy_from_slice(src_row);
                }
            }
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn t(n: usize, c: usize, d: usize, h: usize, w: usize, seed: usize) -> Tensor5 {
        Tensor5::from_fn(n, c, d, h, w, |ni, ci, di, hi, wi| {
            ((ni * 31 + ci * 17 + di * 13 + hi * 7 + wi * 3 + seed) % 19) as f32 * 0.25 - 2.0
        })
    }

    /// Naive Eq. 1 extended to 3-D, with bounds checks.
    fn reference(x: &Tensor5, wt: &Tensor5, g: &Conv3dGeometry) -> Tensor5 {
        let mut y = Tensor5::zeros(x.n, wt.n, g.out_d(), g.out_h(), g.out_w());
        for ni in 0..x.n {
            for fi in 0..wt.n {
                for od in 0..g.out_d() {
                    for oh in 0..g.out_h() {
                        for ow in 0..g.out_w() {
                            let mut acc = 0.0;
                            for ci in 0..x.c {
                                for kd in 0..g.k {
                                    for kh in 0..g.k {
                                        for kw in 0..g.k {
                                            let id = (od * g.s + kd) as i64 - g.p as i64;
                                            let ih = (oh * g.s + kh) as i64 - g.p as i64;
                                            let iw = (ow * g.s + kw) as i64 - g.p as i64;
                                            if id >= 0
                                                && ih >= 0
                                                && iw >= 0
                                                && (id as usize) < x.d
                                                && (ih as usize) < x.h
                                                && (iw as usize) < x.w
                                            {
                                                acc += x.at(
                                                    ni,
                                                    ci,
                                                    id as usize,
                                                    ih as usize,
                                                    iw as usize,
                                                ) * wt.at(fi, ci, kd, kh, kw);
                                            }
                                        }
                                    }
                                }
                            }
                            *y.at_mut(ni, fi, od, oh, ow) = acc;
                        }
                    }
                }
            }
        }
        y
    }

    #[test]
    fn forward_matches_reference() {
        for (geom, c, f) in [
            (Conv3dGeometry { in_d: 6, in_h: 6, in_w: 6, k: 3, s: 1, p: 1 }, 2, 3),
            (Conv3dGeometry { in_d: 7, in_h: 5, in_w: 6, k: 3, s: 2, p: 1 }, 1, 2),
            (Conv3dGeometry { in_d: 4, in_h: 4, in_w: 4, k: 1, s: 1, p: 0 }, 3, 2),
        ] {
            let x = t(2, c, geom.in_d, geom.in_h, geom.in_w, 1);
            let wt = t(f, c, geom.k, geom.k, geom.k, 2);
            let got = conv3d_forward(&x, &wt, &geom);
            let want = reference(&x, &wt, &geom);
            assert!(got.max_abs_diff(&want) < 1e-4, "geom {geom:?}");
        }
    }

    #[test]
    fn region_matches_full() {
        let geom = Conv3dGeometry { in_d: 8, in_h: 8, in_w: 8, k: 3, s: 1, p: 1 };
        let x = t(1, 2, 8, 8, 8, 3);
        let wt = t(2, 2, 3, 3, 3, 4);
        let full = conv3d_forward(&x, &wt, &geom);
        let padded = pad_window3d(&x, 1);
        let region =
            conv3d_forward_region(&padded, (-1, -1, -1), &wt, &geom, (2, 6), (0, 8), (3, 7));
        for fi in 0..2 {
            for od in 2..6 {
                for oh in 0..8 {
                    for ow in 3..7 {
                        assert_eq!(
                            region.at(0, fi, od - 2, oh, ow - 3),
                            full.at(0, fi, od, oh, ow)
                        );
                    }
                }
            }
        }
    }

    #[test]
    fn out_shapes() {
        let g = Conv3dGeometry { in_d: 16, in_h: 32, in_w: 32, k: 3, s: 2, p: 1 };
        assert_eq!((g.out_d(), g.out_h(), g.out_w()), (8, 16, 16));
    }

    #[test]
    #[should_panic(expected = "does not cover")]
    fn undersized_window_rejected() {
        let geom = Conv3dGeometry { in_d: 6, in_h: 6, in_w: 6, k: 3, s: 1, p: 1 };
        let x = t(1, 1, 6, 6, 6, 5);
        let wt = t(1, 1, 3, 3, 3, 6);
        let _ = conv3d_forward_region(&x, (0, 0, 0), &wt, &geom, (0, 6), (0, 6), (0, 6));
    }
}
