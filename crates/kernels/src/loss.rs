//! Softmax and cross-entropy, for both image classification (ResNet-50
//! on ImageNet-style labels) and per-pixel semantic segmentation (the
//! mesh-tangling model predicts, for each pixel, whether the mesh cell
//! needs relaxation — a 2-class per-pixel problem).
//!
//! The softmax runs over the channel dimension at every `(n, h, w)`
//! position, so classification is simply the `H = W = 1` case.

use fg_tensor::Tensor;

/// Numerically stable softmax over C at each `(n, h, w)` position.
pub fn softmax_channels(x: &Tensor) -> Tensor {
    let s = x.shape();
    let mut y = Tensor::zeros(s);
    for n in 0..s.n {
        for h in 0..s.h {
            for w in 0..s.w {
                let mut mx = f32::NEG_INFINITY;
                for c in 0..s.c {
                    mx = mx.max(x.at(n, c, h, w));
                }
                let mut z = 0.0f32;
                for c in 0..s.c {
                    let e = (x.at(n, c, h, w) - mx).exp();
                    *y.at_mut(n, c, h, w) = e;
                    z += e;
                }
                for c in 0..s.c {
                    *y.at_mut(n, c, h, w) /= z;
                }
            }
        }
    }
    y
}

/// Integer labels for a batch: `labels[(n, h, w)] ∈ 0..C`. For plain
/// classification, `h = w = 1`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Labels {
    /// Samples.
    pub n: usize,
    /// Label-map height.
    pub h: usize,
    /// Label-map width.
    pub w: usize,
    /// Row-major class indices, length `n·h·w`.
    pub data: Vec<u32>,
}

impl Labels {
    /// Classification labels, one class per sample.
    pub fn per_sample(classes: Vec<u32>) -> Self {
        Labels { n: classes.len(), h: 1, w: 1, data: classes }
    }

    /// Dense per-pixel labels.
    pub fn per_pixel(n: usize, h: usize, w: usize, data: Vec<u32>) -> Self {
        assert_eq!(data.len(), n * h * w, "label map size mismatch");
        Labels { n, h, w, data }
    }

    /// Label at `(n, h, w)`.
    #[inline]
    pub fn at(&self, n: usize, h: usize, w: usize) -> u32 {
        self.data[(n * self.h + h) * self.w + w]
    }
}

/// Fused softmax + mean cross-entropy. Returns `(loss, dlogits)` where
/// the gradient is with respect to the *logits* (pre-softmax), averaged
/// over all `(n, h, w)` positions — the standard fused formulation.
pub fn softmax_cross_entropy(logits: &Tensor, labels: &Labels) -> (f64, Tensor) {
    let s = logits.shape();
    assert_eq!((labels.n, labels.h, labels.w), (s.n, s.h, s.w), "labels do not match logits");
    let probs = softmax_channels(logits);
    let positions = (s.n * s.h * s.w) as f64;
    let mut loss = 0.0f64;
    let mut grad = probs.clone();
    for n in 0..s.n {
        for h in 0..s.h {
            for w in 0..s.w {
                let t = labels.at(n, h, w) as usize;
                assert!(t < s.c, "label {t} out of range for {} classes", s.c);
                let p = probs.at(n, t, h, w).max(1e-30);
                loss -= (p as f64).ln();
                *grad.at_mut(n, t, h, w) -= 1.0;
            }
        }
    }
    grad.scale(1.0 / positions as f32);
    (loss / positions, grad)
}

/// Classification accuracy: fraction of positions where the argmax
/// channel equals the label.
pub fn accuracy(logits: &Tensor, labels: &Labels) -> f64 {
    let s = logits.shape();
    let mut correct = 0usize;
    for n in 0..s.n {
        for h in 0..s.h {
            for w in 0..s.w {
                let mut best = (0usize, f32::NEG_INFINITY);
                for c in 0..s.c {
                    let v = logits.at(n, c, h, w);
                    if v > best.1 {
                        best = (c, v);
                    }
                }
                if best.0 as u32 == labels.at(n, h, w) {
                    correct += 1;
                }
            }
        }
    }
    correct as f64 / (s.n * s.h * s.w) as f64
}

#[cfg(test)]
mod tests {
    use super::*;
    use fg_tensor::Shape4;

    #[test]
    fn softmax_rows_sum_to_one() {
        let x = Tensor::from_fn(Shape4::new(2, 3, 2, 2), |n, c, h, w| {
            (n + 2 * c + h + 3 * w) as f32 * 0.7 - 2.0
        });
        let p = softmax_channels(&x);
        for n in 0..2 {
            for h in 0..2 {
                for w in 0..2 {
                    let s: f32 = (0..3).map(|c| p.at(n, c, h, w)).sum();
                    assert!((s - 1.0).abs() < 1e-5);
                }
            }
        }
    }

    #[test]
    fn softmax_is_shift_invariant_and_stable() {
        let a = Tensor::from_vec(Shape4::new(1, 3, 1, 1), vec![1.0, 2.0, 3.0]);
        let b = Tensor::from_vec(Shape4::new(1, 3, 1, 1), vec![1001.0, 1002.0, 1003.0]);
        let pa = softmax_channels(&a);
        let pb = softmax_channels(&b);
        pa.assert_close(&pb, 1e-5);
        assert!(pb.as_slice().iter().all(|v| v.is_finite()));
    }

    #[test]
    fn cross_entropy_of_perfect_prediction_is_small() {
        let mut x = Tensor::full(Shape4::new(2, 4, 1, 1), -20.0);
        *x.at_mut(0, 1, 0, 0) = 20.0;
        *x.at_mut(1, 3, 0, 0) = 20.0;
        let labels = Labels::per_sample(vec![1, 3]);
        let (loss, _g) = softmax_cross_entropy(&x, &labels);
        assert!(loss < 1e-6, "loss {loss}");
        assert_eq!(accuracy(&x, &labels), 1.0);
    }

    #[test]
    fn uniform_logits_give_log_c() {
        let x = Tensor::zeros(Shape4::new(1, 8, 1, 1));
        let labels = Labels::per_sample(vec![5]);
        let (loss, _g) = softmax_cross_entropy(&x, &labels);
        assert!((loss - (8.0f64).ln()).abs() < 1e-6);
    }

    #[test]
    fn gradient_matches_finite_differences() {
        let x = Tensor::from_fn(Shape4::new(2, 3, 2, 1), |n, c, h, _| {
            ((n * 5 + c * 3 + h * 2) % 7) as f32 * 0.4 - 1.0
        });
        let labels = Labels::per_pixel(2, 2, 1, vec![0, 2, 1, 1]);
        let (_l, g) = softmax_cross_entropy(&x, &labels);
        let eps = 1e-3f32;
        for (n, c, h) in [(0, 0, 0), (1, 2, 1), (0, 1, 1)] {
            let mut xp = x.clone();
            *xp.at_mut(n, c, h, 0) += eps;
            let mut xm = x.clone();
            *xm.at_mut(n, c, h, 0) -= eps;
            let (lp, _) = softmax_cross_entropy(&xp, &labels);
            let (lm, _) = softmax_cross_entropy(&xm, &labels);
            let fd = (lp - lm) / (2.0 * eps as f64);
            let an = g.at(n, c, h, 0) as f64;
            assert!((fd - an).abs() < 1e-4, "grad[{n},{c},{h}]: {an} vs {fd}");
        }
    }

    #[test]
    fn per_pixel_segmentation_shapes() {
        // 2-class per-pixel problem, 4x4 map.
        let x = Tensor::from_fn(
            Shape4::new(1, 2, 4, 4),
            |_, c, h, w| {
                if (h + w) % 2 == c {
                    5.0
                } else {
                    -5.0
                }
            },
        );
        let labels =
            Labels::per_pixel(1, 4, 4, (0..16).map(|i| ((i / 4 + i % 4) % 2) as u32).collect());
        assert_eq!(accuracy(&x, &labels), 1.0);
        let (loss, g) = softmax_cross_entropy(&x, &labels);
        assert!(loss < 1e-3);
        assert_eq!(g.shape(), x.shape());
    }
}
