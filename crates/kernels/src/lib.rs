//! # fg-kernels — CPU compute kernels (the cuDNN stand-in)
//!
//! The paper relies on cuDNN for "optimized compute kernels" and treats
//! their runtime as an empirical black box (§II-A, §V-A). This crate
//! supplies the same operator set with CPU implementations whose
//! *numerics* are what the reproduction needs: the distributed
//! algorithms in `fg-core` must produce bit-comparable results to a
//! single-device run, and these kernels are the common denominator both
//! sides execute.
//!
//! Two design points carry the distributed machinery:
//!
//! * **Region form.** Every spatial kernel can compute an arbitrary
//!   global sub-range of its output while reading a *window* buffer
//!   (shard + halo + materialized zero padding) addressed by a global
//!   origin. The serial wrappers are one-rank windows, so serial and
//!   distributed runs share inner loops.
//! * **Split reductions.** Batch-norm is factored into partial-moment /
//!   finalize / apply stages so the distributed layer can interpose an
//!   allreduce (paper §III-B's "aggregated" batch norm).
//!
//! Convolution additionally comes in two algorithms — direct loops and
//! im2col+GEMM — mirroring cuDNN's algorithm choice, which the paper's
//! evaluation shows to matter (§VI-B1).

pub mod batchnorm;
pub mod conv;
pub mod conv3d;
pub mod gemm;
pub mod im2col;
pub mod loss;
pub mod pool;
pub mod relu;

pub use batchnorm::{bn_backward, bn_forward, BnPartials, BnStats};
pub use conv::{conv2d_backward_data, conv2d_backward_filter, conv2d_forward, ConvGeometry};
pub use loss::{accuracy, softmax_cross_entropy, Labels};
pub use pool::{pool2d_backward, pool2d_forward, PoolKind};
pub use relu::{relu_backward, relu_forward};
