//! Batch normalization, factored for distributed aggregation.
//!
//! The paper (§III-B) notes that batch normalization under spatial
//! partitioning can either be computed *locally* on each shard (changing
//! the statistics but not the structure — the common multi-GPU practice)
//! or *aggregated* over the ranks sharing a sample's spatial shards.
//! To support both, the kernel is split into:
//!
//! 1. [`bn_partial_moments`] — per-channel partial sums over local data;
//! 2. a (possibly allreduced) combination into [`BnStats`];
//! 3. [`bn_forward_with_stats`] — normalization with given statistics;
//!
//! and symmetrically for backward: [`bn_backward_partials`] →
//! (allreduce) → [`bn_backward_apply`]. The serial wrappers chain the
//! pieces without communication.

use fg_tensor::Tensor;

/// Per-channel mean and (biased) variance used for normalization.
#[derive(Debug, Clone, PartialEq)]
pub struct BnStats {
    /// Per-channel mean.
    pub mean: Vec<f32>,
    /// Per-channel biased variance.
    pub var: Vec<f32>,
}

/// Per-channel partial sums: `(Σx, Σx², count)`. f64 accumulators keep
/// the subsequent variance subtraction stable.
#[derive(Debug, Clone, PartialEq)]
pub struct BnPartials {
    /// Per-channel Σx.
    pub sum: Vec<f64>,
    /// Per-channel Σx².
    pub sumsq: Vec<f64>,
    /// Elements per channel contributing to the sums.
    pub count: f64,
}

impl BnPartials {
    /// Finalize partial sums into mean/variance.
    pub fn finalize(&self) -> BnStats {
        let mean: Vec<f32> = self.sum.iter().map(|s| (s / self.count) as f32).collect();
        let var: Vec<f32> = self
            .sumsq
            .iter()
            .zip(&self.sum)
            .map(|(sq, s)| {
                let m = s / self.count;
                ((sq / self.count) - m * m).max(0.0) as f32
            })
            .collect();
        BnStats { mean, var }
    }

    /// Flatten to a single vector for an allreduce (sums then sumsqs then
    /// count).
    pub fn to_flat(&self) -> Vec<f64> {
        let mut v = Vec::with_capacity(2 * self.sum.len() + 1);
        v.extend_from_slice(&self.sum);
        v.extend_from_slice(&self.sumsq);
        v.push(self.count);
        v
    }

    /// Inverse of [`BnPartials::to_flat`].
    pub fn from_flat(flat: &[f64], channels: usize) -> Self {
        assert_eq!(flat.len(), 2 * channels + 1, "flattened BN partials length mismatch");
        BnPartials {
            sum: flat[..channels].to_vec(),
            sumsq: flat[channels..2 * channels].to_vec(),
            count: flat[2 * channels],
        }
    }
}

/// Compute per-channel partial moments of `x` over (N, H, W).
pub fn bn_partial_moments(x: &Tensor) -> BnPartials {
    let s = x.shape();
    let mut sum = vec![0.0f64; s.c];
    let mut sumsq = vec![0.0f64; s.c];
    let xs = x.as_slice();
    for n in 0..s.n {
        for c in 0..s.c {
            let base = s.offset(n, c, 0, 0);
            let plane = &xs[base..base + s.h * s.w];
            let mut a = 0.0f64;
            let mut b = 0.0f64;
            for &v in plane {
                a += v as f64;
                b += (v as f64) * (v as f64);
            }
            sum[c] += a;
            sumsq[c] += b;
        }
    }
    BnPartials { sum, sumsq, count: (s.n * s.h * s.w) as f64 }
}

/// Normalize `x` with the given statistics: `y = γ·x̂ + β` where
/// `x̂ = (x − μ) / √(σ² + ε)`.
pub fn bn_forward_with_stats(
    x: &Tensor,
    stats: &BnStats,
    gamma: &[f32],
    beta: &[f32],
    eps: f32,
) -> Tensor {
    let s = x.shape();
    assert_eq!(stats.mean.len(), s.c, "stats channel mismatch");
    assert_eq!(gamma.len(), s.c, "gamma channel mismatch");
    assert_eq!(beta.len(), s.c, "beta channel mismatch");
    let mut y = Tensor::zeros(s);
    let xs = x.as_slice();
    let ys = y.as_mut_slice();
    for n in 0..s.n {
        for c in 0..s.c {
            let invstd = 1.0 / (stats.var[c] + eps).sqrt();
            let (g, b, m) = (gamma[c], beta[c], stats.mean[c]);
            let base = s.offset(n, c, 0, 0);
            for i in base..base + s.h * s.w {
                ys[i] = g * (xs[i] - m) * invstd + b;
            }
        }
    }
    y
}

/// Per-channel backward partial sums `(Σdy, Σdy·x̂)` over local data.
/// These are exactly the quantities that must be summed across ranks for
/// aggregated distributed BN.
pub fn bn_backward_partials(
    x: &Tensor,
    dy: &Tensor,
    stats: &BnStats,
    eps: f32,
) -> (Vec<f64>, Vec<f64>) {
    let s = x.shape();
    assert_eq!(dy.shape(), s, "dy shape mismatch");
    let mut sum_dy = vec![0.0f64; s.c];
    let mut sum_dy_xhat = vec![0.0f64; s.c];
    let xs = x.as_slice();
    let dys = dy.as_slice();
    for n in 0..s.n {
        for c in 0..s.c {
            let invstd = 1.0f64 / ((stats.var[c] + eps) as f64).sqrt();
            let m = stats.mean[c] as f64;
            let base = s.offset(n, c, 0, 0);
            let mut a = 0.0f64;
            let mut b = 0.0f64;
            for i in base..base + s.h * s.w {
                let g = dys[i] as f64;
                a += g;
                b += g * ((xs[i] as f64) - m) * invstd;
            }
            sum_dy[c] += a;
            sum_dy_xhat[c] += b;
        }
    }
    (sum_dy, sum_dy_xhat)
}

/// Apply the BN backward formula given the (globally summed) partials:
///
/// `dx = γ/√(σ²+ε) · (dy − Σdy/M − x̂ · Σ(dy·x̂)/M)`
///
/// where `M` is the total element count per channel. Returns `dx`;
/// `dγ = Σ(dy·x̂)` and `dβ = Σdy` are already in the caller's hands.
#[allow(clippy::too_many_arguments)]
pub fn bn_backward_apply(
    x: &Tensor,
    dy: &Tensor,
    stats: &BnStats,
    gamma: &[f32],
    sum_dy: &[f64],
    sum_dy_xhat: &[f64],
    total_count: f64,
    eps: f32,
) -> Tensor {
    let s = x.shape();
    let mut dx = Tensor::zeros(s);
    let xs = x.as_slice();
    let dys = dy.as_slice();
    let dxs = dx.as_mut_slice();
    for n in 0..s.n {
        for c in 0..s.c {
            let invstd = 1.0f64 / ((stats.var[c] + eps) as f64).sqrt();
            let m = stats.mean[c] as f64;
            let g = gamma[c] as f64;
            let mean_dy = sum_dy[c] / total_count;
            let mean_dy_xhat = sum_dy_xhat[c] / total_count;
            let base = s.offset(n, c, 0, 0);
            for i in base..base + s.h * s.w {
                let xhat = ((xs[i] as f64) - m) * invstd;
                dxs[i] = (g * invstd * ((dys[i] as f64) - mean_dy - xhat * mean_dy_xhat)) as f32;
            }
        }
    }
    dx
}

/// Serial training-mode BN forward: returns `(y, stats)` with batch
/// statistics.
pub fn bn_forward(x: &Tensor, gamma: &[f32], beta: &[f32], eps: f32) -> (Tensor, BnStats) {
    let stats = bn_partial_moments(x).finalize();
    let y = bn_forward_with_stats(x, &stats, gamma, beta, eps);
    (y, stats)
}

/// Serial BN backward: returns `(dx, dgamma, dbeta)`.
pub fn bn_backward(
    x: &Tensor,
    dy: &Tensor,
    stats: &BnStats,
    gamma: &[f32],
    eps: f32,
) -> (Tensor, Vec<f32>, Vec<f32>) {
    let s = x.shape();
    let (sum_dy, sum_dy_xhat) = bn_backward_partials(x, dy, stats, eps);
    let total = (s.n * s.h * s.w) as f64;
    let dx = bn_backward_apply(x, dy, stats, gamma, &sum_dy, &sum_dy_xhat, total, eps);
    let dgamma: Vec<f32> = sum_dy_xhat.iter().map(|&v| v as f32).collect();
    let dbeta: Vec<f32> = sum_dy.iter().map(|&v| v as f32).collect();
    (dx, dgamma, dbeta)
}

#[cfg(test)]
mod tests {
    use super::*;
    use fg_tensor::Shape4;

    const EPS: f32 = 1e-5;

    fn t(shape: Shape4, seed: usize) -> Tensor {
        Tensor::from_fn(shape, |n, c, h, w| {
            ((n * 41 + c * 23 + h * 13 + w * 7 + seed) % 31) as f32 * 0.3 - 4.0
        })
    }

    #[test]
    fn forward_normalizes_each_channel() {
        let x = t(Shape4::new(3, 2, 4, 4), 1);
        let gamma = vec![1.0, 1.0];
        let beta = vec![0.0, 0.0];
        let (y, _stats) = bn_forward(&x, &gamma, &beta, EPS);
        // Per-channel mean ~0, var ~1.
        let p = bn_partial_moments(&y);
        let s = p.finalize();
        for c in 0..2 {
            assert!(s.mean[c].abs() < 1e-4, "mean {} not ~0", s.mean[c]);
            assert!((s.var[c] - 1.0).abs() < 1e-3, "var {} not ~1", s.var[c]);
        }
    }

    #[test]
    fn gamma_beta_shift_and_scale() {
        let x = t(Shape4::new(2, 2, 3, 3), 2);
        let (y, _s) = bn_forward(&x, &[2.0, 0.5], &[1.0, -1.0], EPS);
        let p = bn_partial_moments(&y).finalize();
        assert!((p.mean[0] - 1.0).abs() < 1e-4);
        assert!((p.mean[1] + 1.0).abs() < 1e-4);
        assert!((p.var[0] - 4.0).abs() < 1e-2);
        assert!((p.var[1] - 0.25).abs() < 1e-3);
    }

    #[test]
    fn partials_merge_like_a_sum() {
        // Moments of the whole equal merged moments of two halves —
        // the property distributed aggregation relies on.
        let x = t(Shape4::new(4, 3, 4, 4), 3);
        let whole = bn_partial_moments(&x).finalize();
        let top = x.slice_box(&fg_tensor::Box4::new([0, 0, 0, 0], [2, 3, 4, 4]));
        let bot = x.slice_box(&fg_tensor::Box4::new([2, 0, 0, 0], [4, 3, 4, 4]));
        let p1 = bn_partial_moments(&top);
        let p2 = bn_partial_moments(&bot);
        let merged = BnPartials {
            sum: p1.sum.iter().zip(&p2.sum).map(|(a, b)| a + b).collect(),
            sumsq: p1.sumsq.iter().zip(&p2.sumsq).map(|(a, b)| a + b).collect(),
            count: p1.count + p2.count,
        }
        .finalize();
        for c in 0..3 {
            assert!((whole.mean[c] - merged.mean[c]).abs() < 1e-5);
            assert!((whole.var[c] - merged.var[c]).abs() < 1e-4);
        }
    }

    #[test]
    fn flat_round_trip() {
        let x = t(Shape4::new(2, 5, 3, 3), 4);
        let p = bn_partial_moments(&x);
        let q = BnPartials::from_flat(&p.to_flat(), 5);
        assert_eq!(p, q);
    }

    #[test]
    fn backward_gradcheck() {
        let shape = Shape4::new(2, 2, 3, 3);
        let x = t(shape, 5);
        let gamma = vec![1.3, 0.7];
        let beta = vec![0.2, -0.4];
        let q = t(shape, 6);
        let loss = |x: &Tensor, gamma: &[f32], beta: &[f32]| -> f64 {
            let (y, _s) = bn_forward(x, gamma, beta, EPS);
            y.as_slice().iter().zip(q.as_slice()).map(|(a, b)| (*a as f64) * (*b as f64)).sum()
        };
        let (_y, stats) = bn_forward(&x, &gamma, &beta, EPS);
        let (dx, dgamma, dbeta) = bn_backward(&x, &q, &stats, &gamma, EPS);

        let eps_fd = 1e-3f32;
        for (n, c, h, w) in [(0, 0, 0, 0), (1, 1, 2, 2), (0, 1, 1, 0)] {
            let mut xp = x.clone();
            *xp.at_mut(n, c, h, w) += eps_fd;
            let mut xm = x.clone();
            *xm.at_mut(n, c, h, w) -= eps_fd;
            let fd = (loss(&xp, &gamma, &beta) - loss(&xm, &gamma, &beta)) / (2.0 * eps_fd as f64);
            let an = dx.at(n, c, h, w) as f64;
            assert!(
                (fd - an).abs() < 2e-2 * fd.abs().max(1.0),
                "dx[{n},{c},{h},{w}]: {an} vs {fd}"
            );
        }
        for c in 0..2 {
            let mut gp = gamma.clone();
            gp[c] += eps_fd;
            let mut gm = gamma.clone();
            gm[c] -= eps_fd;
            let fd = (loss(&x, &gp, &beta) - loss(&x, &gm, &beta)) / (2.0 * eps_fd as f64);
            assert!((fd - dgamma[c] as f64).abs() < 1e-2 * fd.abs().max(1.0), "dgamma[{c}]");
            let mut bp = beta.clone();
            bp[c] += eps_fd;
            let mut bm = beta.clone();
            bm[c] -= eps_fd;
            let fd = (loss(&x, &gamma, &bp) - loss(&x, &gamma, &bm)) / (2.0 * eps_fd as f64);
            assert!((fd - dbeta[c] as f64).abs() < 1e-2 * fd.abs().max(1.0), "dbeta[{c}]");
        }
    }

    #[test]
    fn degenerate_constant_channel_is_safe() {
        // Zero variance: invstd = 1/sqrt(eps), finite; no NaNs.
        let x = Tensor::full(Shape4::new(2, 1, 2, 2), 3.0);
        let (y, stats) = bn_forward(&x, &[1.0], &[0.0], EPS);
        assert!(y.as_slice().iter().all(|v| v.is_finite()));
        assert!(y.as_slice().iter().all(|v| v.abs() < 1e-3));
        let (dx, _dg, _db) = bn_backward(&x, &Tensor::full(x.shape(), 1.0), &stats, &[1.0], EPS);
        assert!(dx.as_slice().iter().all(|v| v.is_finite()));
    }
}
