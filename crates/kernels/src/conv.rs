//! 2-D convolution: forward, backward-data, backward-filter (§II-A,
//! equations 1–3 of the paper).
//!
//! The kernels come in *region* form, designed for the distributed
//! setting: they compute an arbitrary global sub-range of the output
//! (or input gradient) while reading from a *window* buffer — a shard of
//! the global tensor with halo margins and materialized zero padding, as
//! maintained by `fg_tensor::DistTensor`. Origins are `i64` because a
//! window can hang off the global edge (virtual padding). The serial
//! wrappers materialize a fully padded window and call the region form on
//! the whole output, so the distributed and serial paths execute the same
//! inner loops — which is precisely the paper's "exactly replicates
//! convolution as if it were performed on a single GPU" property.
//!
//! cuDNN plays this role in the paper (§IV); numerics, not speed, are
//! what the reproduction needs from these kernels.

use fg_tensor::{Shape4, Tensor};

/// Global geometry of a convolution: input extent, kernel, stride, and
/// symmetric zero padding.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ConvGeometry {
    /// Global input height.
    pub in_h: usize,
    /// Global input width.
    pub in_w: usize,
    /// Kernel height.
    pub kh: usize,
    /// Kernel width.
    pub kw: usize,
    /// Stride along height.
    pub stride_h: usize,
    /// Stride along width.
    pub stride_w: usize,
    /// Zero padding above/below.
    pub pad_h: usize,
    /// Zero padding left/right.
    pub pad_w: usize,
}

impl ConvGeometry {
    /// Square-kernel geometry with equal strides/padding (the paper's
    /// K/S/P notation).
    pub const fn square(in_h: usize, in_w: usize, k: usize, s: usize, p: usize) -> Self {
        ConvGeometry { in_h, in_w, kh: k, kw: k, stride_h: s, stride_w: s, pad_h: p, pad_w: p }
    }

    /// Global output height.
    pub const fn out_h(&self) -> usize {
        (self.in_h + 2 * self.pad_h - self.kh) / self.stride_h + 1
    }

    /// Global output width.
    pub const fn out_w(&self) -> usize {
        (self.in_w + 2 * self.pad_w - self.kw) / self.stride_w + 1
    }

    /// Input rows `[lo, hi)` (in unclamped global coordinates, possibly
    /// negative) read when computing output rows `[oh0, oh1)`.
    pub fn input_rows_for_output(&self, oh0: usize, oh1: usize) -> (i64, i64) {
        debug_assert!(oh0 < oh1);
        let lo = oh0 as i64 * self.stride_h as i64 - self.pad_h as i64;
        let hi = (oh1 - 1) as i64 * self.stride_h as i64 - self.pad_h as i64 + self.kh as i64;
        (lo, hi)
    }

    /// Input cols read for output cols `[ow0, ow1)` (see
    /// [`ConvGeometry::input_rows_for_output`]).
    pub fn input_cols_for_output(&self, ow0: usize, ow1: usize) -> (i64, i64) {
        debug_assert!(ow0 < ow1);
        let lo = ow0 as i64 * self.stride_w as i64 - self.pad_w as i64;
        let hi = (ow1 - 1) as i64 * self.stride_w as i64 - self.pad_w as i64 + self.kw as i64;
        (lo, hi)
    }

    /// Output rows `[lo, hi)` that read any input row in `[ih0, ih1)`
    /// (clamped to the valid output range). Used to size backward-data
    /// windows.
    pub fn output_rows_for_input(&self, ih0: usize, ih1: usize) -> (usize, usize) {
        debug_assert!(ih0 < ih1);
        let s = self.stride_h as i64;
        let p = self.pad_h as i64;
        let k = self.kh as i64;
        // oh contributes to ih iff oh*s - p <= ih <= oh*s - p + k - 1.
        let lo = ((ih0 as i64 + p - k + 1) + s - 1).div_euclid(s).max(0);
        let hi = (ih1 as i64 - 1 + p).div_euclid(s) + 1;
        (lo.min(self.out_h() as i64) as usize, hi.clamp(0, self.out_h() as i64) as usize)
    }

    /// Output cols reading any input col in `[iw0, iw1)`.
    pub fn output_cols_for_input(&self, iw0: usize, iw1: usize) -> (usize, usize) {
        debug_assert!(iw0 < iw1);
        let s = self.stride_w as i64;
        let p = self.pad_w as i64;
        let k = self.kw as i64;
        let lo = ((iw0 as i64 + p - k + 1) + s - 1).div_euclid(s).max(0);
        let hi = (iw1 as i64 - 1 + p).div_euclid(s) + 1;
        (lo.min(self.out_w() as i64) as usize, hi.clamp(0, self.out_w() as i64) as usize)
    }
}

/// Check that the window `(origin, extent)` covers `[lo, hi)` in one
/// dimension; panics otherwise (caller sized the window wrong).
fn assert_window_covers(origin: i64, extent: usize, lo: i64, hi: i64, what: &str) {
    assert!(
        lo >= origin && hi <= origin + extent as i64,
        "{what} window [{origin}, {}) does not cover required [{lo}, {hi})",
        origin + extent as i64
    );
}

/// Forward convolution (Eq. 1) over an output region.
///
/// * `x` — input window `(N_loc, C, win_h, win_w)`, padding materialized
///   as zeros, with global origin `x_origin` (h, w).
/// * `w` — weights `(F, C, kh, kw)`; `x` and `w` must agree on C.
/// * `out_rows`/`out_cols` — global output index ranges to compute.
///
/// Returns `(N_loc, F, rows, cols)`.
pub fn conv2d_forward_region(
    x: &Tensor,
    x_origin: (i64, i64),
    w: &Tensor,
    bias: Option<&[f32]>,
    geom: &ConvGeometry,
    out_rows: (usize, usize),
    out_cols: (usize, usize),
) -> Tensor {
    let (n, c_in, win_h, win_w) = dims(x);
    let (f_out, c_w, kh, kw) = dims(w);
    assert_eq!(c_in, c_w, "input channels do not match weights");
    assert_eq!((kh, kw), (geom.kh, geom.kw), "weights do not match geometry");
    if let Some(b) = bias {
        assert_eq!(b.len(), f_out, "bias length must equal filter count");
    }
    let (oh0, oh1) = out_rows;
    let (ow0, ow1) = out_cols;
    assert!(oh0 < oh1 && ow0 < ow1, "empty output region");
    assert!(oh1 <= geom.out_h() && ow1 <= geom.out_w(), "output region exceeds layer output");
    let (ih_lo, ih_hi) = geom.input_rows_for_output(oh0, oh1);
    let (iw_lo, iw_hi) = geom.input_cols_for_output(ow0, ow1);
    assert_window_covers(x_origin.0, win_h, ih_lo, ih_hi, "input rows");
    assert_window_covers(x_origin.1, win_w, iw_lo, iw_hi, "input cols");

    let rows = oh1 - oh0;
    let cols = ow1 - ow0;
    let mut y = Tensor::zeros(Shape4::new(n, f_out, rows, cols));
    let xs = x.as_slice();
    let ws = w.as_slice();
    let x_shape = x.shape();
    let w_shape = w.shape();

    for k in 0..n {
        for f in 0..f_out {
            let bias_v = bias.map_or(0.0, |b| b[f]);
            for oh in oh0..oh1 {
                // Local output row accumulator.
                let y_base = y.shape().offset(k, f, oh - oh0, 0);
                let y_row = &mut y.as_mut_slice()[y_base..y_base + cols];
                y_row.fill(bias_v);
                for c in 0..c_in {
                    for r in 0..geom.kh {
                        let ih = oh as i64 * geom.stride_h as i64 - geom.pad_h as i64 + r as i64;
                        let lh = (ih - x_origin.0) as usize;
                        let x_base = x_shape.offset(k, c, lh, 0);
                        let x_row = &xs[x_base..x_base + win_w];
                        let w_base = w_shape.offset(f, c, r, 0);
                        let w_row = &ws[w_base..w_base + geom.kw];
                        for (s, &wv) in w_row.iter().enumerate() {
                            if wv == 0.0 {
                                continue;
                            }
                            let iw0_l = (ow0 as i64 * geom.stride_w as i64 - geom.pad_w as i64
                                + s as i64
                                - x_origin.1) as usize;
                            if geom.stride_w == 1 {
                                for (yv, xv) in y_row.iter_mut().zip(&x_row[iw0_l..iw0_l + cols]) {
                                    *yv += wv * xv;
                                }
                            } else {
                                for (j, yv) in y_row.iter_mut().enumerate() {
                                    *yv += wv * x_row[iw0_l + j * geom.stride_w];
                                }
                            }
                        }
                    }
                }
            }
        }
    }
    y
}

/// Backward-data convolution (Eq. 3) over an input-gradient region.
///
/// * `dy` — error-signal window `(N_loc, F, win_h, win_w)` with origin
///   `dy_origin`; it must cover every *valid* output position that
///   contributes to the requested region (out-of-range output indices
///   contribute zero by definition).
/// * Returns `dL/dx` of shape `(N_loc, C, rows, cols)` for the global
///   input region `dx_rows × dx_cols`.
pub fn conv2d_backward_data_region(
    dy: &Tensor,
    dy_origin: (i64, i64),
    w: &Tensor,
    geom: &ConvGeometry,
    dx_rows: (usize, usize),
    dx_cols: (usize, usize),
) -> Tensor {
    let (n, f_in, win_h, win_w) = dims(dy);
    let (f_w, c_out, kh, kw) = dims(w);
    assert_eq!(f_in, f_w, "error-signal filters do not match weights");
    assert_eq!((kh, kw), (geom.kh, geom.kw), "weights do not match geometry");
    let (ih0, ih1) = dx_rows;
    let (iw0, iw1) = dx_cols;
    assert!(ih0 < ih1 && iw0 < iw1, "empty input region");
    assert!(ih1 <= geom.in_h && iw1 <= geom.in_w, "input region exceeds layer input");
    // Contract: the window covers all contributing valid outputs.
    let (oh_lo, oh_hi) = geom.output_rows_for_input(ih0, ih1);
    let (ow_lo, ow_hi) = geom.output_cols_for_input(iw0, iw1);
    if oh_lo < oh_hi {
        assert_window_covers(dy_origin.0, win_h, oh_lo as i64, oh_hi as i64, "dy rows");
    }
    if ow_lo < ow_hi {
        assert_window_covers(dy_origin.1, win_w, ow_lo as i64, ow_hi as i64, "dy cols");
    }

    let rows = ih1 - ih0;
    let cols = iw1 - iw0;
    let out_h = geom.out_h() as i64;
    let out_w = geom.out_w() as i64;
    let mut dx = Tensor::zeros(Shape4::new(n, c_out, rows, cols));
    let dys = dy.as_slice();
    let dy_shape = dy.shape();
    let w_shape = w.shape();
    let ws = w.as_slice();

    for k in 0..n {
        for c in 0..c_out {
            for ih in ih0..ih1 {
                let dx_base = dx.shape().offset(k, c, ih - ih0, 0);
                for r in 0..geom.kh {
                    let t = ih as i64 + geom.pad_h as i64 - r as i64;
                    if t < 0 || t % geom.stride_h as i64 != 0 {
                        continue;
                    }
                    let oh = t / geom.stride_h as i64;
                    if oh >= out_h {
                        continue;
                    }
                    let lh = (oh - dy_origin.0) as usize;
                    for f in 0..f_in {
                        let wv_base = w_shape.offset(f, c, r, 0);
                        let dy_base = dy_shape.offset(k, f, lh, 0);
                        for iw in iw0..iw1 {
                            let mut acc = 0.0f32;
                            for s in 0..geom.kw {
                                let u = iw as i64 + geom.pad_w as i64 - s as i64;
                                if u < 0 || u % geom.stride_w as i64 != 0 {
                                    continue;
                                }
                                let ow = u / geom.stride_w as i64;
                                if ow >= out_w {
                                    continue;
                                }
                                let lw = (ow - dy_origin.1) as usize;
                                acc += dys[dy_base + lw] * ws[wv_base + s];
                            }
                            let dxv = &mut dx.as_mut_slice()[dx_base + (iw - iw0)];
                            *dxv += acc;
                        }
                    }
                }
            }
        }
    }
    dx
}

/// Backward-filter convolution (Eq. 2) over an output region: the local
/// contribution to `dL/dw` (and `dL/db`) from the error-signal block
/// `dy_rows × dy_cols`. The distributed layer allreduces these partials
/// across ranks (the sums over N, H, W in Eq. 2).
///
/// * `x` — input window with origin `x_origin` (same window forward used).
/// * `dy` — error-signal window with origin `dy_origin`; only the
///   requested region is read, so a margin-free shard works.
///
/// Returns `(dw, db)` with `dw` of shape `(F, C, kh, kw)`.
pub fn conv2d_backward_filter_region(
    x: &Tensor,
    x_origin: (i64, i64),
    dy: &Tensor,
    dy_origin: (i64, i64),
    geom: &ConvGeometry,
    dy_rows: (usize, usize),
    dy_cols: (usize, usize),
) -> (Tensor, Vec<f32>) {
    let (n, c_in, win_h, win_w) = dims(x);
    let (n_dy, f_out, _, _) = dims(dy);
    assert_eq!(n, n_dy, "x and dy sample counts differ");
    let (oh0, oh1) = dy_rows;
    let (ow0, ow1) = dy_cols;
    assert!(oh0 < oh1 && ow0 < ow1, "empty region");
    assert!(oh1 <= geom.out_h() && ow1 <= geom.out_w(), "region exceeds layer output");
    let (ih_lo, ih_hi) = geom.input_rows_for_output(oh0, oh1);
    let (iw_lo, iw_hi) = geom.input_cols_for_output(ow0, ow1);
    assert_window_covers(x_origin.0, win_h, ih_lo, ih_hi, "input rows");
    assert_window_covers(x_origin.1, win_w, iw_lo, iw_hi, "input cols");

    let mut dw = Tensor::zeros(Shape4::new(f_out, c_in, geom.kh, geom.kw));
    let mut db = vec![0.0f32; f_out];
    let xs = x.as_slice();
    let x_shape = x.shape();
    let dy_shape = dy.shape();
    let dys = dy.as_slice();
    let cols = ow1 - ow0;

    for k in 0..n {
        for (f, db_f) in db.iter_mut().enumerate() {
            for oh in oh0..oh1 {
                let lh_dy = (oh as i64 - dy_origin.0) as usize;
                let lw_dy0 = (ow0 as i64 - dy_origin.1) as usize;
                let dy_base = dy_shape.offset(k, f, lh_dy, lw_dy0);
                let dy_row = &dys[dy_base..dy_base + cols];
                *db_f += dy_row.iter().sum::<f32>();
                for c in 0..c_in {
                    for r in 0..geom.kh {
                        let ih = oh as i64 * geom.stride_h as i64 - geom.pad_h as i64 + r as i64;
                        let lh = (ih - x_origin.0) as usize;
                        let x_base = x_shape.offset(k, c, lh, 0);
                        let x_row = &xs[x_base..x_base + win_w];
                        let dw_base = dw.shape().offset(f, c, r, 0);
                        for s in 0..geom.kw {
                            let iw0_l = (ow0 as i64 * geom.stride_w as i64 - geom.pad_w as i64
                                + s as i64
                                - x_origin.1) as usize;
                            let mut acc = 0.0f32;
                            if geom.stride_w == 1 {
                                for (g, xv) in dy_row.iter().zip(&x_row[iw0_l..iw0_l + cols]) {
                                    acc += g * xv;
                                }
                            } else {
                                for (j, g) in dy_row.iter().enumerate() {
                                    acc += g * x_row[iw0_l + j * geom.stride_w];
                                }
                            }
                            dw.as_mut_slice()[dw_base + s] += acc;
                        }
                    }
                }
            }
        }
    }
    (dw, db)
}

/// Serial forward convolution with symmetric zero padding.
pub fn conv2d_forward(x: &Tensor, w: &Tensor, bias: Option<&[f32]>, geom: &ConvGeometry) -> Tensor {
    let padded = pad_window(x, geom.pad_h, geom.pad_w);
    conv2d_forward_region(
        &padded,
        (-(geom.pad_h as i64), -(geom.pad_w as i64)),
        w,
        bias,
        geom,
        (0, geom.out_h()),
        (0, geom.out_w()),
    )
}

/// Serial backward-data convolution.
pub fn conv2d_backward_data(dy: &Tensor, w: &Tensor, geom: &ConvGeometry) -> Tensor {
    conv2d_backward_data_region(dy, (0, 0), w, geom, (0, geom.in_h), (0, geom.in_w))
}

/// Serial backward-filter convolution; returns `(dw, db)`.
pub fn conv2d_backward_filter(x: &Tensor, dy: &Tensor, geom: &ConvGeometry) -> (Tensor, Vec<f32>) {
    let padded = pad_window(x, geom.pad_h, geom.pad_w);
    conv2d_backward_filter_region(
        &padded,
        (-(geom.pad_h as i64), -(geom.pad_w as i64)),
        dy,
        (0, 0),
        geom,
        (0, geom.out_h()),
        (0, geom.out_w()),
    )
}

/// Copy `x` into a zero-initialized buffer with `ph`/`pw` margins on each
/// spatial side (materialized padding).
pub fn pad_window(x: &Tensor, ph: usize, pw: usize) -> Tensor {
    if ph == 0 && pw == 0 {
        return x.clone();
    }
    let s = x.shape();
    let mut out = Tensor::zeros(Shape4::new(s.n, s.c, s.h + 2 * ph, s.w + 2 * pw));
    out.copy_box_from(
        &fg_tensor::Box4::new([0, 0, ph, pw], [s.n, s.c, ph + s.h, pw + s.w]),
        x,
        &s.full_box(),
    );
    out
}

fn dims(t: &Tensor) -> (usize, usize, usize, usize) {
    let s = t.shape();
    (s.n, s.c, s.h, s.w)
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Reference implementation: the paper's Eq. 1 verbatim, no window
    /// tricks, O(everything) loops.
    fn conv_reference(x: &Tensor, w: &Tensor, bias: Option<&[f32]>, g: &ConvGeometry) -> Tensor {
        let xs = x.shape();
        let wsh = w.shape();
        let mut y = Tensor::zeros(Shape4::new(xs.n, wsh.n, g.out_h(), g.out_w()));
        for k in 0..xs.n {
            for f in 0..wsh.n {
                for oh in 0..g.out_h() {
                    for ow in 0..g.out_w() {
                        let mut acc = bias.map_or(0.0, |b| b[f]);
                        for c in 0..xs.c {
                            for r in 0..g.kh {
                                for s in 0..g.kw {
                                    let ih = (oh * g.stride_h + r) as i64 - g.pad_h as i64;
                                    let iw = (ow * g.stride_w + s) as i64 - g.pad_w as i64;
                                    if ih >= 0
                                        && iw >= 0
                                        && (ih as usize) < xs.h
                                        && (iw as usize) < xs.w
                                    {
                                        acc +=
                                            x.at(k, c, ih as usize, iw as usize) * w.at(f, c, r, s);
                                    }
                                }
                            }
                        }
                        *y.at_mut(k, f, oh, ow) = acc;
                    }
                }
            }
        }
        y
    }

    fn test_tensor(shape: Shape4, seed: u32) -> Tensor {
        Tensor::from_fn(shape, |n, c, h, w| {
            let v = (n * 131 + c * 31 + h * 17 + w * 7 + seed as usize) % 23;
            v as f32 * 0.25 - 2.5
        })
    }

    fn geometries() -> Vec<(Shape4, Shape4, ConvGeometry)> {
        // (x shape, w shape, geometry) covering K∈{1,3,5,7}, S∈{1,2}, P.
        vec![
            (Shape4::new(2, 3, 8, 8), Shape4::new(4, 3, 3, 3), ConvGeometry::square(8, 8, 3, 1, 1)),
            (Shape4::new(1, 2, 9, 7), Shape4::new(3, 2, 3, 3), ConvGeometry::square(9, 7, 3, 2, 1)),
            (Shape4::new(2, 4, 6, 6), Shape4::new(2, 4, 1, 1), ConvGeometry::square(6, 6, 1, 1, 0)),
            (
                Shape4::new(1, 1, 12, 12),
                Shape4::new(2, 1, 5, 5),
                ConvGeometry::square(12, 12, 5, 1, 2),
            ),
            (
                Shape4::new(1, 2, 14, 14),
                Shape4::new(2, 2, 7, 7),
                ConvGeometry::square(14, 14, 7, 2, 3),
            ),
            (Shape4::new(2, 2, 8, 8), Shape4::new(3, 2, 1, 1), ConvGeometry::square(8, 8, 1, 2, 0)),
        ]
    }

    #[test]
    fn forward_matches_reference() {
        for (xs, wsz, g) in geometries() {
            let x = test_tensor(xs, 1);
            let w = test_tensor(wsz, 2);
            let bias: Vec<f32> = (0..wsz.n).map(|f| f as f32 * 0.5 - 1.0).collect();
            let got = conv2d_forward(&x, &w, Some(&bias), &g);
            let want = conv_reference(&x, &w, Some(&bias), &g);
            got.assert_close(&want, 1e-5);
        }
    }

    #[test]
    fn forward_region_matches_full() {
        let (xs, wsz, g) = (
            Shape4::new(1, 2, 10, 10),
            Shape4::new(3, 2, 3, 3),
            ConvGeometry::square(10, 10, 3, 1, 1),
        );
        let x = test_tensor(xs, 3);
        let w = test_tensor(wsz, 4);
        let full = conv2d_forward(&x, &w, None, &g);
        // Compute rows 4..8, cols 2..10 from a sufficient window.
        let padded = pad_window(&x, g.pad_h, g.pad_w);
        let region = conv2d_forward_region(&padded, (-1, -1), &w, None, &g, (4, 8), (2, 10));
        for n in 0..1 {
            for f in 0..3 {
                for oh in 4..8 {
                    for ow in 2..10 {
                        assert_eq!(region.at(n, f, oh - 4, ow - 2), full.at(n, f, oh, ow));
                    }
                }
            }
        }
    }

    /// Finite-difference gradient check of backward-data and
    /// backward-filter against the forward pass.
    #[test]
    fn gradients_match_finite_differences() {
        let g = ConvGeometry::square(5, 6, 3, 2, 1);
        let x = test_tensor(Shape4::new(1, 2, 5, 6), 5);
        let w = test_tensor(Shape4::new(2, 2, 3, 3), 6);
        // Loss = sum over y of fixed weights q.
        let q = test_tensor(Shape4::new(1, 2, g.out_h(), g.out_w()), 7);
        let loss = |x: &Tensor, w: &Tensor| -> f64 {
            let y = conv2d_forward(x, w, None, &g);
            y.as_slice().iter().zip(q.as_slice()).map(|(a, b)| (*a as f64) * (*b as f64)).sum()
        };
        let dx = conv2d_backward_data(&q, &w, &g);
        let (dw, _db) = conv2d_backward_filter(&x, &q, &g);

        let eps = 1e-2f32;
        // Check a scattering of x positions.
        for (k, c, h, wi) in [(0, 0, 0, 0), (0, 1, 2, 3), (0, 0, 4, 5), (0, 1, 1, 1)] {
            let mut xp = x.clone();
            *xp.at_mut(k, c, h, wi) += eps;
            let mut xm = x.clone();
            *xm.at_mut(k, c, h, wi) -= eps;
            let fd = (loss(&xp, &w) - loss(&xm, &w)) / (2.0 * eps as f64);
            let an = dx.at(k, c, h, wi) as f64;
            assert!(
                (fd - an).abs() < 1e-2 * fd.abs().max(1.0),
                "dx[{k},{c},{h},{wi}]: {an} vs {fd}"
            );
        }
        // And of w positions.
        for (f, c, r, s) in [(0, 0, 0, 0), (1, 1, 2, 2), (0, 1, 1, 0)] {
            let mut wp = w.clone();
            *wp.at_mut(f, c, r, s) += eps;
            let mut wm = w.clone();
            *wm.at_mut(f, c, r, s) -= eps;
            let fd = (loss(&x, &wp) - loss(&x, &wm)) / (2.0 * eps as f64);
            let an = dw.at(f, c, r, s) as f64;
            assert!(
                (fd - an).abs() < 1e-2 * fd.abs().max(1.0),
                "dw[{f},{c},{r},{s}]: {an} vs {fd}"
            );
        }
    }

    #[test]
    fn bias_gradient_sums_error_signal() {
        let g = ConvGeometry::square(4, 4, 3, 1, 1);
        let x = test_tensor(Shape4::new(2, 1, 4, 4), 8);
        let dy = test_tensor(Shape4::new(2, 2, 4, 4), 9);
        let (_dw, db) = conv2d_backward_filter(&x, &dy, &g);
        for (f, got) in db.iter().enumerate() {
            let mut want = 0.0f32;
            for n in 0..2 {
                for h in 0..4 {
                    for w in 0..4 {
                        want += dy.at(n, f, h, w);
                    }
                }
            }
            assert!((got - want).abs() < 1e-4);
        }
    }

    #[test]
    fn backward_data_region_matches_full() {
        let g = ConvGeometry::square(9, 9, 3, 2, 1);
        let w = test_tensor(Shape4::new(2, 3, 3, 3), 10);
        let dy = test_tensor(Shape4::new(1, 2, g.out_h(), g.out_w()), 11);
        let full = conv2d_backward_data(&dy, &w, &g);
        let region = conv2d_backward_data_region(&dy, (0, 0), &w, &g, (3, 7), (0, 9));
        for c in 0..3 {
            for ih in 3..7 {
                for iw in 0..9 {
                    assert_eq!(region.at(0, c, ih - 3, iw), full.at(0, c, ih, iw));
                }
            }
        }
    }

    #[test]
    fn output_input_range_helpers_are_consistent() {
        for (_, _, g) in geometries() {
            for oh in 0..g.out_h() {
                let (lo, hi) = g.input_rows_for_output(oh, oh + 1);
                // Every input row in [lo,hi) clamped in-bounds maps back to
                // an output range containing oh.
                let lo_c = lo.max(0) as usize;
                let hi_c = (hi.min(g.in_h as i64)) as usize;
                if lo_c < hi_c {
                    let (o0, o1) = g.output_rows_for_input(lo_c, hi_c);
                    assert!(o0 <= oh && oh < o1, "geom {g:?} oh={oh} got [{o0},{o1})");
                }
            }
        }
    }

    #[test]
    #[should_panic(expected = "does not cover")]
    fn undersized_window_is_rejected() {
        let g = ConvGeometry::square(8, 8, 3, 1, 1);
        let x = test_tensor(Shape4::new(1, 1, 8, 8), 12);
        let w = test_tensor(Shape4::new(1, 1, 3, 3), 13);
        // Window without padding cannot produce output row 0.
        let _ = conv2d_forward_region(&x, (0, 0), &w, None, &g, (0, 8), (1, 7));
    }
}
