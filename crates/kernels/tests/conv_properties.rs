//! Property-based tests of the convolution kernels against a naive
//! reference implementation of the paper's Eqs. 1–3, over random
//! geometries, plus algebraic invariants (linearity, adjointness)
//! that hold for convolution as an operator.

use fg_kernels::conv::{
    conv2d_backward_data, conv2d_backward_filter, conv2d_forward, ConvGeometry,
};
use fg_kernels::im2col::conv2d_forward_gemm;
use fg_tensor::{Shape4, Tensor};
use proptest::prelude::*;

fn tensor_from_seed(shape: Shape4, seed: u64) -> Tensor {
    let mut state = seed | 1;
    Tensor::from_fn(shape, |_, _, _, _| {
        state ^= state << 13;
        state ^= state >> 7;
        state ^= state << 17;
        ((state % 512) as f32) / 128.0 - 2.0
    })
}

/// Naive Eq. 1 with explicit bounds checks.
fn reference_forward(x: &Tensor, w: &Tensor, g: &ConvGeometry) -> Tensor {
    let xs = x.shape();
    let ws = w.shape();
    let mut y = Tensor::zeros(Shape4::new(xs.n, ws.n, g.out_h(), g.out_w()));
    for k in 0..xs.n {
        for f in 0..ws.n {
            for oh in 0..g.out_h() {
                for ow in 0..g.out_w() {
                    let mut acc = 0.0f32;
                    for c in 0..xs.c {
                        for r in 0..g.kh {
                            for s in 0..g.kw {
                                let ih = (oh * g.stride_h + r) as i64 - g.pad_h as i64;
                                let iw = (ow * g.stride_w + s) as i64 - g.pad_w as i64;
                                if ih >= 0
                                    && iw >= 0
                                    && (ih as usize) < xs.h
                                    && (iw as usize) < xs.w
                                {
                                    acc += x.at(k, c, ih as usize, iw as usize) * w.at(f, c, r, s);
                                }
                            }
                        }
                    }
                    *y.at_mut(k, f, oh, ow) = acc;
                }
            }
        }
    }
    y
}

fn geometry() -> impl Strategy<Value = (usize, usize, usize, ConvGeometry, u64)> {
    (
        1usize..3,                                            // n
        1usize..4,                                            // c
        1usize..4,                                            // f
        prop_oneof![Just(1usize), Just(3), Just(5), Just(7)], // k
        1usize..3,                                            // s
        0usize..4,                                            // p
        7usize..16,                                           // h
        7usize..16,                                           // w
        any::<u64>(),
    )
        .prop_filter_map("output must be non-empty", |(n, c, f, k, s, p, h, w, seed)| {
            if h + 2 * p < k || w + 2 * p < k {
                return None;
            }
            let geom = ConvGeometry {
                in_h: h,
                in_w: w,
                kh: k,
                kw: k,
                stride_h: s,
                stride_w: s,
                pad_h: p,
                pad_w: p,
            };
            (geom.out_h() > 0 && geom.out_w() > 0).then_some((n, c, f, geom, seed))
        })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn forward_matches_naive_reference((n, c, f, geom, seed) in geometry()) {
        let x = tensor_from_seed(Shape4::new(n, c, geom.in_h, geom.in_w), seed);
        let w = tensor_from_seed(Shape4::new(f, c, geom.kh, geom.kw), seed ^ 0xFACE);
        let got = conv2d_forward(&x, &w, None, &geom);
        let want = reference_forward(&x, &w, &geom);
        prop_assert!(got.max_abs_diff(&want) <= 1e-3,
            "direct conv deviates from Eq. 1 reference by {}", got.max_abs_diff(&want));
    }

    #[test]
    fn gemm_path_agrees_with_direct((n, c, f, geom, seed) in geometry()) {
        let x = tensor_from_seed(Shape4::new(n, c, geom.in_h, geom.in_w), seed);
        let w = tensor_from_seed(Shape4::new(f, c, geom.kh, geom.kw), seed ^ 0xBEEF);
        let direct = conv2d_forward(&x, &w, None, &geom);
        let gemm = conv2d_forward_gemm(&x, &w, None, &geom);
        prop_assert!(gemm.max_rel_diff(&direct, 1.0) < 1e-3);
    }

    #[test]
    fn forward_is_linear_in_the_input((n, c, f, geom, seed) in geometry()) {
        let x1 = tensor_from_seed(Shape4::new(n, c, geom.in_h, geom.in_w), seed);
        let x2 = tensor_from_seed(Shape4::new(n, c, geom.in_h, geom.in_w), seed ^ 0x5555);
        let w = tensor_from_seed(Shape4::new(f, c, geom.kh, geom.kw), seed ^ 0xAAAA);
        // conv(a·x1 + x2) == a·conv(x1) + conv(x2)
        let a = 0.5f32;
        let mut lhs_in = x1.clone();
        lhs_in.scale(a);
        lhs_in.add_assign(&x2);
        let lhs = conv2d_forward(&lhs_in, &w, None, &geom);
        let mut rhs = conv2d_forward(&x1, &w, None, &geom);
        rhs.scale(a);
        rhs.add_assign(&conv2d_forward(&x2, &w, None, &geom));
        prop_assert!(lhs.max_rel_diff(&rhs, 1.0) < 1e-3);
    }

    #[test]
    fn backward_data_is_the_adjoint_of_forward((n, c, f, geom, seed) in geometry()) {
        // ⟨conv(x), dy⟩ == ⟨x, convᵀ(dy)⟩ — Eq. 3 is the transpose of Eq. 1.
        let x = tensor_from_seed(Shape4::new(n, c, geom.in_h, geom.in_w), seed);
        let w = tensor_from_seed(Shape4::new(f, c, geom.kh, geom.kw), seed ^ 0x1111);
        let y = conv2d_forward(&x, &w, None, &geom);
        let dy = tensor_from_seed(y.shape(), seed ^ 0x2222);
        let dx = conv2d_backward_data(&dy, &w, &geom);
        let lhs: f64 = y
            .as_slice()
            .iter()
            .zip(dy.as_slice())
            .map(|(a, b)| (*a as f64) * (*b as f64))
            .sum();
        let rhs: f64 = x
            .as_slice()
            .iter()
            .zip(dx.as_slice())
            .map(|(a, b)| (*a as f64) * (*b as f64))
            .sum();
        let scale = lhs.abs().max(rhs.abs()).max(1.0);
        prop_assert!((lhs - rhs).abs() / scale < 1e-4,
            "adjoint identity violated: {lhs} vs {rhs}");
    }

    #[test]
    fn backward_filter_is_the_weight_adjoint((n, c, f, geom, seed) in geometry()) {
        // ⟨conv_w(x), dy⟩ must equal ⟨w, dW(x, dy)⟩.
        let x = tensor_from_seed(Shape4::new(n, c, geom.in_h, geom.in_w), seed);
        let w = tensor_from_seed(Shape4::new(f, c, geom.kh, geom.kw), seed ^ 0x3333);
        let y = conv2d_forward(&x, &w, None, &geom);
        let dy = tensor_from_seed(y.shape(), seed ^ 0x4444);
        let (dw, _db) = conv2d_backward_filter(&x, &dy, &geom);
        let lhs: f64 = y
            .as_slice()
            .iter()
            .zip(dy.as_slice())
            .map(|(a, b)| (*a as f64) * (*b as f64))
            .sum();
        let rhs: f64 = w
            .as_slice()
            .iter()
            .zip(dw.as_slice())
            .map(|(a, b)| (*a as f64) * (*b as f64))
            .sum();
        let scale = lhs.abs().max(rhs.abs()).max(1.0);
        prop_assert!((lhs - rhs).abs() / scale < 1e-4,
            "weight adjoint violated: {lhs} vs {rhs}");
    }
}
