//! Property tests for pooling and batch normalization: partition
//! properties (the basis of their distributed forms), conservation laws,
//! and partial-moment merging over random splits.

use fg_kernels::batchnorm::{bn_partial_moments, BnPartials};
use fg_kernels::conv::ConvGeometry;
use fg_kernels::pool::{pool2d_backward, pool2d_backward_region, pool2d_forward, PoolKind};
use fg_tensor::{Box4, Shape4, Tensor};
use proptest::prelude::*;

fn tensor_from_seed(shape: Shape4, seed: u64) -> Tensor {
    let mut state = seed | 1;
    Tensor::from_fn(shape, |_, _, _, _| {
        state ^= state << 13;
        state ^= state >> 7;
        state ^= state << 17;
        ((state % 400) as f32) / 50.0 - 4.0
    })
}

fn pool_case() -> impl Strategy<Value = (Shape4, ConvGeometry, u64)> {
    (
        1usize..3,
        1usize..3,
        prop_oneof![Just(2usize), Just(3)],
        1usize..3,
        0usize..2,
        6usize..12,
        6usize..12,
        any::<u64>(),
    )
        .prop_filter_map("valid pooling", |(n, c, k, s, p, h, w, seed)| {
            if h + 2 * p < k || w + 2 * p < k || p >= k {
                return None;
            }
            let g = ConvGeometry {
                in_h: h,
                in_w: w,
                kh: k,
                kw: k,
                stride_h: s,
                stride_w: s,
                pad_h: p,
                pad_w: p,
            };
            (g.out_h() > 0 && g.out_w() > 0).then_some((Shape4::new(n, c, h, w), g, seed))
        })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    #[test]
    fn backward_region_split_tiles_the_full_gradient((shape, geom, seed) in pool_case()) {
        // Computing dx in two arbitrary horizontal halves must agree with
        // the monolithic computation — the property the distributed
        // pooling layer depends on.
        let x = tensor_from_seed(shape, seed);
        let dy = tensor_from_seed(
            Shape4::new(shape.n, shape.c, geom.out_h(), geom.out_w()),
            seed ^ 0x77,
        );
        for kind in [PoolKind::Max, PoolKind::Avg] {
            let full = pool2d_backward(kind, &x, &dy, &geom);
            let mid = (shape.h / 2).max(1);
            let top = pool2d_backward_region(kind, &x, (0, 0), &dy, (0, 0), &geom, (0, mid), (0, shape.w));
            let bot = if mid < shape.h {
                Some(pool2d_backward_region(kind, &x, (0, 0), &dy, (0, 0), &geom, (mid, shape.h), (0, shape.w)))
            } else {
                None
            };
            for n in 0..shape.n {
                for c in 0..shape.c {
                    for h in 0..shape.h {
                        for w in 0..shape.w {
                            let v = if h < mid {
                                top.at(n, c, h, w)
                            } else {
                                bot.as_ref().unwrap().at(n, c, h - mid, w)
                            };
                            prop_assert_eq!(v, full.at(n, c, h, w));
                        }
                    }
                }
            }
        }
    }

    #[test]
    fn max_pool_conserves_gradient_mass((shape, geom, seed) in pool_case()) {
        // Each output routes its whole gradient to exactly one input.
        let x = tensor_from_seed(shape, seed);
        let y = pool2d_forward(PoolKind::Max, &x, &geom);
        let dy = Tensor::full(y.shape(), 1.0);
        let dx = pool2d_backward(PoolKind::Max, &x, &dy, &geom);
        let mass: f64 = dx.as_slice().iter().map(|&v| v as f64).sum();
        prop_assert!(
            (mass - y.len() as f64).abs() < 1e-3,
            "gradient mass {} vs {} outputs", mass, y.len()
        );
    }

    #[test]
    fn avg_pool_conserves_gradient_mass((shape, geom, seed) in pool_case()) {
        let x = tensor_from_seed(shape, seed);
        let y = pool2d_forward(PoolKind::Avg, &x, &geom);
        let dy = Tensor::full(y.shape(), 1.0);
        let dx = pool2d_backward(PoolKind::Avg, &x, &dy, &geom);
        let mass: f64 = dx.as_slice().iter().map(|&v| v as f64).sum();
        prop_assert!(
            (mass - y.len() as f64).abs() < 1e-2,
            "avg-pool mass {} vs {} outputs", mass, y.len()
        );
    }

    #[test]
    fn max_pool_output_bounded_by_input_extremes((shape, geom, seed) in pool_case()) {
        let x = tensor_from_seed(shape, seed);
        let y = pool2d_forward(PoolKind::Max, &x, &geom);
        let xmax = x.as_slice().iter().cloned().fold(f32::MIN, f32::max);
        let xmin = x.as_slice().iter().cloned().fold(f32::MAX, f32::min);
        for &v in y.as_slice() {
            prop_assert!(v <= xmax && v >= xmin);
        }
    }

    #[test]
    fn bn_partials_merge_over_arbitrary_sample_splits(
        n in 2usize..8,
        c in 1usize..4,
        hw in 2usize..6,
        cut_frac in 1usize..7,
        seed in any::<u64>(),
    ) {
        let shape = Shape4::new(n, c, hw, hw);
        let x = tensor_from_seed(shape, seed);
        let cut = (cut_frac * n / 8).clamp(1, n - 1);
        let a = x.slice_box(&Box4::new([0, 0, 0, 0], [cut, c, hw, hw]));
        let b = x.slice_box(&Box4::new([cut, 0, 0, 0], [n, c, hw, hw]));
        let pa = bn_partial_moments(&a);
        let pb = bn_partial_moments(&b);
        let merged = BnPartials {
            sum: pa.sum.iter().zip(&pb.sum).map(|(x, y)| x + y).collect(),
            sumsq: pa.sumsq.iter().zip(&pb.sumsq).map(|(x, y)| x + y).collect(),
            count: pa.count + pb.count,
        }
        .finalize();
        let whole = bn_partial_moments(&x).finalize();
        for ch in 0..c {
            prop_assert!((merged.mean[ch] - whole.mean[ch]).abs() < 1e-4);
            prop_assert!((merged.var[ch] - whole.var[ch]).abs() < 1e-3);
        }
    }
}
