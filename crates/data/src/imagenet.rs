//! Synthetic ImageNet-like classification data.
//!
//! Stand-in for ImageNet-1K (which we cannot ship): 224²×3 images whose
//! pixel statistics match normalized natural images, with a learnable
//! class signal — each class has a fixed low-frequency template blended
//! into per-sample noise, so accuracy above chance is achievable and
//! end-to-end training tests can verify learning, while throughput
//! benchmarks see realistic tensor shapes and value ranges.

use fg_kernels::loss::Labels;
use fg_tensor::{Shape4, Tensor};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use crate::mesh::smooth_field;

/// Synthetic labeled-image generator.
#[derive(Debug, Clone)]
pub struct ImageDataset {
    /// Image extent (224 for ImageNet).
    pub hw: usize,
    /// Channels (3).
    pub channels: usize,
    /// Number of classes.
    pub classes: usize,
    /// Template-to-noise blend (0 = pure noise, 1 = pure template).
    pub signal: f32,
    base_seed: u64,
}

impl ImageDataset {
    /// Create a generator.
    pub fn new(hw: usize, channels: usize, classes: usize, seed: u64) -> Self {
        ImageDataset { hw, channels, classes, signal: 0.6, base_seed: seed }
    }

    /// Deterministic label of sample `index`.
    pub fn label_of(&self, index: usize) -> u32 {
        (splitmix(self.base_seed.wrapping_add(index as u64)) % self.classes as u64) as u32
    }

    /// One sample image (shape `1×C×H×W`).
    pub fn sample_input(&self, index: usize) -> Tensor {
        let class = self.label_of(index);
        let mut rng = StdRng::seed_from_u64(
            self.base_seed ^ (index as u64).wrapping_mul(0xA24B_AED4_963E_E407),
        );
        let mut t = Tensor::zeros(Shape4::new(1, self.channels, self.hw, self.hw));
        for c in 0..self.channels {
            // Class template: smooth field seeded by (class, channel),
            // plus a class-dependent per-channel intensity offset (the
            // kind of low-order statistic a small CNN latches onto).
            let template =
                smooth_field(self.hw, 0xC1A5_5000 + class as u64 * 37 + c as u64, self.hw / 8);
            let offset = (splitmix(0x0FF5_E700 + class as u64 * 101 + c as u64) % 1000) as f32
                / 1000.0
                - 0.5;
            let base = t.shape().offset(0, c, 0, 0);
            for (dst, tv) in
                t.as_mut_slice()[base..base + self.hw * self.hw].iter_mut().zip(&template)
            {
                let noise: f32 = rng.gen_range(-1.0..1.0);
                *dst = self.signal * (tv + offset) + (1.0 - self.signal) * noise;
            }
        }
        t
    }

    /// A full mini-batch `(inputs, labels)`.
    pub fn batch(&self, start_index: usize, n: usize) -> (Tensor, Labels) {
        let mut x = Tensor::zeros(Shape4::new(n, self.channels, self.hw, self.hw));
        let mut labels = Vec::with_capacity(n);
        for k in 0..n {
            let sample = self.sample_input(start_index + k);
            let sb = x.shape().offset(k, 0, 0, 0);
            let len = self.channels * self.hw * self.hw;
            x.as_mut_slice()[sb..sb + len].copy_from_slice(sample.as_slice());
            labels.push(self.label_of(start_index + k));
        }
        (x, Labels::per_sample(labels))
    }
}

/// SplitMix64 finalizer: a high-quality deterministic hash.
fn splitmix(seed: u64) -> u64 {
    let mut z = seed.wrapping_add(0x9E37_79B9_7F4A_7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic_and_distinct() {
        let ds = ImageDataset::new(32, 3, 10, 3);
        assert_eq!(ds.sample_input(0), ds.sample_input(0));
        assert_ne!(ds.sample_input(0), ds.sample_input(1));
        assert_eq!(ds.label_of(4), ds.label_of(4));
    }

    #[test]
    fn labels_cover_classes_roughly_uniformly() {
        let ds = ImageDataset::new(16, 3, 4, 11);
        let mut counts = [0usize; 4];
        for i in 0..400 {
            counts[ds.label_of(i) as usize] += 1;
        }
        for c in counts {
            assert!((60..=140).contains(&c), "class imbalance: {counts:?}");
        }
    }

    #[test]
    fn same_class_samples_correlate_more_than_cross_class() {
        let ds = ImageDataset::new(32, 1, 3, 5);
        // Find two samples of the same class and one of a different class.
        let (mut a, mut b, mut c) = (None, None, None);
        for i in 0..100 {
            match (ds.label_of(i), &a, &b) {
                (0, None, _) => a = Some(i),
                (0, Some(_), None) => b = Some(i),
                (1, _, _) if c.is_none() => c = Some(i),
                _ => {}
            }
        }
        let (a, b, c) = (a.unwrap(), b.unwrap(), c.unwrap());
        let corr = |i: usize, j: usize| {
            let x = ds.sample_input(i);
            let y = ds.sample_input(j);
            x.as_slice().iter().zip(y.as_slice()).map(|(p, q)| p * q).sum::<f32>()
        };
        assert!(corr(a, b) > corr(a, c), "same-class correlation must exceed cross-class");
    }

    #[test]
    fn a_small_cnn_learns_the_synthetic_classes() {
        use fg_nn::{Network, NetworkSpec, Sgd};
        let ds = ImageDataset::new(16, 2, 3, 21);
        let mut spec = NetworkSpec::new();
        let i = spec.input("x", 2, 16, 16);
        let c1 = spec.conv("c1", i, 8, 3, 2, 1);
        let r1 = spec.relu("r1", c1);
        let g = spec.global_avg_pool("gap", r1);
        let f = spec.fc("fc", g, 3);
        spec.loss("loss", f);
        let mut net = Network::init(spec, 13);
        let mut opt = Sgd::new(0.1, 0.9, 0.0, &net.params);
        let (x, labels) = ds.batch(0, 12);
        let (first, _) = net.loss_and_grads(&x, &labels);
        let mut last = first;
        for _ in 0..25 {
            let (loss, grads) = net.loss_and_grads(&x, &labels);
            opt.step(&mut net.params, &grads);
            last = loss;
        }
        assert!(last < first * 0.5, "synthetic classes not learnable: {first} → {last}");
    }
}
