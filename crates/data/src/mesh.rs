//! Synthetic mesh-tangling dataset (substitute for the paper's
//! proprietary hydrodynamics data).
//!
//! The real dataset is 10,000 samples of 1024²/2048² × 18 channels of
//! "state variables and mesh quality metrics from a hydrodynamics
//! simulation", labeled per pixel with whether the mesh cell needs
//! relaxation. We cannot have that data; the paper itself uses synthetic
//! data for its performance runs ("For performance benchmarks on this
//! problem, we use synthetic data"). This generator produces:
//!
//! * 18 channels of *smooth* random fields (coarse seeded noise,
//!   bilinearly upsampled, box-blurred) — matching the spatial
//!   correlation structure of simulation state, which is what matters
//!   for exercising halo exchanges with realistic value ranges;
//! * per-pixel labels derived from a mesh-distortion proxy (the discrete
//!   Laplacian of a designated "displacement" channel exceeding a
//!   threshold), downsampled to the model's prediction resolution — so
//!   the labels are a deterministic function of the input and a model
//!   can genuinely learn them.

use fg_kernels::loss::Labels;
use fg_tensor::{Shape4, Tensor};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Synthetic mesh-tangling sample generator.
#[derive(Debug, Clone)]
pub struct MeshDataset {
    /// Input extent (1024 or 2048 for the paper's sizes).
    pub input_hw: usize,
    /// Prediction-map extent (input / 64 for the mesh model).
    pub label_hw: usize,
    /// Input channels.
    pub channels: usize,
    base_seed: u64,
}

impl MeshDataset {
    /// Create a generator; `label_hw` must divide `input_hw`.
    pub fn new(input_hw: usize, label_hw: usize, channels: usize, seed: u64) -> Self {
        assert!(input_hw.is_multiple_of(label_hw), "label map must tile the input");
        MeshDataset { input_hw, label_hw, channels, base_seed: seed }
    }

    /// Generate one sample's input channels (shape `1×C×H×W`).
    pub fn sample_input(&self, index: usize) -> Tensor {
        let mut t = Tensor::zeros(Shape4::new(1, self.channels, self.input_hw, self.input_hw));
        for c in 0..self.channels {
            // Correlation length varies per channel: state variables
            // (early channels) are smoother than quality metrics.
            let field =
                smooth_field(self.input_hw, self.field_seed(index, c), self.field_coarse(c));
            let base = t.shape().offset(0, c, 0, 0);
            t.as_mut_slice()[base..base + field.len()].copy_from_slice(&field);
        }
        t
    }

    /// Labels for a sample: 1 where the distortion proxy flags tangling.
    pub fn sample_labels(&self, input: &Tensor) -> Labels {
        let hw = self.input_hw;
        let cell = hw / self.label_hw;
        let mut data = Vec::with_capacity(self.label_hw * self.label_hw);
        // Distortion proxy: mean |Laplacian| of channel 0 over the cell.
        for by in 0..self.label_hw {
            for bx in 0..self.label_hw {
                let mut acc = 0.0f64;
                let mut cnt = 0usize;
                for y in (by * cell)..(by + 1) * cell {
                    for x in (bx * cell)..(bx + 1) * cell {
                        if y == 0 || x == 0 || y + 1 >= hw || x + 1 >= hw {
                            continue;
                        }
                        let lap = 4.0 * input.at(0, 0, y, x)
                            - input.at(0, 0, y - 1, x)
                            - input.at(0, 0, y + 1, x)
                            - input.at(0, 0, y, x - 1)
                            - input.at(0, 0, y, x + 1);
                        acc += lap.abs() as f64;
                        cnt += 1;
                    }
                }
                let distortion = if cnt > 0 { acc / cnt as f64 } else { 0.0 };
                data.push(u32::from(distortion > 0.02));
            }
        }
        Labels::per_pixel(1, self.label_hw, self.label_hw, data)
    }

    /// Seed for one (sample, channel) field — shared by the full and
    /// sharded generators so they agree pixel-for-pixel.
    fn field_seed(&self, index: usize, c: usize) -> u64 {
        self.base_seed ^ (index as u64).wrapping_mul(0x9E37_79B9_7F4A_7C15) ^ c as u64
    }

    /// Correlation length of channel `c`'s field.
    fn field_coarse(&self, c: usize) -> usize {
        8 + 4 * (c % 4)
    }

    /// Generate **only this rank's shard** of a mini-batch, never
    /// materializing the full `N×C×H×W` tensor — the distributed data
    /// loading the huge-sample story requires (a full 2K batch is
    /// ~288 MiB *per sample*; a 16-way shard is 1/16 of that). Each rank
    /// holds only the small coarse-noise grids plus its owned box.
    ///
    /// The result is bit-identical to sharding [`MeshDataset::batch`]
    /// via `DistTensor::from_global` (tested).
    pub fn shard_batch(
        &self,
        dist: fg_tensor::TensorDist,
        rank: usize,
        start_index: usize,
    ) -> fg_tensor::DistTensor {
        assert_eq!(
            (dist.shape.c, dist.shape.h, dist.shape.w),
            (self.channels, self.input_hw, self.input_hw),
            "distribution does not match the dataset"
        );
        let mut dt = fg_tensor::DistTensor::new_unpadded(dist, rank);
        let own = dt.own_box();
        // One coarse grid per (sample, channel) intersecting the shard.
        let mut shard = fg_tensor::Tensor::zeros(own.shape());
        for (ni, n) in (own.lo[0]..own.hi[0]).enumerate() {
            for (ci, c) in (own.lo[1]..own.hi[1]).enumerate() {
                let grid = CoarseNoise::new(
                    self.input_hw,
                    self.field_seed(start_index + n, c),
                    self.field_coarse(c),
                );
                for (hi, h) in (own.lo[2]..own.hi[2]).enumerate() {
                    for (wi, w) in (own.lo[3]..own.hi[3]).enumerate() {
                        *shard.at_mut(ni, ci, hi, wi) = grid.at(h, w);
                    }
                }
            }
        }
        dt.set_owned(&shard);
        dt
    }

    /// Labels for a batch without retaining the inputs: one sample's
    /// fields are materialized at a time (labels derive from channel 0),
    /// so peak memory is a single sample regardless of `n`. Pairs with
    /// [`MeshDataset::shard_batch`] for distributed loading.
    pub fn batch_labels(&self, start_index: usize, n: usize) -> Labels {
        let mut labels = Vec::with_capacity(n * self.label_hw * self.label_hw);
        for k in 0..n {
            let sample = self.sample_input(start_index + k);
            labels.extend_from_slice(&self.sample_labels(&sample).data);
        }
        Labels::per_pixel(n, self.label_hw, self.label_hw, labels)
    }

    /// A full mini-batch: `(inputs (N×C×H×W), labels (N×lh×lw))`.
    pub fn batch(&self, start_index: usize, n: usize) -> (Tensor, Labels) {
        let mut x = Tensor::zeros(Shape4::new(n, self.channels, self.input_hw, self.input_hw));
        let mut labels = Vec::with_capacity(n * self.label_hw * self.label_hw);
        for k in 0..n {
            let sample = self.sample_input(start_index + k);
            let sb = x.shape().offset(k, 0, 0, 0);
            let len = self.channels * self.input_hw * self.input_hw;
            x.as_mut_slice()[sb..sb + len].copy_from_slice(sample.as_slice());
            labels.extend_from_slice(&self.sample_labels(&sample).data);
        }
        (x, Labels::per_pixel(n, self.label_hw, self.label_hw, labels))
    }
}

/// The coarse noise grid a smooth field is generated from. Small
/// (`(hw/coarse + 2)²` values), so every rank can hold it and evaluate
/// any pixel locally — the basis of sharded data loading.
#[derive(Debug, Clone)]
pub struct CoarseNoise {
    hw: usize,
    coarse: usize,
    cg: usize,
    noise: Vec<f32>,
}

impl CoarseNoise {
    /// Generate the coarse grid for a field.
    pub fn new(hw: usize, seed: u64, coarse: usize) -> Self {
        let coarse = coarse.clamp(2, hw);
        let mut rng = StdRng::seed_from_u64(seed);
        let cg = hw.div_ceil(coarse) + 2;
        let noise: Vec<f32> = (0..cg * cg).map(|_| rng.gen_range(-1.0f32..1.0)).collect();
        CoarseNoise { hw, coarse, cg, noise }
    }

    /// Bilinear upsample value at `(y, x)` (pre-blur).
    fn upsampled(&self, y: usize, x: usize) -> f32 {
        let fy = y as f32 / self.coarse as f32;
        let y0 = fy.floor() as usize;
        let ty = fy - y0 as f32;
        let fx = x as f32 / self.coarse as f32;
        let x0 = fx.floor() as usize;
        let tx = fx - x0 as f32;
        let at = |yy: usize, xx: usize| self.noise[yy * self.cg + xx];
        at(y0, x0) * (1.0 - ty) * (1.0 - tx)
            + at(y0 + 1, x0) * ty * (1.0 - tx)
            + at(y0, x0 + 1) * (1.0 - ty) * tx
            + at(y0 + 1, x0 + 1) * ty * tx
    }

    /// The field value at one pixel (bilinear + 3×3 box blur), identical
    /// to the corresponding entry of [`smooth_field`]. Interior pixels
    /// only get the blur (matching the full generator's edge handling).
    pub fn at(&self, y: usize, x: usize) -> f32 {
        if y == 0 || x == 0 || y + 1 >= self.hw || x + 1 >= self.hw {
            return self.upsampled(y, x);
        }
        let mut acc = 0.0f32;
        for dy in 0..3 {
            for dx in 0..3 {
                acc += self.upsampled(y + dy - 1, x + dx - 1);
            }
        }
        acc / 9.0
    }
}

/// Smooth random field in `[-1, 1]`: coarse noise, bilinear upsample,
/// one box-blur pass. Implemented via [`CoarseNoise`] so the full and
/// pointwise (sharded) generators are identical by construction.
pub fn smooth_field(hw: usize, seed: u64, coarse: usize) -> Vec<f32> {
    let grid = CoarseNoise::new(hw, seed, coarse);
    // Materialize the bilinear stage once, then blur (same arithmetic as
    // CoarseNoise::at, batched).
    let mut up = vec![0.0f32; hw * hw];
    for y in 0..hw {
        for x in 0..hw {
            up[y * hw + x] = grid.upsampled(y, x);
        }
    }
    let mut blurred = up.clone();
    for y in 1..hw - 1 {
        for x in 1..hw - 1 {
            let mut acc = 0.0f32;
            for dy in 0..3 {
                for dx in 0..3 {
                    acc += up[(y + dy - 1) * hw + (x + dx - 1)];
                }
            }
            blurred[y * hw + x] = acc / 9.0;
        }
    }
    blurred
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn generation_is_deterministic() {
        let ds = MeshDataset::new(64, 4, 3, 42);
        let a = ds.sample_input(5);
        let b = ds.sample_input(5);
        assert_eq!(a, b);
        let c = ds.sample_input(6);
        assert_ne!(a, c);
    }

    #[test]
    fn fields_are_smooth() {
        // Neighboring pixels correlate strongly: mean |∇| well below the
        // value scale.
        let f = smooth_field(64, 1, 8);
        let mut grad = 0.0f64;
        let mut amp = 0.0f64;
        for y in 0..64 {
            for x in 0..63 {
                grad += (f[y * 64 + x + 1] - f[y * 64 + x]).abs() as f64;
                amp += f[y * 64 + x].abs() as f64;
            }
        }
        assert!(grad / amp < 0.25, "field too rough: grad/amp = {}", grad / amp);
    }

    #[test]
    fn labels_have_both_classes_and_are_deterministic() {
        let ds = MeshDataset::new(128, 8, 2, 7);
        let mut ones = 0usize;
        let mut total = 0usize;
        for i in 0..4 {
            let x = ds.sample_input(i);
            let l = ds.sample_labels(&x);
            assert_eq!(l.data.len(), 64);
            assert_eq!(ds.sample_labels(&x), l);
            ones += l.data.iter().filter(|&&v| v == 1).count();
            total += l.data.len();
        }
        assert!(ones > 0, "no positive labels at all");
        assert!(ones < total, "all labels positive");
    }

    #[test]
    fn batch_concatenates_samples() {
        let ds = MeshDataset::new(64, 4, 3, 9);
        let (x, labels) = ds.batch(0, 2);
        assert_eq!(x.shape(), Shape4::new(2, 3, 64, 64));
        assert_eq!(labels.n, 2);
        // Second sample in the batch equals the standalone sample 1.
        let solo = ds.sample_input(1);
        for c in 0..3 {
            assert_eq!(x.at(1, c, 10, 10), solo.at(0, c, 10, 10));
        }
    }

    #[test]
    fn sharded_loading_matches_full_batch_bitwise() {
        use fg_tensor::{DistTensor, ProcGrid, TensorDist};
        let ds = MeshDataset::new(64, 4, 5, 123);
        let (full, _labels) = ds.batch(3, 4);
        for grid in [ProcGrid::sample(4), ProcGrid::spatial(2, 2), ProcGrid::hybrid(2, 2, 1)] {
            let dist = TensorDist::new(full.shape(), grid);
            for rank in 0..grid.size() {
                let sharded = ds.shard_batch(dist.clone(), rank, 3);
                let reference = DistTensor::from_global(dist.clone(), rank, &full, [0; 4], [0; 4]);
                assert_eq!(
                    sharded.owned_tensor(),
                    reference.owned_tensor(),
                    "grid {grid} rank {rank}"
                );
            }
        }
    }

    #[test]
    fn pointwise_field_matches_batch_field() {
        let full = smooth_field(48, 9, 8);
        let grid = CoarseNoise::new(48, 9, 8);
        for y in [0usize, 1, 24, 46, 47] {
            for x in [0usize, 1, 24, 46, 47] {
                assert_eq!(grid.at(y, x), full[y * 48 + x], "pixel ({y},{x})");
            }
        }
    }

    #[test]
    fn paper_scale_shapes() {
        // 2K configuration: 2048² × 18 channels, labels at 32².
        let ds = MeshDataset::new(2048, 32, 18, 0);
        assert_eq!(ds.input_hw, 2048);
        // One sample is ~288 MiB in f32 — the paper's figure.
        let bytes = 18usize * 2048 * 2048 * 4;
        assert_eq!(bytes, 288 * 1024 * 1024);
    }
}
