//! # fg-data — synthetic datasets
//!
//! Stand-ins for the data the paper trains on but we cannot have:
//!
//! * [`mesh::MeshDataset`] — the proprietary LLNL hydrodynamics
//!   mesh-tangling data (1024²/2048² × 18 channels, per-pixel labels);
//!   the paper itself uses synthetic data for performance runs;
//! * [`imagenet::ImageDataset`] — ImageNet-1K-shaped classification
//!   samples with a learnable class signal.
//!
//! Both are fully deterministic given a seed, so distributed and serial
//! runs consume identical batches.

pub mod imagenet;
pub mod mesh;

pub use imagenet::ImageDataset;
pub use mesh::MeshDataset;
