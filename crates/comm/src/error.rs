//! Error types for communicator construction and use.
//!
//! Runtime message-passing bugs (tag type mismatches, out-of-range ranks)
//! are programming errors and panic; recoverable configuration problems
//! and *fault-model* outcomes surface as [`CommError`].
//!
//! The fault-model variants ([`CommError::RankFailed`] and
//! [`CommError::Timeout`]) are raised by unwinding with the error as the
//! panic payload (`std::panic::panic_any`), because the [`crate::Communicator`]
//! methods are deliberately infallible — real MPI aborts the job on a
//! peer failure too. [`crate::runtime::run_ranks_opts`] and
//! [`crate::runtime::run_ranks_with_faults`] catch those unwinds at the
//! rank boundary and return them as per-rank `Result`s, so a chaos test
//! or a resilient training driver observes a structured error instead of
//! a crashed process or a hung CI job.

use std::fmt;

/// Errors arising from invalid communicator configuration or, under the
/// fault model, from rank failures and watchdog/timeout aborts.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum CommError {
    /// A world or group of zero ranks was requested.
    EmptyWorld,
    /// A rank index was outside `0..size`.
    RankOutOfRange {
        /// The offending rank.
        rank: usize,
        /// The communicator size.
        size: usize,
    },
    /// A sub-communicator group referenced a rank not in the parent.
    InvalidGroup {
        /// The offending parent rank.
        rank: usize,
    },
    /// Rank `rank` terminated (injected kill, panic, or early exit while
    /// peers still depended on it), observed by rank `observer`. When a
    /// rank reports its own injected death, `observer == rank`.
    RankFailed {
        /// The rank that failed.
        rank: usize,
        /// The rank that observed the failure.
        observer: usize,
        /// Human-readable context: the awaited tag, the injected fault,
        /// or the recorded death reason of the failed rank.
        detail: String,
    },
    /// A receive exceeded its deadline, or the deadlock watchdog aborted
    /// the world; `detail` carries the wait-graph diagnostic.
    Timeout {
        /// The rank whose receive was aborted.
        rank: usize,
        /// Diagnostic: either the per-receive timeout description or the
        /// watchdog's wait graph (who waits on whom, which tag).
        detail: String,
    },
    /// The integrity layer detected payload corruption on `link` that it
    /// could not repair within its retry budget (every retransmission
    /// was also corrupted, or the sender's replay window no longer holds
    /// the message). `seq` is the corrupted message's position in its
    /// `(link, tag)` stream.
    Corrupt {
        /// The `(src, dst)` ordered pair the corrupted message traveled.
        link: (usize, usize),
        /// Stream sequence number of the unrepairable message.
        seq: u64,
        /// Context: the tag, the retry budget, what each retry saw.
        detail: String,
    },
}

impl fmt::Display for CommError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CommError::EmptyWorld => write!(f, "communicator must have at least one rank"),
            CommError::RankOutOfRange { rank, size } => {
                write!(f, "rank {rank} out of range for communicator of size {size}")
            }
            CommError::InvalidGroup { rank } => {
                write!(f, "group references rank {rank} not present in parent communicator")
            }
            CommError::RankFailed { rank, observer, detail } => {
                write!(f, "rank {rank} failed (observed by rank {observer}): {detail}")
            }
            CommError::Timeout { rank, detail } => {
                write!(f, "rank {rank} timed out: {detail}")
            }
            CommError::Corrupt { link: (src, dst), seq, detail } => {
                write!(f, "unrepairable corruption on link {src} -> {dst} (seq {seq}): {detail}")
            }
        }
    }
}

impl std::error::Error for CommError {}

impl CommError {
    /// The rank this error blames for a death, if it records one: the
    /// victim of a [`CommError::RankFailed`] (self-reported or observed
    /// by a peer). Timeouts and corruption name links and waiters, not
    /// deaths, so they attribute nothing.
    pub fn failed_rank(&self) -> Option<usize> {
        match self {
            CommError::RankFailed { rank, .. } => Some(*rank),
            _ => None,
        }
    }
}

/// Attribute permanent deaths from a failure history: the ranks blamed
/// by [`CommError::RankFailed`] errors, preferring *self-reported*
/// deaths (victim == observer — the rank recorded its own demise, the
/// strongest evidence) and falling back to peer observations when no
/// rank self-reported. Returns sorted, deduplicated ranks; empty when
/// the history contains no rank failures (e.g. pure timeouts).
///
/// This is the diagnostic a degradation rung keys on: after repeated
/// same-size rebuilds keep failing, the consistently-blamed rank is the
/// one to shrink the world around.
pub fn attribute_dead_ranks(errors: &[CommError]) -> Vec<usize> {
    let self_reported: Vec<usize> = errors
        .iter()
        .filter_map(|e| match e {
            CommError::RankFailed { rank, observer, .. } if rank == observer => Some(*rank),
            _ => None,
        })
        .collect();
    let mut dead = if self_reported.is_empty() {
        errors.iter().filter_map(|e| e.failed_rank()).collect()
    } else {
        self_reported
    };
    dead.sort_unstable();
    dead.dedup();
    dead
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_world_construction_and_display() {
        let e = CommError::EmptyWorld;
        assert_eq!(e, CommError::EmptyWorld);
        assert_eq!(e.to_string(), "communicator must have at least one rank");
    }

    #[test]
    fn rank_out_of_range_carries_rank_and_size() {
        let e = CommError::RankOutOfRange { rank: 9, size: 4 };
        assert_eq!(e, CommError::RankOutOfRange { rank: 9, size: 4 });
        assert_ne!(e, CommError::RankOutOfRange { rank: 3, size: 4 });
        assert_eq!(e.to_string(), "rank 9 out of range for communicator of size 4");
    }

    #[test]
    fn invalid_group_names_the_outsider() {
        let e = CommError::InvalidGroup { rank: 2 };
        assert_eq!(e.to_string(), "group references rank 2 not present in parent communicator");
    }

    #[test]
    fn rank_failed_names_victim_observer_and_context() {
        let e = CommError::RankFailed {
            rank: 1,
            observer: 3,
            detail: "hung up while rank 3 waited on tag 7".into(),
        };
        assert_eq!(
            e.to_string(),
            "rank 1 failed (observed by rank 3): hung up while rank 3 waited on tag 7"
        );
    }

    #[test]
    fn timeout_carries_the_diagnostic() {
        let e = CommError::Timeout { rank: 0, detail: "deadlock: rank 0 waits on rank 1".into() };
        assert_eq!(e.to_string(), "rank 0 timed out: deadlock: rank 0 waits on rank 1");
    }

    #[test]
    fn corrupt_names_link_seq_and_context() {
        let e = CommError::Corrupt {
            link: (0, 1),
            seq: 42,
            detail: "tag 7: 3 retransmissions, all corrupted".into(),
        };
        assert_eq!(
            e.to_string(),
            "unrepairable corruption on link 0 -> 1 (seq 42): tag 7: 3 retransmissions, \
             all corrupted"
        );
        assert_ne!(e, CommError::Corrupt { link: (0, 1), seq: 43, detail: String::new() });
    }

    #[test]
    fn dead_rank_attribution_prefers_self_reports() {
        let self_report = |rank| CommError::RankFailed { rank, observer: rank, detail: "x".into() };
        let observed =
            |rank, observer| CommError::RankFailed { rank, observer, detail: "x".into() };
        let timeout = CommError::Timeout { rank: 0, detail: "watchdog".into() };
        // Self-reports win over peer observations (a peer may blame the
        // wrong neighbor when the whole world is tearing down).
        let hist =
            vec![observed(1, 3), self_report(2), timeout.clone(), self_report(2), observed(0, 2)];
        assert_eq!(attribute_dead_ranks(&hist), vec![2]);
        // No self-report: fall back to observed victims, deduplicated.
        let hist = vec![observed(3, 0), observed(3, 1), observed(1, 0)];
        assert_eq!(attribute_dead_ranks(&hist), vec![1, 3]);
        // Nothing to attribute.
        assert!(attribute_dead_ranks(&[timeout]).is_empty());
        assert_eq!(observed(4, 0).failed_rank(), Some(4));
        assert_eq!(CommError::EmptyWorld.failed_rank(), None);
    }

    #[test]
    fn errors_are_std_errors() {
        fn takes_err(_: &dyn std::error::Error) {}
        takes_err(&CommError::EmptyWorld);
        takes_err(&CommError::Timeout { rank: 0, detail: String::new() });
    }
}
