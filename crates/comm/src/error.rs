//! Error types for communicator construction and use.
//!
//! Runtime message-passing bugs (tag type mismatches, out-of-range ranks)
//! are programming errors and panic; recoverable configuration problems
//! surface as [`CommError`].

use std::fmt;

/// Errors arising from invalid communicator configuration.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum CommError {
    /// A world or group of zero ranks was requested.
    EmptyWorld,
    /// A rank index was outside `0..size`.
    RankOutOfRange {
        /// The offending rank.
        rank: usize,
        /// The communicator size.
        size: usize,
    },
    /// A sub-communicator group referenced a rank not in the parent.
    InvalidGroup {
        /// The offending parent rank.
        rank: usize,
    },
}

impl fmt::Display for CommError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CommError::EmptyWorld => write!(f, "communicator must have at least one rank"),
            CommError::RankOutOfRange { rank, size } => {
                write!(f, "rank {rank} out of range for communicator of size {size}")
            }
            CommError::InvalidGroup { rank } => {
                write!(f, "group references rank {rank} not present in parent communicator")
            }
        }
    }
}

impl std::error::Error for CommError {}
