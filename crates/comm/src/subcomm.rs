//! `MPI_Comm_split`-style sub-communicators.
//!
//! The distributed convolution algorithms constantly operate on rank
//! subgroups: the spatial group that shares one sample (halo exchanges),
//! the sample group that shares a filter shard (gradient allreduce across
//! `P(p)(D(C), D(F))`, paper §V-A), or channel groups. [`SubComm`] carries
//! an ordered list of parent ranks and translates group-local ranks to
//! parent ranks, so every [`crate::Collectives`] algorithm runs unchanged
//! inside the group.

use std::borrow::Cow;
use std::cell::Cell;

use crate::error::CommError;
use crate::p2p::{sub_collective_tag, CommScalar, Communicator, Tag};
use crate::stats::OpClass;
use crate::Collectives;

/// The pure-geometry half of a [`SubComm`]: the ordered member list, the
/// tag salt, and this rank's position — with no parent communicator
/// borrowed.
///
/// Compiled communication plans cache layouts and [`SubCommLayout::bind`]
/// them to a live communicator on every step; binding is O(1) and
/// allocation-free, whereas [`SubComm::new`] re-validates and re-searches
/// the member list on each call. A freshly bound group starts its
/// collective-tag counter at zero, exactly like a freshly constructed
/// `SubComm`, so bound groups are drop-in bitwise-identical replacements.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SubCommLayout {
    /// Parent ranks of the members, indexed by group rank.
    members: Vec<usize>,
    /// Tag salt; see [`SubComm::new`].
    group_id: u64,
    /// Position of the owning rank within `members`.
    my_index: usize,
}

impl SubCommLayout {
    /// Plan a group layout for rank `me` (a parent rank that must appear
    /// in `members`). Pure geometry: no communication, no parent borrow.
    pub fn new(members: Vec<usize>, group_id: u64, me: usize) -> Result<Self, CommError> {
        if members.is_empty() {
            return Err(CommError::EmptyWorld);
        }
        let my_index =
            members.iter().position(|&m| m == me).ok_or(CommError::InvalidGroup { rank: me })?;
        Ok(SubCommLayout { members, group_id, my_index })
    }

    /// The ordered member list (parent ranks).
    pub fn members(&self) -> &[usize] {
        &self.members
    }

    /// The tag salt binding will use — the schedule verifier simulates
    /// collective tags from it ([`crate::trace::TraceRecorder`]).
    pub fn group_id(&self) -> u64 {
        self.group_id
    }

    /// Bind the layout to a live parent communicator for one use.
    ///
    /// # Panics
    /// Debug-asserts that `parent.rank()` is the rank the layout was
    /// planned for and that all members fit in the parent world.
    pub fn bind<'a, C: Communicator>(&'a self, parent: &'a C) -> SubComm<'a, C> {
        debug_assert_eq!(
            self.members[self.my_index],
            parent.rank(),
            "sub-communicator layout bound on a rank it was not planned for"
        );
        debug_assert!(self.members.iter().all(|&m| m < parent.size()));
        SubComm {
            parent,
            members: Cow::Borrowed(&self.members),
            my_index: self.my_index,
            tag_salt: self.group_id,
            counter: Cell::new(0),
        }
    }
}

/// A communicator over an ordered subset of a parent communicator's ranks.
pub struct SubComm<'a, C: Communicator> {
    parent: &'a C,
    /// Parent ranks of the members, indexed by group rank. Owned when the
    /// group is built ad hoc, borrowed when bound from a cached
    /// [`SubCommLayout`].
    members: Cow<'a, [usize]>,
    /// This rank's position within `members`.
    my_index: usize,
    /// Distinguishes tags of different sub-communicators built over the
    /// same parent, so concurrent collectives in sibling groups never
    /// cross-match.
    tag_salt: u64,
    counter: Cell<u64>,
}

impl<'a, C: Communicator> SubComm<'a, C> {
    /// Build a sub-communicator from an explicit, ordered member list.
    ///
    /// Every member must call this **collectively in the same program
    /// order** with an identical `members` list containing its own parent
    /// rank. Ranks not in `members` must not call it (they get no handle).
    ///
    /// The `group_id` must be identical across members and unique among
    /// sub-communicators that are in flight simultaneously; the
    /// deterministic layouts used by `fg-tensor` derive it from the group's
    /// position in the process grid.
    pub fn new(parent: &'a C, members: Vec<usize>, group_id: u64) -> Result<Self, CommError> {
        if members.is_empty() {
            return Err(CommError::EmptyWorld);
        }
        for &m in &members {
            if m >= parent.size() {
                return Err(CommError::RankOutOfRange { rank: m, size: parent.size() });
            }
        }
        let my_index = members
            .iter()
            .position(|&m| m == parent.rank())
            .ok_or(CommError::InvalidGroup { rank: parent.rank() })?;
        Ok(SubComm {
            parent,
            members: Cow::Owned(members),
            my_index,
            tag_salt: group_id,
            counter: Cell::new(0),
        })
    }

    /// Split the parent by `(color, key)`, like `MPI_Comm_split`: ranks
    /// with equal `color` form a group, ordered by `(key, parent rank)`.
    /// Collective over the parent.
    pub fn split(parent: &'a C, color: u64, key: u64) -> Self {
        let triples = parent.allgatherv(vec![color, key, parent.rank() as u64]);
        let mut mine: Vec<(u64, u64)> = Vec::new();
        for t in &triples {
            if t[0] == color {
                mine.push((t[1], t[2]));
            }
        }
        mine.sort_unstable();
        let members: Vec<usize> = mine.iter().map(|&(_, r)| r as usize).collect();
        // Color is agreed by all members, so it doubles as the tag salt.
        SubComm::new(parent, members, color).expect("split produced a valid group")
    }

    /// Parent rank of group rank `r`.
    pub fn to_parent(&self, r: usize) -> usize {
        self.members[r]
    }

    /// The ordered member list (parent ranks).
    pub fn members(&self) -> &[usize] {
        &self.members
    }

    /// Borrow the parent communicator.
    pub fn parent(&self) -> &C {
        self.parent
    }
}

impl<C: Communicator> Communicator for SubComm<'_, C> {
    fn rank(&self) -> usize {
        self.my_index
    }

    fn size(&self) -> usize {
        self.members.len()
    }

    fn send<T: CommScalar>(&self, dst: usize, tag: Tag, data: Vec<T>) {
        self.parent.send(self.members[dst], tag, data);
    }

    fn recv<T: CommScalar>(&self, src: usize, tag: Tag) -> Vec<T> {
        self.parent.recv(self.members[src], tag)
    }

    fn record(&self, class: OpClass, messages: u64, bytes: u64) {
        self.parent.record(class, messages, bytes);
    }

    fn note_dropped_send(&self, dst: usize) {
        self.parent.note_dropped_send(self.members[dst]);
    }

    fn note_retransmit(&self) {
        self.parent.note_retransmit();
    }

    fn note_corrupt_repaired(&self) {
        self.parent.note_corrupt_repaired();
    }

    fn note_replay_held(&self, bytes: u64) {
        self.parent.note_replay_held(bytes);
    }

    fn stats_snapshot(&self) -> Option<crate::stats::TrafficStats> {
        self.parent.stats_snapshot()
    }

    fn busy_nanos(&self) -> u64 {
        self.parent.busy_nanos()
    }

    fn note_straggler_flag(&self) {
        self.parent.note_straggler_flag();
    }

    fn note_rank_slowness(&self, ratios: &[f64]) {
        self.parent.note_rank_slowness(ratios);
    }

    fn next_collective_tag(&self) -> Tag {
        let c = self.counter.get();
        self.counter.set(c + 1);
        // Disjoint from both user tags and the parent's collective tags:
        // bit 61 marks subgroup traffic, the salt separates sibling groups.
        sub_collective_tag(self.tag_salt, c)
    }

    fn with_class<R>(&self, class: OpClass, f: impl FnOnce() -> R) -> R {
        self.parent.with_class(class, f)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::collectives::ReduceOp;
    use crate::runtime::run_ranks;

    #[test]
    fn new_rejects_bad_groups() {
        run_ranks(2, |comm| {
            assert_eq!(SubComm::new(comm, vec![], 0).err(), Some(CommError::EmptyWorld));
            assert_eq!(
                SubComm::new(comm, vec![0, 5], 0).err(),
                Some(CommError::RankOutOfRange { rank: 5, size: 2 })
            );
            if comm.rank() == 0 {
                assert_eq!(
                    SubComm::new(comm, vec![1], 0).err(),
                    Some(CommError::InvalidGroup { rank: 0 })
                );
            }
        });
    }

    #[test]
    fn split_groups_by_color_and_orders_by_key() {
        let out = run_ranks(6, |comm| {
            // Colors: {0,2,4} and {1,3,5}; key reverses order within group.
            let color = (comm.rank() % 2) as u64;
            let key = (10 - comm.rank()) as u64;
            let sub = SubComm::split(comm, color, key);
            (sub.members().to_vec(), sub.rank())
        });
        assert_eq!(out[0].0, vec![4, 2, 0]);
        assert_eq!(out[0].1, 2);
        assert_eq!(out[4].1, 0);
        assert_eq!(out[1].0, vec![5, 3, 1]);
    }

    #[test]
    fn collectives_work_within_groups() {
        let out = run_ranks(8, |comm| {
            // Two groups of four; sum ranks within each.
            let color = (comm.rank() / 4) as u64;
            let sub = SubComm::split(comm, color, comm.rank() as u64);
            sub.allreduce(&[comm.rank() as f64], ReduceOp::Sum)[0]
        });
        assert_eq!(&out[..4], &[6.0; 4]);
        assert_eq!(&out[4..], &[22.0; 4]);
    }

    #[test]
    fn sibling_groups_do_not_cross_talk() {
        // Different collectives run concurrently in sibling groups with
        // overlapping message schedules; salts keep tags distinct.
        let out = run_ranks(4, |comm| {
            let color = (comm.rank() % 2) as u64;
            let sub = SubComm::split(comm, color, 0);
            let a = sub.allreduce(&[1.0f32], ReduceOp::Sum)[0];
            let b = sub.allreduce(&[comm.rank() as f32], ReduceOp::Max)[0];
            (a, b)
        });
        assert_eq!(out[0], (2.0, 2.0));
        assert_eq!(out[1], (2.0, 3.0));
        assert_eq!(out[2], (2.0, 2.0));
        assert_eq!(out[3], (2.0, 3.0));
    }

    #[test]
    fn nested_subcomms() {
        let out = run_ranks(8, |comm| {
            let half = SubComm::split(comm, (comm.rank() / 4) as u64, comm.rank() as u64);
            let quarter = SubComm::split(&half, (half.rank() / 2) as u64, half.rank() as u64);
            quarter.allreduce(&[comm.rank() as u64], ReduceOp::Sum)[0]
        });
        assert_eq!(out, vec![1, 1, 5, 5, 9, 9, 13, 13]);
    }

    #[test]
    fn bound_layout_matches_fresh_subcomm() {
        // A cached layout bound each "step" must behave exactly like a
        // SubComm constructed from scratch each step.
        let out = run_ranks(4, |comm| {
            let members: Vec<usize> = if comm.rank() % 2 == 0 { vec![0, 2] } else { vec![1, 3] };
            let layout =
                SubCommLayout::new(members.clone(), (comm.rank() % 2) as u64, comm.rank()).unwrap();
            let mut bound_sums = Vec::new();
            let mut fresh_sums = Vec::new();
            for step in 0..3 {
                let sub = layout.bind(comm);
                bound_sums.push(sub.allreduce(&[(comm.rank() + step) as f64], ReduceOp::Sum)[0]);
                let fresh = SubComm::new(comm, members.clone(), (comm.rank() % 2) as u64).unwrap();
                fresh_sums.push(fresh.allreduce(&[(comm.rank() + step) as f64], ReduceOp::Sum)[0]);
            }
            (bound_sums, fresh_sums)
        });
        for (bound, fresh) in &out {
            assert_eq!(bound, fresh);
        }
    }

    #[test]
    fn layout_rejects_nonmember_rank() {
        assert_eq!(
            SubCommLayout::new(vec![0, 2], 0, 1).err(),
            Some(CommError::InvalidGroup { rank: 1 })
        );
        assert_eq!(SubCommLayout::new(vec![], 0, 0).err(), Some(CommError::EmptyWorld));
    }

    #[test]
    fn p2p_rank_translation() {
        let out = run_ranks(4, |comm| {
            // Group of the two odd ranks: {1, 3}.
            if comm.rank() % 2 == 1 {
                let sub = SubComm::new(comm, vec![1, 3], 7).unwrap();
                if sub.rank() == 0 {
                    sub.send(1, 5, vec![99u32]);
                    0
                } else {
                    sub.recv::<u32>(0, 5)[0]
                }
            } else {
                0
            }
        });
        assert_eq!(out[3], 99);
    }
}
