//! Object-safe dynamic dispatch over [`Communicator`].
//!
//! The plan-driven executor in `fg-core` stores its layers as
//! `Box<dyn DistLayer>`, which means layer methods cannot be generic over
//! the communicator type — generic methods make a trait non-object-safe.
//! This module closes the loop:
//!
//! * [`DynComm`] is the object-safe subset of [`Communicator`], provided
//!   for **every** concrete communicator by a blanket impl that moves
//!   payloads as `Box<dyn Any>` (no serialization, same as the channels
//!   underneath);
//! * [`ErasedComm`] is a concrete, `Copy` handle wrapping a
//!   `&dyn DynComm` that implements the full generic [`Communicator`]
//!   trait again, so halo exchanges, shuffles, sub-communicators and all
//!   [`crate::Collectives`] algorithms run unchanged on top of it.
//!
//! Because every erased send/recv bottoms out in the concrete
//! communicator's own methods, tag allocation, FIFO ordering, and traffic
//! accounting are bitwise-identical to direct generic calls; the only
//! cost is one small box per message.

use std::any::{Any, TypeId};

use crate::p2p::{CommScalar, Communicator, Tag};
use crate::stats::OpClass;

/// The closed set of scalar types that may cross the type-erased
/// boundary — exactly the [`CommScalar`] impls in `p2p`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ScalarType {
    F32,
    F64,
    U8,
    U32,
    U64,
    I32,
    I64,
    Usize,
    UsizePair,
}

impl ScalarType {
    /// The wire-type tag for `T`.
    ///
    /// # Panics
    /// Panics if `T` is a [`CommScalar`] impl this module does not know
    /// about (adding one requires extending the dispatch tables here).
    pub fn of<T: CommScalar>() -> ScalarType {
        let id = TypeId::of::<T>();
        if id == TypeId::of::<f32>() {
            ScalarType::F32
        } else if id == TypeId::of::<f64>() {
            ScalarType::F64
        } else if id == TypeId::of::<u8>() {
            ScalarType::U8
        } else if id == TypeId::of::<u32>() {
            ScalarType::U32
        } else if id == TypeId::of::<u64>() {
            ScalarType::U64
        } else if id == TypeId::of::<i32>() {
            ScalarType::I32
        } else if id == TypeId::of::<i64>() {
            ScalarType::I64
        } else if id == TypeId::of::<usize>() {
            ScalarType::Usize
        } else if id == TypeId::of::<(usize, usize)>() {
            ScalarType::UsizePair
        } else {
            panic!("scalar type is not registered with the dynamic communicator");
        }
    }
}

/// Object-safe subset of [`Communicator`], implemented for every concrete
/// communicator by the blanket impl below. Use [`ErasedComm`] to get the
/// full generic trait back from a `&dyn DynComm`.
pub trait DynComm {
    /// See [`Communicator::rank`].
    fn erased_rank(&self) -> usize;
    /// See [`Communicator::size`].
    fn erased_size(&self) -> usize;
    /// Type-erased [`Communicator::send`]; `data` must be a `Vec<T>` of a
    /// [`CommScalar`] wire type.
    fn send_erased(&self, dst: usize, tag: Tag, data: Box<dyn Any + Send>);
    /// Type-erased [`Communicator::recv`]; returns a boxed `Vec<T>` of the
    /// requested wire type.
    fn recv_erased(&self, src: usize, tag: Tag, ty: ScalarType) -> Box<dyn Any + Send>;
    /// See [`Communicator::record`].
    fn erased_record(&self, class: OpClass, messages: u64, bytes: u64);
    /// See [`Communicator::next_collective_tag`].
    fn erased_next_collective_tag(&self) -> Tag;
    /// Object-safe form of [`Communicator::with_class`]: runs `f` once
    /// with sends attributed to `class`.
    fn class_scope(&self, class: OpClass, f: &mut dyn FnMut());
}

impl<C: Communicator> DynComm for C {
    fn erased_rank(&self) -> usize {
        Communicator::rank(self)
    }

    fn erased_size(&self) -> usize {
        Communicator::size(self)
    }

    fn send_erased(&self, dst: usize, tag: Tag, data: Box<dyn Any + Send>) {
        let mut data = data;
        macro_rules! try_type {
            ($t:ty) => {
                data = match data.downcast::<Vec<$t>>() {
                    Ok(v) => return self.send(dst, tag, *v),
                    Err(other) => other,
                };
            };
        }
        try_type!(f32);
        try_type!(f64);
        try_type!(u8);
        try_type!(u32);
        try_type!(u64);
        try_type!(i32);
        try_type!(i64);
        try_type!(usize);
        try_type!((usize, usize));
        let _ = data;
        panic!("payload is not a Vec of a CommScalar wire type");
    }

    fn recv_erased(&self, src: usize, tag: Tag, ty: ScalarType) -> Box<dyn Any + Send> {
        match ty {
            ScalarType::F32 => Box::new(self.recv::<f32>(src, tag)),
            ScalarType::F64 => Box::new(self.recv::<f64>(src, tag)),
            ScalarType::U8 => Box::new(self.recv::<u8>(src, tag)),
            ScalarType::U32 => Box::new(self.recv::<u32>(src, tag)),
            ScalarType::U64 => Box::new(self.recv::<u64>(src, tag)),
            ScalarType::I32 => Box::new(self.recv::<i32>(src, tag)),
            ScalarType::I64 => Box::new(self.recv::<i64>(src, tag)),
            ScalarType::Usize => Box::new(self.recv::<usize>(src, tag)),
            ScalarType::UsizePair => Box::new(self.recv::<(usize, usize)>(src, tag)),
        }
    }

    fn erased_record(&self, class: OpClass, messages: u64, bytes: u64) {
        Communicator::record(self, class, messages, bytes);
    }

    fn erased_next_collective_tag(&self) -> Tag {
        Communicator::next_collective_tag(self)
    }

    fn class_scope(&self, class: OpClass, f: &mut dyn FnMut()) {
        self.with_class(class, f);
    }
}

/// A concrete [`Communicator`] over any [`DynComm`] trait object.
///
/// `Copy`, so it can be passed by value or reference anywhere a generic
/// communicator is expected.
#[derive(Clone, Copy)]
pub struct ErasedComm<'a> {
    inner: &'a dyn DynComm,
}

impl<'a> ErasedComm<'a> {
    /// Erase a concrete communicator.
    pub fn new<C: Communicator>(comm: &'a C) -> ErasedComm<'a> {
        ErasedComm { inner: comm }
    }

    /// Wrap an existing trait object.
    pub fn from_dyn(inner: &'a dyn DynComm) -> ErasedComm<'a> {
        ErasedComm { inner }
    }
}

impl std::fmt::Debug for ErasedComm<'_> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ErasedComm")
            .field("rank", &self.inner.erased_rank())
            .field("size", &self.inner.erased_size())
            .finish()
    }
}

impl Communicator for ErasedComm<'_> {
    fn rank(&self) -> usize {
        self.inner.erased_rank()
    }

    fn size(&self) -> usize {
        self.inner.erased_size()
    }

    fn send<T: CommScalar>(&self, dst: usize, tag: Tag, data: Vec<T>) {
        self.inner.send_erased(dst, tag, Box::new(data));
    }

    fn recv<T: CommScalar>(&self, src: usize, tag: Tag) -> Vec<T> {
        *self
            .inner
            .recv_erased(src, tag, ScalarType::of::<T>())
            .downcast::<Vec<T>>()
            .expect("erased receive returned the requested wire type")
    }

    fn record(&self, class: OpClass, messages: u64, bytes: u64) {
        self.inner.erased_record(class, messages, bytes);
    }

    fn next_collective_tag(&self) -> Tag {
        self.inner.erased_next_collective_tag()
    }

    fn with_class<R>(&self, class: OpClass, f: impl FnOnce() -> R) -> R {
        let mut f = Some(f);
        let mut out = None;
        self.inner.class_scope(class, &mut || {
            out = Some((f.take().expect("class_scope runs its body exactly once"))());
        });
        out.expect("class_scope ran its body")
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::collectives::{Collectives, ReduceOp};
    use crate::runtime::{run_ranks, run_ranks_with_stats};
    use crate::subcomm::SubComm;

    #[test]
    fn erased_p2p_roundtrip_all_types() {
        let out = run_ranks(2, |comm| {
            let e = ErasedComm::new(comm);
            if comm.rank() == 0 {
                e.send(1, 1, vec![1.5f32]);
                e.send(1, 2, vec![2.5f64]);
                e.send(1, 3, vec![3u8]);
                e.send(1, 4, vec![(7usize, 9usize)]);
                0.0
            } else {
                let a = e.recv::<f32>(0, 1)[0] as f64;
                let b = e.recv::<f64>(0, 2)[0];
                let c = e.recv::<u8>(0, 3)[0] as f64;
                let (x, y) = e.recv::<(usize, usize)>(0, 4)[0];
                a + b + c + (x * y) as f64
            }
        });
        assert_eq!(out[1], 1.5 + 2.5 + 3.0 + 63.0);
    }

    #[test]
    fn collectives_run_on_erased_comm() {
        let out = run_ranks(4, |comm| {
            let e = ErasedComm::new(comm);
            e.allreduce(&[comm.rank() as f32], ReduceOp::Sum)[0]
        });
        assert_eq!(out, vec![6.0; 4]);
    }

    #[test]
    fn subcomm_over_erased_comm() {
        let out = run_ranks(4, |comm| {
            let e = ErasedComm::new(comm);
            let sub = SubComm::split(&e, (comm.rank() % 2) as u64, comm.rank() as u64);
            sub.allreduce(&[comm.rank() as f64], ReduceOp::Sum)[0]
        });
        assert_eq!(out, vec![2.0, 4.0, 2.0, 4.0]);
    }

    #[test]
    fn erased_traffic_matches_direct_traffic() {
        let run = |erase: bool| {
            run_ranks_with_stats(4, move |comm| {
                if erase {
                    let e = ErasedComm::new(comm);
                    e.allreduce(&vec![1.0f32; 64], ReduceOp::Sum);
                } else {
                    comm.allreduce(&vec![1.0f32; 64], ReduceOp::Sum);
                }
            })
        };
        let direct = run(false);
        let erased = run(true);
        for ((_, d), (_, e)) in direct.iter().zip(&erased) {
            assert_eq!(d.total_bytes(), e.total_bytes());
            assert_eq!(d.total_messages(), e.total_messages());
        }
    }
}
