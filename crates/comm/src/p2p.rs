//! Point-to-point messaging primitives and the [`Communicator`] trait.
//!
//! Semantics mirror MPI two-sided communication:
//!
//! * messages between a fixed (source, destination) pair are delivered in
//!   send order (per-pair FIFO, one unbounded channel per ordered pair);
//! * receives match on `(source, tag)`; non-matching messages are stashed
//!   and re-examined by later receives, so out-of-order tag consumption
//!   works exactly as with MPI message envelopes;
//! * sends never block (the channel is unbounded), which models eager /
//!   buffered MPI sends and makes `sendrecv` cycles deadlock-free.

use std::any::Any;
use std::collections::VecDeque;

use crate::stats::OpClass;

/// Message tag. User tags must be below [`Tag::RESERVED_BASE`]; the
/// collective implementations draw tags from the reserved space.
pub type Tag = u64;

/// First tag value reserved for internal (collective) protocol use.
pub const RESERVED_TAG_BASE: Tag = 1 << 62;

/// The tag a world-scope collective draws for per-rank counter value
/// `counter` — the single source of the formula `WorldComm` uses, shared
/// with the static schedule verifier's tag simulation
/// ([`crate::trace::TraceRecorder`]).
pub const fn world_collective_tag(counter: u64) -> Tag {
    RESERVED_TAG_BASE + counter
}

/// The tag a sub-communicator collective draws: salted by the group id
/// (bit 61 separates the sub-communicator tag space from the world's)
/// with a per-bind counter in the low bits. Single source of the formula
/// `SubComm` uses, shared with the verifier's tag simulation.
pub const fn sub_collective_tag(tag_salt: u64, counter: u64) -> Tag {
    RESERVED_TAG_BASE | (1 << 61) | (tag_salt << 32) | counter
}

/// Scalar element types that can travel through the communicator.
///
/// The bound is deliberately broad: payloads are moved as boxed `Vec<T>`
/// within the process, so no serialization is involved and any `'static`
/// `Copy` type qualifies. `WIDTH` is the wire width in bytes used for
/// traffic accounting (and hence for α–β time modeling).
///
/// **Adding a scalar type:** do not write an `impl` by hand — add one
/// line to [`for_each_comm_scalar!`] below. The macro generates this
/// impl, the [`crate::dynamic::ScalarType`] dispatch tables, and the
/// exhaustiveness tests in one stroke, so the type-erased path can never
/// silently lag behind the generic one.
pub trait CommScalar: Copy + Send + 'static {
    /// Bytes per element on the modeled wire.
    const WIDTH: usize = std::mem::size_of::<Self>();

    /// Deterministically flip bits of `self` under a nonzero `mask` —
    /// the payload-corruption primitive of the fault model
    /// ([`crate::fault::FaultPlan`]). Must return a value different from
    /// `self` for every mask, so injected corruption is always
    /// observable.
    fn corrupt(self, mask: u64) -> Self;

    /// The value's bit pattern as a `u64`, fed into the end-to-end
    /// payload checksum ([`crate::integrity`]). Must be injective on the
    /// bits `corrupt` can touch, so every injected corruption changes
    /// the checksum.
    fn checksum_bits(self) -> u64;
}

/// The single authoritative list of wire scalar types. Invokes the
/// callback macro once per scalar with `(type, ScalarType variant,
/// corruption expression, checksum-bits expression)`. Everything that
/// must stay in sync with the set of [`CommScalar`] impls — the impls
/// themselves, the [`crate::dynamic::ScalarType`] dispatch tables, and
/// the exhaustive round-trip test — is generated from this list;
/// extending it is the only supported way to add a scalar.
macro_rules! for_each_comm_scalar {
    ($m:ident) => {
        $m!(f32, F32, |x: f32, m: u64| f32::from_bits(x.to_bits() ^ ((m as u32) | 1)), |x: f32| x
            .to_bits()
            as u64);
        $m!(f64, F64, |x: f64, m: u64| f64::from_bits(x.to_bits() ^ (m | 1)), |x: f64| x.to_bits());
        $m!(u8, U8, |x: u8, m: u64| x ^ ((m as u8) | 1), |x: u8| x as u64);
        $m!(u32, U32, |x: u32, m: u64| x ^ ((m as u32) | 1), |x: u32| x as u64);
        $m!(u64, U64, |x: u64, m: u64| x ^ (m | 1), |x: u64| x);
        $m!(i32, I32, |x: i32, m: u64| x ^ ((m as i32) | 1), |x: i32| x as u32 as u64);
        $m!(i64, I64, |x: i64, m: u64| x ^ ((m as i64) | 1), |x: i64| x as u64);
        $m!(usize, Usize, |x: usize, m: u64| x ^ ((m as usize) | 1), |x: usize| x as u64);
        $m!(
            (usize, usize),
            UsizePair,
            |x: (usize, usize), m: u64| (x.0 ^ ((m as usize) | 1), x.1),
            |x: (usize, usize)| (x.0 as u64).wrapping_mul(0x9e37_79b9_7f4a_7c15) ^ (x.1 as u64)
        );
    };
}
pub(crate) use for_each_comm_scalar;

macro_rules! impl_comm_scalar {
    ($t:ty, $v:ident, $corrupt:expr, $bits:expr) => {
        impl CommScalar for $t {
            fn corrupt(self, mask: u64) -> Self {
                #[allow(clippy::redundant_closure_call)]
                ($corrupt)(self, mask)
            }

            fn checksum_bits(self) -> u64 {
                #[allow(clippy::redundant_closure_call)]
                ($bits)(self)
            }
        }
    };
}
for_each_comm_scalar!(impl_comm_scalar);

/// The integrity envelope riding on a message: a per-(link, tag) stream
/// sequence number and an end-to-end payload checksum, both assigned by
/// the sender *before* anything (fault injection, a real NIC) can touch
/// the payload. See [`crate::integrity`] for the protocol.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct WireHeader {
    /// Position of this message in its `(src, dst, tag)` stream, from 0.
    pub seq: u64,
    /// FNV-1a over `(tag, seq, len, element bits)` of the pristine
    /// payload; see [`crate::integrity::checksum_payload`].
    pub checksum: u64,
}

/// A message in flight: tag, payload (a boxed `Vec<T>`), its modeled
/// wire size in bytes, and its virtual-time arrival stamp.
pub(crate) struct Envelope {
    pub tag: Tag,
    pub payload: Box<dyn Any + Send>,
    /// Modeled wire size; accounted on the send side (MPI convention),
    /// carried for debugging.
    #[allow(dead_code)]
    pub bytes: usize,
    /// Virtual time at which the message arrives at the receiver
    /// (sender clock at send + modeled link time); 0 when the world is
    /// not running under a virtual clock.
    pub arrival: f64,
    /// Integrity envelope (sequence number + checksum); `None` when the
    /// sender did not run the integrity layer.
    pub header: Option<WireHeader>,
}

/// Per-source stash of messages received ahead of a matching `recv`.
#[derive(Default)]
pub(crate) struct Stash {
    pending: VecDeque<Envelope>,
}

impl Stash {
    /// Remove and return the first stashed envelope with `tag`, if any.
    pub fn take(&mut self, tag: Tag) -> Option<Envelope> {
        let idx = self.pending.iter().position(|e| e.tag == tag)?;
        self.pending.remove(idx)
    }

    /// Stash an envelope that did not match the current receive.
    pub fn put(&mut self, env: Envelope) {
        self.pending.push_back(env);
    }

    /// Number of stashed messages (used by shutdown assertions in tests).
    #[cfg(test)]
    pub fn len(&self) -> usize {
        self.pending.len()
    }
}

/// Two-sided message passing within a group of ranks.
///
/// Implemented by [`crate::WorldComm`] (the whole world) and
/// [`crate::SubComm`] (an `MPI_Comm_split`-style subgroup). All collective
/// operations ([`crate::Collectives`]) are provided generically on top of
/// this trait, so they work identically on worlds and subgroups.
pub trait Communicator {
    /// This rank's index within the communicator, in `0..size()`.
    fn rank(&self) -> usize;

    /// Number of ranks in the communicator.
    fn size(&self) -> usize;

    /// Send `data` to `dst` with `tag`. Never blocks.
    fn send<T: CommScalar>(&self, dst: usize, tag: Tag, data: Vec<T>);

    /// Blockingly receive a message from `src` carrying `tag`.
    ///
    /// # Panics
    /// Panics if the matching message's element type is not `T`; that is
    /// a protocol bug on the caller's side.
    fn recv<T: CommScalar>(&self, src: usize, tag: Tag) -> Vec<T>;

    /// Record a collective's contribution to this rank's traffic stats.
    fn record(&self, class: OpClass, messages: u64, bytes: u64);

    /// Record that one send to `dst` was dropped instead of delivered
    /// (the receiver is gone, or fault injection ate the message). The
    /// default is a no-op; [`crate::WorldComm`] counts it in
    /// [`crate::TrafficStats`] and surfaces it in watchdog diagnostics,
    /// and wrappers delegate.
    fn note_dropped_send(&self, dst: usize) {
        let _ = dst;
    }

    /// Record one retransmission on this rank (a dropped message resent
    /// at the link layer, or a replay-window pull after a checksum
    /// mismatch). Default no-op; [`crate::WorldComm`] counts it in
    /// [`crate::TrafficStats`] and watchdog diagnostics, wrappers
    /// delegate.
    fn note_retransmit(&self) {}

    /// Record one corrupted message that the integrity layer detected
    /// and repaired on this rank. Default no-op; [`crate::WorldComm`]
    /// counts it in [`crate::TrafficStats`] and watchdog diagnostics,
    /// wrappers delegate.
    fn note_corrupt_repaired(&self) {}

    /// Record `nanos` of wall time this rank spent stalled in
    /// receiver-side integrity repair (first checksum mismatch to
    /// accepted retransmission). Default no-op; [`crate::WorldComm`]
    /// accumulates it in [`crate::TrafficStats`], wrappers delegate —
    /// this is how a resilient driver reports rung-1 wall time without
    /// instrumenting the training loop.
    fn note_repair_time(&self, nanos: u64) {
        let _ = nanos;
    }

    /// Report that the sender-side integrity replay window holds `bytes`
    /// of staged payloads after this rank's latest send — a gauge, not a
    /// counter. Default no-op; [`crate::WorldComm`] keeps the high-water
    /// mark in [`crate::TrafficStats`] (the observable counterpart of
    /// the static memory analyzer's comm-staging term), wrappers
    /// delegate.
    fn note_replay_held(&self, bytes: u64) {
        let _ = bytes;
    }

    /// A snapshot of this rank's traffic counters, if the communicator
    /// keeps them. Default `None`; [`crate::WorldComm`] returns its
    /// stats and wrappers delegate, so generic drivers (e.g. the
    /// resilient trainer) can report repair telemetry without knowing
    /// the concrete wrapper stack.
    fn stats_snapshot(&self) -> Option<crate::stats::TrafficStats> {
        None
    }

    /// Record one straggler verdict against this rank (the detector
    /// agreed this rank is persistently slow). Default no-op;
    /// [`crate::WorldComm`] counts it in [`crate::TrafficStats`],
    /// wrappers delegate.
    fn note_straggler_flag(&self) {}

    /// Publish the straggler detector's per-rank slowness ratios
    /// (step-time EMA over world median, 1.0 = healthy) so the deadlock
    /// watchdog can annotate its wait graph — "waiting on rank 3, which
    /// is 4× slow" reads very differently from "deadlocked". Default
    /// no-op; [`crate::WorldComm`] forwards to its monitor, wrappers
    /// delegate.
    fn note_rank_slowness(&self, ratios: &[f64]) {
        let _ = ratios;
    }

    /// Nanoseconds this rank has spent *outside* the communicator —
    /// compute time between communication operations, excluding time
    /// blocked in receives. Default 0; [`crate::WorldComm`] measures it
    /// (each op entry accrues the gap since the previous op returned)
    /// and wrappers delegate. This is the per-rank step-time signal the
    /// straggler detector feeds on: a gray-failed rank's compute gaps
    /// stretch while healthy peers' stay flat.
    fn busy_nanos(&self) -> u64 {
        0
    }

    /// Send `data` carrying an integrity envelope. The default drops the
    /// envelope (plain send), which is correct for communicators that
    /// never sit under the integrity layer; [`crate::WorldComm`] carries
    /// the header through its channels, and [`crate::fault::FaultyComm`]
    /// overrides this to apply faults *after* the envelope is attached —
    /// so injected corruption is detectable and injected drops are
    /// repaired by link-layer retransmission.
    fn send_enveloped<T: CommScalar>(
        &self,
        dst: usize,
        tag: Tag,
        data: Vec<T>,
        header: WireHeader,
    ) {
        let _ = header;
        self.send(dst, tag, data);
    }

    /// Receive a message together with its integrity envelope, if the
    /// sender attached one. The default performs a plain receive and
    /// reports no envelope.
    fn recv_enveloped<T: CommScalar>(&self, src: usize, tag: Tag) -> (Vec<T>, Option<WireHeader>) {
        (self.recv(src, tag), None)
    }

    /// Combined send + receive, deadlock-free because sends are eager.
    ///
    /// Sends `data` to `dst` and receives one message from `src`, both
    /// under `tag`. This is the workhorse of halo exchanges and the ring
    /// and recursive-doubling collectives.
    fn sendrecv<T: CommScalar>(&self, dst: usize, src: usize, tag: Tag, data: Vec<T>) -> Vec<T> {
        self.send(dst, tag, data);
        self.recv(src, tag)
    }

    /// Allocate a fresh tag in the reserved space for one collective call.
    ///
    /// All ranks of a communicator must invoke collectives in the same
    /// order (the usual MPI requirement), so per-rank counters agree.
    fn next_collective_tag(&self) -> Tag;

    /// Run `f` with sends attributed to `class` in the traffic stats.
    /// The default implementation performs no attribution; the world
    /// communicator overrides it, and sub-communicators delegate to their
    /// parent.
    fn with_class<R>(&self, class: OpClass, f: impl FnOnce() -> R) -> R
    where
        Self: Sized,
    {
        let _ = class;
        f()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn corruption_always_changes_the_value() {
        // The `| 1` in every corruption expression guarantees an
        // observable change even for mask 0.
        for mask in [0u64, 1, 0xdead_beef, u64::MAX] {
            assert_ne!(1.5f32.corrupt(mask).to_bits(), 1.5f32.to_bits());
            assert_ne!(2.5f64.corrupt(mask).to_bits(), 2.5f64.to_bits());
            assert_ne!(7u8.corrupt(mask), 7);
            assert_ne!(7u32.corrupt(mask), 7);
            assert_ne!(7u64.corrupt(mask), 7);
            assert_ne!((-7i32).corrupt(mask), -7);
            assert_ne!((-7i64).corrupt(mask), -7);
            assert_ne!(7usize.corrupt(mask), 7);
            assert_ne!((1usize, 2usize).corrupt(mask), (1, 2));
        }
    }

    #[test]
    fn corruption_is_deterministic() {
        assert_eq!(3.25f32.corrupt(42).to_bits(), 3.25f32.corrupt(42).to_bits());
        assert_eq!(99u64.corrupt(7), 99u64.corrupt(7));
    }

    #[test]
    fn checksum_bits_differ_after_corruption() {
        // The checksum feed must see every injected corruption: for each
        // scalar, corrupting changes `checksum_bits`.
        for mask in [0u64, 1, 0xdead_beef, u64::MAX] {
            assert_ne!(1.5f32.corrupt(mask).checksum_bits(), 1.5f32.checksum_bits());
            assert_ne!(2.5f64.corrupt(mask).checksum_bits(), 2.5f64.checksum_bits());
            assert_ne!(7u8.corrupt(mask).checksum_bits(), 7u8.checksum_bits());
            assert_ne!(7u32.corrupt(mask).checksum_bits(), 7u32.checksum_bits());
            assert_ne!(7u64.corrupt(mask).checksum_bits(), 7u64.checksum_bits());
            assert_ne!((-7i32).corrupt(mask).checksum_bits(), (-7i32).checksum_bits());
            assert_ne!((-7i64).corrupt(mask).checksum_bits(), (-7i64).checksum_bits());
            assert_ne!(7usize.corrupt(mask).checksum_bits(), 7usize.checksum_bits());
            assert_ne!((1usize, 2usize).corrupt(mask).checksum_bits(), (1, 2).checksum_bits());
        }
    }

    fn plain(tag: Tag, payload: Vec<f32>) -> Envelope {
        Envelope { tag, payload: Box::new(payload), bytes: 4, arrival: 0.0, header: None }
    }

    #[test]
    fn stash_matches_by_tag_in_fifo_order() {
        let mut s = Stash::default();
        s.put(plain(7, vec![1f32]));
        s.put(plain(9, vec![2f32]));
        s.put(plain(7, vec![3f32]));
        let first = s.take(7).expect("tag 7 present");
        assert_eq!(*first.payload.downcast::<Vec<f32>>().unwrap(), vec![1f32]);
        let nine = s.take(9).expect("tag 9 present");
        assert_eq!(*nine.payload.downcast::<Vec<f32>>().unwrap(), vec![2f32]);
        let second = s.take(7).expect("second tag 7 present");
        assert_eq!(*second.payload.downcast::<Vec<f32>>().unwrap(), vec![3f32]);
        assert!(s.take(7).is_none());
        assert_eq!(s.len(), 0);
    }
}
