//! End-to-end message integrity: checksummed, sequence-numbered
//! envelopes with a bounded NACK/retransmit protocol.
//!
//! At scale, transient link faults and silent payload corruption are
//! statistically certain over a long training run, and a single flipped
//! bit in a halo exchange or allreduce fragment poisons every downstream
//! gradient. This module gives the substrate TCP-like delivery semantics
//! at the p2p boundary, so every collective inherits detection and
//! repair for free — exactly as they inherit injected faults from
//! [`crate::fault::FaultyComm`]:
//!
//! * **Envelope.** Before a payload can be touched by anything below the
//!   integrity layer (fault injection here; a real NIC in the system
//!   being modeled), the sender assigns it a [`WireHeader`]: its
//!   position `seq` in the `(src, dst, tag)` stream and an FNV-1a
//!   checksum over `(tag, seq, len, element bits)` — see
//!   [`checksum_payload`].
//! * **Replay window.** The sender stages a pristine copy of every
//!   enveloped payload in a shared [`IntegrityState`] window, keyed by
//!   stream. Successful delivery of `seq` acts as a cumulative ACK:
//!   the receiver prunes every staged entry of that stream up to and
//!   including `seq`, so the window holds only in-flight messages.
//! * **NACK/retransmit.** A receiver whose checksum test fails issues a
//!   NACK — modeled as a direct pull of the staged copy from the
//!   sender's window (the in-process analogue of a NACK packet plus the
//!   sender's resend). Pulls retry with backoff up to
//!   [`IntegrityConfig::max_retries`]; retransmissions ride the same
//!   hazardous link, so a [`crate::fault::FaultPlan`] can corrupt them
//!   too ([`crate::fault::FaultPlan::corrupt_retransmit_nth`]). When the
//!   budget is exhausted, the receive unwinds with a typed
//!   [`CommError::Corrupt`] caught at the rank boundary.
//! * **Drops** are repaired on the *sender* side: with an envelope
//!   attached, a dropped message is a detectable unacknowledged
//!   sequence number, and [`crate::fault::FaultyComm`] models the
//!   link-layer retransmit by immediately resending under a fresh fault
//!   ordinal. The receiver therefore never observes a sequence gap, and
//!   drop repair never interacts with the deadlock watchdog.
//!
//! Every repair is counted: retransmissions and corrupted-and-repaired
//! messages land in [`crate::TrafficStats`] and in the watchdog's
//! wait-graph diagnostics, so a flaky link is visible long before it
//! becomes fatal.
//!
//! Two wirings exist. Setting `FG_COMM_INTEGRITY=1` (or
//! [`crate::RunOptions::integrity`]) envelopes all traffic inside
//! [`crate::WorldComm`] itself — zero API change for callers. Fault
//! chaos tests instead stack an explicit [`IntegrityComm`] *above* a
//! `FaultyComm` (via [`crate::runtime::run_ranks_with_faults_integrity`]),
//! because checksums must be computed on pristine payloads: integrity
//! below the fault layer would happily certify corrupted data.

use std::any::Any;
use std::collections::{HashMap, VecDeque};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex};
use std::time::Duration;

use crate::error::CommError;
use crate::fault::FaultPlan;
use crate::p2p::{CommScalar, Communicator, Tag, WireHeader};
use crate::stats::OpClass;

/// Tuning for the receiver-side repair loop.
#[derive(Debug, Clone)]
pub struct IntegrityConfig {
    /// How many replay-window pulls a receiver attempts for one corrupted
    /// message before surfacing [`CommError::Corrupt`]. With a per-link
    /// corruption rate `r`, repair fails with probability `r^(budget+1)`.
    pub max_retries: u32,
    /// Base backoff between pulls; pull `k` sleeps `k * backoff`,
    /// modeling NACK round-trips without hammering the shared window.
    pub backoff: Duration,
}

impl Default for IntegrityConfig {
    fn default() -> IntegrityConfig {
        IntegrityConfig { max_retries: 8, backoff: Duration::from_micros(20) }
    }
}

/// FNV-1a over one more 64-bit word.
fn fnv(h: u64, word: u64) -> u64 {
    (h ^ word).wrapping_mul(0x0000_0100_0000_01b3)
}

/// The end-to-end payload checksum: FNV-1a over `(tag, seq, len)` and
/// every element's [`CommScalar::checksum_bits`]. Binding the header
/// fields means a payload spliced onto the wrong stream position fails
/// verification even if its bytes are intact.
pub fn checksum_payload<T: CommScalar>(tag: Tag, seq: u64, data: &[T]) -> u64 {
    let mut h = 0xcbf2_9ce4_8422_2325u64;
    h = fnv(h, tag);
    h = fnv(h, seq);
    h = fnv(h, data.len() as u64);
    for x in data {
        h = fnv(h, x.checksum_bits());
    }
    h
}

/// A staged pristine copy awaiting acknowledgement.
struct Entry {
    seq: u64,
    /// Payload wire size, so the window can be byte-bounded.
    bytes: usize,
    payload: Box<dyn Any + Send>,
}

/// Default per-stream byte bound of the replay window (16 MiB). Also
/// the comm-staging term the static memory analyzer charges per rank
/// when the integrity layer is on.
pub const DEFAULT_REPLAY_BYTES: usize = 16 << 20;

/// The replay windows plus their byte accounting, under one lock so the
/// gauge can never drift from the staged entries.
#[derive(Default)]
struct ReplayWindows {
    /// `streams[(src, dst, tag)]` → staged entries in seq order.
    streams: HashMap<(usize, usize, Tag), VecDeque<Entry>>,
    /// Bytes currently staged across all streams.
    held_bytes: usize,
    /// High-water mark of `held_bytes`.
    peak_held: usize,
}

/// The world-shared sender-side state: per-stream replay windows plus
/// the per-link retransmission ordinals that drive plan-scheduled
/// retransmit corruption. One instance is shared (via `Arc`) by all
/// ranks of a world, the in-process stand-in for each sender's NIC
/// buffer being reachable by its peer's NACKs.
pub struct IntegrityState {
    size: usize,
    windows: Mutex<ReplayWindows>,
    /// Per-stream byte bound: staging a message evicts the oldest
    /// entries of its stream until the backlog fits, so a slow ACK
    /// stream cannot grow the window without limit.
    stream_bound: usize,
    /// Retransmissions served per link (`src * size + dst`), the ordinal
    /// stream for [`FaultPlan::retransmit_corrupt_mask`].
    retx_served: Vec<AtomicU64>,
    /// Fault plan corrupting retransmissions; `None` outside chaos runs.
    plan: Option<FaultPlan>,
}

impl IntegrityState {
    /// Fresh state for a world of `size` ranks, with no fault plan. The
    /// per-stream byte bound comes from `FG_COMM_REPLAY_BYTES` when set,
    /// else [`DEFAULT_REPLAY_BYTES`].
    pub fn new(size: usize) -> IntegrityState {
        let bound = std::env::var("FG_COMM_REPLAY_BYTES")
            .ok()
            .and_then(|v| v.parse::<usize>().ok())
            .unwrap_or(DEFAULT_REPLAY_BYTES);
        IntegrityState {
            size,
            windows: Mutex::new(ReplayWindows::default()),
            stream_bound: bound,
            retx_served: (0..size * size).map(|_| AtomicU64::new(0)).collect(),
            plan: None,
        }
    }

    /// Attach a fault plan so retransmissions suffer the same link
    /// hazard as first transmissions.
    pub fn with_plan(mut self, plan: FaultPlan) -> IntegrityState {
        self.plan = Some(plan);
        self
    }

    /// Override the per-stream byte bound (tests and tuning).
    pub fn with_stream_bound(mut self, bytes: usize) -> IntegrityState {
        self.stream_bound = bytes;
        self
    }

    /// Stage a pristine copy of message `seq` on stream
    /// `(src, dst, tag)`. Called by the sender before the send itself,
    /// so a concurrent NACK can never miss the entry. Enforces the
    /// per-stream byte bound by evicting the stream's oldest entries —
    /// a later NACK for an evicted seq surfaces as the typed
    /// window-miss [`CommError::Corrupt`] in [`protocol_recv`]. The
    /// just-staged entry itself is never evicted (one oversized message
    /// must stay repairable). Returns the bytes held across all streams
    /// after staging, the value behind
    /// [`Communicator::note_replay_held`].
    fn stage<T: CommScalar>(
        &self,
        src: usize,
        dst: usize,
        tag: Tag,
        seq: u64,
        payload: Vec<T>,
    ) -> usize {
        let bytes = payload.len() * std::mem::size_of::<T>();
        let mut w = self.windows.lock().expect("integrity window poisoned");
        let bound = self.stream_bound;
        let stream = w.streams.entry((src, dst, tag)).or_default();
        stream.push_back(Entry { seq, bytes, payload: Box::new(payload) });
        let mut total: usize = stream.iter().map(|e| e.bytes).sum();
        let mut evicted = 0usize;
        while total > bound && stream.len() > 1 {
            let e = stream.pop_front().expect("stream holds more than one entry");
            total -= e.bytes;
            evicted += e.bytes;
        }
        w.held_bytes = w.held_bytes + bytes - evicted;
        w.peak_held = w.peak_held.max(w.held_bytes);
        w.held_bytes
    }

    /// Serve a NACK: clone the staged copy of `seq` on
    /// `(src, dst, tag)`, subjecting it to the link's retransmission
    /// hazard. `None` when the window no longer holds the entry.
    fn retransmit<T: CommScalar>(
        &self,
        src: usize,
        dst: usize,
        tag: Tag,
        seq: u64,
    ) -> Option<Vec<T>> {
        let mut copy: Vec<T> = {
            let windows = self.windows.lock().expect("integrity window poisoned");
            let stream = windows.streams.get(&(src, dst, tag))?;
            let entry = stream.iter().find(|e| e.seq == seq)?;
            entry.payload.downcast_ref::<Vec<T>>()?.clone()
        };
        // The ordinal advances once per retransmission actually served
        // on the link; the receiver is single-threaded, so the stream of
        // ordinals on each link is deterministic.
        let k = self.retx_served[src * self.size + dst].fetch_add(1, Ordering::Relaxed);
        if let Some(plan) = &self.plan {
            if let Some(mask) = plan.retransmit_corrupt_mask(src, dst, k) {
                if let Some(first) = copy.first_mut() {
                    *first = first.corrupt(mask);
                }
            }
        }
        Some(copy)
    }

    /// Cumulative ACK: delivery of `seq` on `(src, dst, tag)` proves
    /// every earlier message of the stream was delivered too (per-pair
    /// FIFO); prune them all.
    fn ack(&self, src: usize, dst: usize, tag: Tag, seq: u64) {
        let mut w = self.windows.lock().expect("integrity window poisoned");
        let mut freed = 0usize;
        let mut empty = false;
        if let Some(stream) = w.streams.get_mut(&(src, dst, tag)) {
            stream.retain(|e| {
                if e.seq > seq {
                    true
                } else {
                    freed += e.bytes;
                    false
                }
            });
            empty = stream.is_empty();
        }
        if empty {
            w.streams.remove(&(src, dst, tag));
        }
        w.held_bytes -= freed;
    }

    /// Total messages currently staged across all streams (test/debug).
    pub fn staged(&self) -> usize {
        let w = self.windows.lock().expect("integrity window poisoned");
        w.streams.values().map(|s| s.len()).sum()
    }

    /// Bytes currently staged across all streams.
    pub fn held_bytes(&self) -> usize {
        self.windows.lock().expect("integrity window poisoned").held_bytes
    }

    /// High-water mark of [`IntegrityState::held_bytes`] since
    /// construction.
    pub fn peak_held_bytes(&self) -> usize {
        self.windows.lock().expect("integrity window poisoned").peak_held
    }
}

/// A rank's private protocol cursors: the next sequence number per
/// outgoing stream and the expected sequence number per incoming stream.
#[derive(Default)]
pub struct RankCursor {
    next_seq: std::cell::RefCell<HashMap<(usize, Tag), u64>>,
    expected: std::cell::RefCell<HashMap<(usize, Tag), u64>>,
}

impl RankCursor {
    /// Fresh cursors (all streams at seq 0).
    pub fn new() -> RankCursor {
        RankCursor::default()
    }

    fn next_send_seq(&self, dst: usize, tag: Tag) -> u64 {
        let mut map = self.next_seq.borrow_mut();
        let c = map.entry((dst, tag)).or_insert(0);
        let seq = *c;
        *c += 1;
        seq
    }

    fn expected_recv_seq(&self, src: usize, tag: Tag) -> u64 {
        *self.expected.borrow_mut().entry((src, tag)).or_insert(0)
    }

    fn advance_recv(&self, src: usize, tag: Tag) {
        *self.expected.borrow_mut().entry((src, tag)).or_insert(0) += 1;
    }
}

/// Sender half of the protocol: assign the envelope, stage the pristine
/// copy, send through `comm`'s raw enveloped path.
///
/// Generic over the inner communicator so the same state machine serves
/// both wirings: `comm` is the [`crate::WorldComm`] itself (internal
/// integrity) or a [`crate::fault::FaultyComm`] (explicit stack), and in
/// either case `send_enveloped` is the layer *below* integrity.
pub fn protocol_send<C: Communicator, T: CommScalar>(
    comm: &C,
    state: &IntegrityState,
    cursor: &RankCursor,
    dst: usize,
    tag: Tag,
    data: Vec<T>,
) {
    let seq = cursor.next_send_seq(dst, tag);
    let checksum = checksum_payload(tag, seq, &data);
    let held = state.stage(comm.rank(), dst, tag, seq, data.clone());
    comm.note_replay_held(held as u64);
    comm.send_enveloped(dst, tag, data, WireHeader { seq, checksum });
}

/// Receiver half of the protocol: verify the envelope, repair by pulling
/// retransmissions on mismatch, acknowledge on acceptance.
///
/// # Panics
/// Unwinds with [`CommError::Corrupt`] when the retry budget is
/// exhausted or the replay window no longer holds the message; the rank
/// boundary ([`crate::runtime::run_ranks_opts`]) catches it.
pub fn protocol_recv<C: Communicator, T: CommScalar>(
    comm: &C,
    state: &IntegrityState,
    config: &IntegrityConfig,
    cursor: &RankCursor,
    src: usize,
    tag: Tag,
) -> Vec<T> {
    let (mut data, header) = comm.recv_enveloped::<T>(src, tag);
    let Some(header) = header else {
        // The sender ran without the integrity layer; nothing to verify.
        return data;
    };
    let me = comm.rank();
    let expected = cursor.expected_recv_seq(src, tag);
    // Link-layer drop repair (see FaultyComm::send_enveloped) guarantees
    // gap-free streams; a mismatch here is a protocol bug, not a fault.
    assert_eq!(
        header.seq, expected,
        "integrity stream {src} -> {me} tag {tag}: got seq {}, expected {expected}",
        header.seq
    );
    let mut pulls = 0u32;
    // Started at the first checksum mismatch; its elapsed time is the
    // receiver's repair stall, reported as rung-1 wall time.
    let mut repair_started: Option<std::time::Instant> = None;
    loop {
        if checksum_payload(tag, header.seq, &data) == header.checksum {
            if pulls > 0 {
                comm.note_corrupt_repaired();
                if let Some(t0) = repair_started {
                    comm.note_repair_time(t0.elapsed().as_nanos() as u64);
                }
            }
            cursor.advance_recv(src, tag);
            state.ack(src, me, tag, header.seq);
            return data;
        }
        if pulls >= config.max_retries {
            std::panic::panic_any(CommError::Corrupt {
                link: (src, me),
                seq: header.seq,
                detail: format!(
                    "tag {tag}: checksum mismatch persisted through {pulls} retransmissions \
                     (budget {})",
                    config.max_retries
                ),
            });
        }
        pulls += 1;
        repair_started.get_or_insert_with(std::time::Instant::now);
        comm.note_retransmit();
        if pulls > 1 {
            // NACK round-trips back off linearly; the first pull is
            // immediate.
            std::thread::sleep(config.backoff * (pulls - 1));
        }
        data = state.retransmit::<T>(src, me, tag, header.seq).unwrap_or_else(|| {
            std::panic::panic_any(CommError::Corrupt {
                link: (src, me),
                seq: header.seq,
                detail: format!(
                    "tag {tag}: replay window no longer holds the message after {pulls} pulls"
                ),
            })
        });
    }
}

/// A [`Communicator`] wrapper running the integrity protocol above an
/// inner communicator — the explicit-stack wiring used by chaos tests:
/// `IntegrityComm<FaultyComm<WorldComm>>` checksums pristine payloads,
/// injects faults below, and repairs them at the receiver.
pub struct IntegrityComm<'a, C: Communicator> {
    inner: &'a C,
    state: Arc<IntegrityState>,
    config: IntegrityConfig,
    cursor: RankCursor,
}

impl<'a, C: Communicator> IntegrityComm<'a, C> {
    /// Wrap `inner`, sharing the world's `state`.
    pub fn new(inner: &'a C, state: Arc<IntegrityState>, config: IntegrityConfig) -> Self {
        IntegrityComm { inner, state, config, cursor: RankCursor::new() }
    }

    /// The wrapped communicator.
    pub fn inner(&self) -> &C {
        self.inner
    }
}

impl<C: Communicator> Communicator for IntegrityComm<'_, C> {
    fn rank(&self) -> usize {
        self.inner.rank()
    }

    fn size(&self) -> usize {
        self.inner.size()
    }

    fn send<T: CommScalar>(&self, dst: usize, tag: Tag, data: Vec<T>) {
        protocol_send(self.inner, &self.state, &self.cursor, dst, tag, data);
    }

    fn recv<T: CommScalar>(&self, src: usize, tag: Tag) -> Vec<T> {
        protocol_recv(self.inner, &self.state, &self.config, &self.cursor, src, tag)
    }

    fn record(&self, class: OpClass, messages: u64, bytes: u64) {
        self.inner.record(class, messages, bytes);
    }

    fn note_dropped_send(&self, dst: usize) {
        self.inner.note_dropped_send(dst);
    }

    fn note_retransmit(&self) {
        self.inner.note_retransmit();
    }

    fn note_corrupt_repaired(&self) {
        self.inner.note_corrupt_repaired();
    }

    fn note_repair_time(&self, nanos: u64) {
        self.inner.note_repair_time(nanos);
    }

    fn note_replay_held(&self, bytes: u64) {
        self.inner.note_replay_held(bytes);
    }

    fn stats_snapshot(&self) -> Option<crate::stats::TrafficStats> {
        self.inner.stats_snapshot()
    }

    fn busy_nanos(&self) -> u64 {
        self.inner.busy_nanos()
    }

    fn note_straggler_flag(&self) {
        self.inner.note_straggler_flag();
    }

    fn note_rank_slowness(&self, ratios: &[f64]) {
        self.inner.note_rank_slowness(ratios);
    }

    fn next_collective_tag(&self) -> Tag {
        self.inner.next_collective_tag()
    }

    fn with_class<R>(&self, class: OpClass, f: impl FnOnce() -> R) -> R {
        self.inner.with_class(class, f)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn checksum_binds_payload_tag_seq_and_length() {
        let data = vec![1.0f32, 2.0, 3.0];
        let base = checksum_payload(7, 0, &data);
        assert_eq!(base, checksum_payload(7, 0, &data));
        assert_ne!(base, checksum_payload(8, 0, &data));
        assert_ne!(base, checksum_payload(7, 1, &data));
        assert_ne!(base, checksum_payload(7, 0, &data[..2]));
        let mut corrupted = data.clone();
        corrupted[1] = corrupted[1].corrupt(0xdead);
        assert_ne!(base, checksum_payload(7, 0, &corrupted));
        // Trailing-element corruption is visible too (not just the first).
        let mut tail = data.clone();
        tail[2] = tail[2].corrupt(1);
        assert_ne!(base, checksum_payload(7, 0, &tail));
    }

    #[test]
    fn window_stages_retransmits_and_prunes_on_ack() {
        let state = IntegrityState::new(2);
        state.stage(0, 1, 5, 0, vec![1.0f32]);
        state.stage(0, 1, 5, 1, vec![2.0f32]);
        state.stage(0, 1, 9, 0, vec![3.0f32]);
        assert_eq!(state.staged(), 3);
        assert_eq!(state.retransmit::<f32>(0, 1, 5, 0), Some(vec![1.0]));
        assert_eq!(state.retransmit::<f32>(0, 1, 5, 1), Some(vec![2.0]));
        // Unknown seq / stream → None.
        assert_eq!(state.retransmit::<f32>(0, 1, 5, 7), None);
        assert_eq!(state.retransmit::<f32>(1, 0, 5, 0), None);
        // Cumulative ACK of seq 1 prunes seqs 0 and 1 of that stream only.
        state.ack(0, 1, 5, 1);
        assert_eq!(state.staged(), 1);
        assert_eq!(state.retransmit::<f32>(0, 1, 5, 0), None);
        assert_eq!(state.retransmit::<f32>(0, 1, 9, 0), Some(vec![3.0]));
    }

    #[test]
    fn byte_bound_evicts_only_the_offending_streams_oldest() {
        // 12-byte bound; each 3-element f32 payload is exactly 12 bytes.
        let state = IntegrityState::new(2).with_stream_bound(12);
        assert_eq!(state.stage(0, 1, 5, 0, vec![1.0f32, 1.0, 1.0]), 12);
        // Staging seq 1 would hold 24 bytes on the stream: seq 0 is
        // evicted, and a later NACK for it finds nothing (the typed
        // window-miss path in protocol_recv).
        assert_eq!(state.stage(0, 1, 5, 1, vec![2.0f32, 2.0, 2.0]), 12);
        assert_eq!(state.retransmit::<f32>(0, 1, 5, 0), None);
        assert_eq!(state.retransmit::<f32>(0, 1, 5, 1), Some(vec![2.0, 2.0, 2.0]));
        // Other streams are untouched by the eviction.
        assert_eq!(state.stage(0, 1, 9, 0, vec![3.0f32]), 16);
        assert_eq!(state.retransmit::<f32>(0, 1, 9, 0), Some(vec![3.0]));

        // A single message larger than the bound stays repairable: only
        // the backlog is evicted, never the just-staged entry.
        let tight = IntegrityState::new(2).with_stream_bound(4);
        assert_eq!(tight.stage(0, 1, 5, 0, vec![0.5f32; 8]), 32);
        assert_eq!(tight.retransmit::<f32>(0, 1, 5, 0), Some(vec![0.5; 8]));
    }

    #[test]
    fn held_bytes_gauge_tracks_stage_and_ack() {
        let state = IntegrityState::new(2).with_stream_bound(1024);
        assert_eq!(state.held_bytes(), 0);
        state.stage(0, 1, 5, 0, vec![1.0f32; 4]); // 16 B
        state.stage(0, 1, 5, 1, vec![1.0f32; 2]); // 8 B
        assert_eq!(state.held_bytes(), 24);
        assert_eq!(state.peak_held_bytes(), 24);
        state.ack(0, 1, 5, 0);
        assert_eq!(state.held_bytes(), 8);
        // The peak is a high-water mark; it does not fall with the ACK.
        assert_eq!(state.peak_held_bytes(), 24);
        state.ack(0, 1, 5, 1);
        assert_eq!(state.held_bytes(), 0);
        assert_eq!(state.staged(), 0);
    }

    #[test]
    fn planned_retransmit_corruption_fires_by_served_ordinal() {
        let state =
            IntegrityState::new(2).with_plan(FaultPlan::new(3).corrupt_retransmit_nth(0, 1, 1));
        state.stage(0, 1, 5, 0, vec![4.0f32]);
        // Ordinal 0: clean. Ordinal 1: corrupted. Ordinal 2: clean again.
        assert_eq!(state.retransmit::<f32>(0, 1, 5, 0), Some(vec![4.0]));
        let corrupted = state.retransmit::<f32>(0, 1, 5, 0).unwrap();
        assert_ne!(corrupted, vec![4.0]);
        assert_eq!(state.retransmit::<f32>(0, 1, 5, 0), Some(vec![4.0]));
    }

    #[test]
    fn cursor_tracks_streams_independently() {
        let c = RankCursor::new();
        assert_eq!(c.next_send_seq(1, 5), 0);
        assert_eq!(c.next_send_seq(1, 5), 1);
        assert_eq!(c.next_send_seq(1, 9), 0);
        assert_eq!(c.next_send_seq(0, 5), 0);
        assert_eq!(c.expected_recv_seq(1, 5), 0);
        c.advance_recv(1, 5);
        assert_eq!(c.expected_recv_seq(1, 5), 1);
        assert_eq!(c.expected_recv_seq(0, 5), 0);
    }
}
