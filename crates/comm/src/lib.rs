//! # fg-comm — rank-threaded simulated communicator
//!
//! This crate stands in for the MPI + NCCL + Aluminum substrate that the
//! paper's implementation (LBANN/Distconv) runs on. Instead of processes on
//! a cluster, a *world* of `P` ranks runs as `P` OS threads inside one
//! process, exchanging real messages over in-process channels.
//!
//! The design goals, in order:
//!
//! 1. **Algorithmic fidelity.** Collectives are implemented with the same
//!    algorithms the paper's performance model assumes (Thakur et al.):
//!    ring and recursive-doubling allreduce, Rabenseifner's
//!    reduce-scatter + allgather allreduce, dissemination barrier,
//!    binomial-tree broadcast, and pairwise all-to-all. Who sends what to
//!    whom matches the real thing, so message/byte counts recorded by
//!    [`stats::TrafficStats`] can feed an α–β timing model.
//! 2. **MPI-like semantics.** Per-(source, destination) FIFO ordering,
//!    tag matching with out-of-order stashing, non-blocking sends
//!    (unbounded channels), blocking receives, and `MPI_Comm_split`-style
//!    sub-communicators.
//! 3. **Determinism where it matters.** Reduction algorithms have fixed
//!    operand orders, so repeated runs produce bit-identical results.
//!
//! ## Quick example
//!
//! ```
//! use fg_comm::{run_ranks, Collectives, Communicator, ReduceOp};
//!
//! let sums = run_ranks(4, |comm| {
//!     let mine = vec![comm.rank() as f32; 3];
//!     comm.allreduce(&mine, ReduceOp::Sum)
//! });
//! // 0 + 1 + 2 + 3 = 6 on every rank.
//! assert!(sums.iter().all(|v| v == &vec![6.0f32; 3]));
//! ```

pub mod collectives;
pub mod dynamic;
pub mod error;
pub mod fault;
pub mod integrity;
pub mod p2p;
pub mod runtime;
pub mod sim;
pub mod stats;
pub mod subcomm;
pub mod trace;
pub mod watchdog;

pub use collectives::{AllreduceAlgorithm, Collectives, ReduceOp};
pub use dynamic::{DynComm, ErasedComm, ScalarType};
pub use error::{attribute_dead_ranks, CommError};
pub use fault::{FaultPlan, FaultyComm, LINK_RETRY_BUDGET};
pub use integrity::{IntegrityComm, IntegrityConfig, IntegrityState, DEFAULT_REPLAY_BYTES};
pub use p2p::{
    sub_collective_tag, world_collective_tag, CommScalar, Communicator, Tag, WireHeader,
};
pub use runtime::{
    run_ranks, run_ranks_opts, run_ranks_timed, run_ranks_with_faults,
    run_ranks_with_faults_integrity, LinkModel, RunOptions, WorldComm,
};
pub use sim::{
    collective_finish_times, replay_traces_timed, sim_workers_from_env, simulate_traces,
    simulate_traces_slowed, simulate_traces_with, BlockedRank, SimError, SimReport,
};
pub use stats::{OpClass, TrafficStats};
pub use subcomm::{SubComm, SubCommLayout};
pub use trace::{
    check_traces, CheckKind, CollectiveKind, Phase, RankTrace, SimSeconds, TraceEntry, TraceOp,
    TraceRecorder, VerifyStats, Violation,
};
pub use watchdog::WatchdogConfig;
