//! Collective operations, built generically on [`Communicator`] p2p.
//!
//! The algorithms follow Thakur, Rabenseifner & Gropp, *Optimization of
//! Collective Communication Operations in MPICH* (IJHPCA 2005) — the same
//! paper the reproduction target cites for its collective cost models
//! (§II-B), so the traffic generated here matches what the performance
//! model in `fg-perf` predicts:
//!
//! * **barrier** — dissemination algorithm, ⌈log₂ P⌉ rounds;
//! * **broadcast / reduce** — binomial trees;
//! * **allreduce** — ring (bandwidth-optimal, any P), recursive doubling
//!   (latency-optimal, non-power-of-two handled with the standard
//!   fold-in pre/post step), and Rabenseifner's reduce-scatter +
//!   allgather;
//! * **reduce-scatter / allgather(v)** — ring;
//! * **all-to-all(v)** — P-step rotation (pairwise exchange).
//!
//! All reductions use fixed operand orders, so results are deterministic
//! and identical on every rank of the communicator.

use crate::p2p::{CommScalar, Communicator};
use crate::stats::OpClass;

/// Scalars that support the reduction operations of [`ReduceOp`].
pub trait ReduceScalar: CommScalar + PartialOrd {
    /// Additive identity.
    fn zero() -> Self;
    /// `a + b`.
    fn add(a: Self, b: Self) -> Self;
    /// `a * b`.
    fn mul(a: Self, b: Self) -> Self;
}

macro_rules! impl_reduce_scalar {
    ($($t:ty),*) => {$(
        impl ReduceScalar for $t {
            fn zero() -> Self { 0 as $t }
            fn add(a: Self, b: Self) -> Self { a + b }
            fn mul(a: Self, b: Self) -> Self { a * b }
        }
    )*};
}
impl_reduce_scalar!(f32, f64, i32, i64, u32, u64, usize, u8);

/// Elementwise reduction operator for collectives.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ReduceOp {
    /// Elementwise sum.
    Sum,
    /// Elementwise product.
    Prod,
    /// Elementwise maximum.
    Max,
    /// Elementwise minimum.
    Min,
}

impl ReduceOp {
    /// Apply the operator to a pair of scalars. Operand order is the
    /// caller's responsibility; collectives fix it by rank order so that
    /// floating-point results are deterministic.
    #[inline]
    pub fn apply<T: ReduceScalar>(self, a: T, b: T) -> T {
        match self {
            ReduceOp::Sum => T::add(a, b),
            ReduceOp::Prod => T::mul(a, b),
            ReduceOp::Max => {
                if b > a {
                    b
                } else {
                    a
                }
            }
            ReduceOp::Min => {
                if b < a {
                    b
                } else {
                    a
                }
            }
        }
    }

    /// Reduce `src` into `acc` elementwise as `acc[i] = op(acc[i], src[i])`.
    #[inline]
    fn fold_into<T: ReduceScalar>(self, acc: &mut [T], src: &[T]) {
        debug_assert_eq!(acc.len(), src.len());
        for (a, s) in acc.iter_mut().zip(src) {
            *a = self.apply(*a, *s);
        }
    }

    /// Reduce `src` into `acc` elementwise as `acc[i] = op(src[i], acc[i])`
    /// (source operand on the left; used to keep rank-order determinism).
    #[inline]
    fn fold_into_rev<T: ReduceScalar>(self, acc: &mut [T], src: &[T]) {
        debug_assert_eq!(acc.len(), src.len());
        for (a, s) in acc.iter_mut().zip(src) {
            *a = self.apply(*s, *a);
        }
    }
}

/// Choice of allreduce algorithm.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum AllreduceAlgorithm {
    /// Ring reduce-scatter + ring allgather. Bandwidth-optimal,
    /// 2(P−1) steps; works for any P.
    Ring,
    /// Recursive doubling: log₂ P steps each moving the whole vector.
    /// Latency-optimal for short messages.
    RecursiveDoubling,
    /// Rabenseifner: recursive-halving reduce-scatter followed by
    /// recursive-doubling allgather. Bandwidth-optimal with log-latency.
    Rabenseifner,
    /// Select by message size, mimicking MPICH's heuristics.
    Auto,
}

impl AllreduceAlgorithm {
    /// Resolve [`AllreduceAlgorithm::Auto`] for a payload of `bytes`:
    /// MPICH-style, short vectors go latency-optimal (recursive
    /// doubling), long vectors bandwidth-optimal (ring). Shared by the
    /// live collectives and the discrete-event replay ([`crate::sim`])
    /// so the two can never drift.
    pub fn resolve(self, bytes: usize) -> AllreduceAlgorithm {
        match self {
            AllreduceAlgorithm::Auto => {
                if bytes <= 8192 {
                    AllreduceAlgorithm::RecursiveDoubling
                } else {
                    AllreduceAlgorithm::Ring
                }
            }
            other => other,
        }
    }
}

/// Balanced block partition: the sub-range of `0..total` assigned to
/// `part` of `parts`. The first `total % parts` blocks are one larger.
pub fn block_range(total: usize, parts: usize, part: usize) -> std::ops::Range<usize> {
    debug_assert!(part < parts);
    let base = total / parts;
    let rem = total % parts;
    let lo = part * base + part.min(rem);
    let hi = lo + base + usize::from(part < rem);
    lo..hi
}

/// Collective operations; blanket-implemented for every [`Communicator`].
pub trait Collectives: Communicator + Sized {
    /// Dissemination barrier: ⌈log₂ P⌉ sendrecv rounds.
    fn barrier(&self) {
        let p = self.size();
        if p == 1 {
            return;
        }
        self.with_class(OpClass::Barrier, || {
            let tag = self.next_collective_tag();
            let mut k = 1usize;
            while k < p {
                let dst = (self.rank() + k) % p;
                let src = (self.rank() + p - k) % p;
                // Zero-length payload; only the synchronization matters.
                let _ = self.sendrecv::<u8>(dst, src, tag, Vec::new());
                k <<= 1;
            }
        });
    }

    /// Binomial-tree broadcast from `root`. Non-root ranks pass `None`.
    fn bcast<T: CommScalar>(&self, root: usize, data: Option<Vec<T>>) -> Vec<T> {
        let p = self.size();
        assert!(root < p, "bcast root {root} out of range");
        if self.rank() == root {
            assert!(data.is_some(), "root must supply the broadcast payload");
        }
        if p == 1 {
            return data.expect("single-rank bcast payload");
        }
        let tag = self.next_collective_tag();
        let relative = (self.rank() + p - root) % p;
        let mut buf = data;
        let mut mask = 1usize;
        while mask < p {
            if relative & mask != 0 {
                let src = (self.rank() + p - mask) % p;
                buf = Some(self.recv::<T>(src, tag));
                break;
            }
            mask <<= 1;
        }
        let buf = buf.expect("broadcast payload reached this rank");
        mask >>= 1;
        while mask > 0 {
            if relative + mask < p {
                let dst = (self.rank() + mask) % p;
                self.record(OpClass::Bcast, 0, 0);
                self.send(dst, tag, buf.clone());
            }
            mask >>= 1;
        }
        buf
    }

    /// Binomial-tree reduce to `root`; returns `Some(result)` on the root
    /// and `None` elsewhere. Contributions are combined child-major with
    /// fixed operand order for determinism.
    fn reduce<T: ReduceScalar>(&self, root: usize, data: &[T], op: ReduceOp) -> Option<Vec<T>> {
        let p = self.size();
        assert!(root < p, "reduce root {root} out of range");
        if p == 1 {
            return Some(data.to_vec());
        }
        let tag = self.next_collective_tag();
        let relative = (self.rank() + p - root) % p;
        let mut acc = data.to_vec();
        let mut mask = 1usize;
        while mask < p {
            if relative & mask == 0 {
                let src_rel = relative | mask;
                if src_rel < p {
                    let src = (src_rel + root) % p;
                    let theirs = self.recv::<T>(src, tag);
                    // Child has the higher relative rank: it goes on the right.
                    op.fold_into(&mut acc, &theirs);
                }
            } else {
                let dst = (self.rank() + p - mask) % p;
                self.send(dst, tag, acc);
                return None;
            }
            mask <<= 1;
        }
        Some(acc)
    }

    /// Allreduce with automatic algorithm choice (see
    /// [`AllreduceAlgorithm::Auto`]).
    fn allreduce<T: ReduceScalar>(&self, data: &[T], op: ReduceOp) -> Vec<T> {
        self.allreduce_with(data, op, AllreduceAlgorithm::Auto)
    }

    /// Allreduce with an explicit algorithm.
    fn allreduce_with<T: ReduceScalar>(
        &self,
        data: &[T],
        op: ReduceOp,
        alg: AllreduceAlgorithm,
    ) -> Vec<T> {
        let p = self.size();
        if p == 1 || data.is_empty() {
            return data.to_vec();
        }
        let alg = alg.resolve(data.len() * T::WIDTH);
        self.with_class(OpClass::Allreduce, || match alg {
            AllreduceAlgorithm::Ring => self.allreduce_ring(data, op),
            AllreduceAlgorithm::RecursiveDoubling => self.allreduce_recursive_doubling(data, op),
            AllreduceAlgorithm::Rabenseifner => self.allreduce_rabenseifner(data, op),
            AllreduceAlgorithm::Auto => unreachable!("Auto resolved above"),
        })
    }

    /// Ring allreduce: reduce-scatter rotation then allgather rotation.
    fn allreduce_ring<T: ReduceScalar>(&self, data: &[T], op: ReduceOp) -> Vec<T> {
        let p = self.size();
        let n = data.len();
        let rank = self.rank();
        let tag = self.next_collective_tag();
        let mut buf = data.to_vec();
        let right = (rank + 1) % p;
        let left = (rank + p - 1) % p;
        // Reduce-scatter: after P−1 steps, chunk c is complete on rank c.
        for step in 0..p - 1 {
            let send_idx = (rank + p - step) % p;
            let recv_idx = (rank + p - step - 1) % p;
            let sr = block_range(n, p, send_idx);
            let rr = block_range(n, p, recv_idx);
            let incoming = self.sendrecv(right, left, tag, buf[sr].to_vec());
            // The incoming partial sum accumulates contributions of ranks
            // recv_idx+1..=rank in ring order; keep it on the left so the
            // final order is by increasing contributing rank.
            op.fold_into_rev(&mut buf[rr], &incoming);
        }
        // Allgather: rotate completed chunks around the ring.
        for step in 0..p - 1 {
            let send_idx = (rank + 1 + p - step) % p;
            let recv_idx = (rank + p - step) % p;
            let sr = block_range(n, p, send_idx);
            let rr = block_range(n, p, recv_idx);
            let incoming = self.sendrecv(right, left, tag, buf[sr].to_vec());
            buf[rr].copy_from_slice_like(&incoming);
        }
        buf
    }

    /// Recursive-doubling allreduce; non-power-of-two P handled by the
    /// standard fold-in of `P − 2^⌊log₂P⌋` extra ranks.
    fn allreduce_recursive_doubling<T: ReduceScalar>(&self, data: &[T], op: ReduceOp) -> Vec<T> {
        let p = self.size();
        let rank = self.rank();
        let tag = self.next_collective_tag();
        let pof2 = prev_pow2(p);
        let rem = p - pof2;
        let mut buf = data.to_vec();

        // Pre-step: the first 2·rem ranks pair up; odd ranks fold their
        // data into the preceding even rank and sit out the main phase.
        let newrank: isize = if rank < 2 * rem {
            if rank % 2 == 1 {
                self.send(rank - 1, tag, buf.clone());
                -1
            } else {
                let theirs = self.recv::<T>(rank + 1, tag);
                op.fold_into(&mut buf, &theirs);
                (rank / 2) as isize
            }
        } else {
            (rank - rem) as isize
        };

        if newrank >= 0 {
            let newrank = newrank as usize;
            let mut mask = 1usize;
            while mask < pof2 {
                let partner_new = newrank ^ mask;
                let partner = if partner_new < rem { partner_new * 2 } else { partner_new + rem };
                let theirs = self.sendrecv(partner, partner, tag, buf.clone());
                if newrank < partner_new {
                    op.fold_into(&mut buf, &theirs);
                } else {
                    op.fold_into_rev(&mut buf, &theirs);
                }
                mask <<= 1;
            }
        }

        // Post-step: surviving even ranks forward the result to their pair.
        if rank < 2 * rem {
            if rank.is_multiple_of(2) {
                self.send(rank + 1, tag, buf.clone());
            } else {
                buf = self.recv::<T>(rank - 1, tag);
            }
        }
        buf
    }

    /// Rabenseifner's allreduce: recursive-halving reduce-scatter then
    /// recursive-doubling allgather; non-power-of-two handled as above.
    fn allreduce_rabenseifner<T: ReduceScalar>(&self, data: &[T], op: ReduceOp) -> Vec<T> {
        let p = self.size();
        let rank = self.rank();
        let n = data.len();
        let tag = self.next_collective_tag();
        let pof2 = prev_pow2(p);
        let rem = p - pof2;
        if pof2 == 1 {
            // Degenerate worlds (P = 1 handled by caller; P ≤ 3 with
            // pof2 == 2 proceed below). pof2 == 1 means P == 1.
            return data.to_vec();
        }
        let mut buf = data.to_vec();

        let newrank: isize = if rank < 2 * rem {
            if rank % 2 == 1 {
                self.send(rank - 1, tag, buf.clone());
                -1
            } else {
                let theirs = self.recv::<T>(rank + 1, tag);
                op.fold_into(&mut buf, &theirs);
                (rank / 2) as isize
            }
        } else {
            (rank - rem) as isize
        };

        if newrank >= 0 {
            let newrank = newrank as usize;
            let to_real = |nr: usize| if nr < rem { nr * 2 } else { nr + rem };
            // Reduce-scatter by recursive halving. Track the live segment.
            let (mut lo, mut hi) = (0usize, n);
            let mut mask = pof2 >> 1;
            let mut merge_masks = Vec::new();
            while mask > 0 {
                let partner = to_real(newrank ^ mask);
                let mid = lo + (hi - lo) / 2;
                let i_keep_lower = newrank & mask == 0;
                let (keep, give) =
                    if i_keep_lower { ((lo, mid), (mid, hi)) } else { ((mid, hi), (lo, mid)) };
                let theirs = self.sendrecv(partner, partner, tag, buf[give.0..give.1].to_vec());
                if i_keep_lower {
                    // Partner has the higher newrank: its data on the right.
                    op.fold_into(&mut buf[keep.0..keep.1], &theirs);
                } else {
                    op.fold_into_rev(&mut buf[keep.0..keep.1], &theirs);
                }
                lo = keep.0;
                hi = keep.1;
                merge_masks.push(mask);
                mask >>= 1;
            }
            // Allgather by recursive doubling, mirroring the halving.
            for mask in merge_masks.into_iter().rev() {
                let partner = to_real(newrank ^ mask);
                // Reconstruct the segment boundaries of this level.
                let (plo, phi) = segment_at_level(n, newrank, pof2, mask);
                let mid = plo + (phi - plo) / 2;
                let i_have_lower = newrank & mask == 0;
                let (mine, theirs_rng) =
                    if i_have_lower { ((plo, mid), (mid, phi)) } else { ((mid, phi), (plo, mid)) };
                let theirs = self.sendrecv(partner, partner, tag, buf[mine.0..mine.1].to_vec());
                buf[theirs_rng.0..theirs_rng.1].copy_from_slice_like(&theirs);
            }
        }

        if rank < 2 * rem {
            if rank.is_multiple_of(2) {
                self.send(rank + 1, tag, buf.clone());
            } else {
                buf = self.recv::<T>(rank - 1, tag);
            }
        }
        buf
    }

    /// Ring reduce-scatter: returns this rank's fully reduced block
    /// (`block_range(n, P, rank)` of the logical result).
    fn reduce_scatter<T: ReduceScalar>(&self, data: &[T], op: ReduceOp) -> Vec<T> {
        let p = self.size();
        let n = data.len();
        let rank = self.rank();
        if p == 1 {
            return data.to_vec();
        }
        self.with_class(OpClass::ReduceScatter, || {
            let tag = self.next_collective_tag();
            let mut buf = data.to_vec();
            let right = (rank + 1) % p;
            let left = (rank + p - 1) % p;
            // Same rotation as the allreduce reduce-scatter phase, but
            // shifted one position so chunk `rank` completes locally.
            for step in 0..p - 1 {
                let send_idx = (rank + p - step - 1) % p;
                let recv_idx = (rank + p - step - 2) % p;
                let sr = block_range(n, p, send_idx);
                let rr = block_range(n, p, recv_idx);
                let incoming = self.sendrecv(right, left, tag, buf[sr].to_vec());
                op.fold_into_rev(&mut buf[rr], &incoming);
            }
            let mine = block_range(n, p, rank);
            buf[mine].to_vec()
        })
    }

    /// Variable-size allgather: every rank contributes `mine`, and all
    /// ranks receive every contribution, indexed by rank. Ring algorithm.
    fn allgatherv<T: CommScalar>(&self, mine: Vec<T>) -> Vec<Vec<T>> {
        let p = self.size();
        let rank = self.rank();
        if p == 1 {
            return vec![mine];
        }
        self.with_class(OpClass::Allgather, || {
            let tag = self.next_collective_tag();
            let right = (rank + 1) % p;
            let left = (rank + p - 1) % p;
            let mut parts: Vec<Option<Vec<T>>> = (0..p).map(|_| None).collect();
            parts[rank] = Some(mine);
            for step in 0..p - 1 {
                let send_idx = (rank + p - step) % p;
                let recv_idx = (rank + p - step - 1) % p;
                let outgoing = parts[send_idx].clone().expect("chunk present for forwarding");
                let incoming = self.sendrecv(right, left, tag, outgoing);
                parts[recv_idx] = Some(incoming);
            }
            parts.into_iter().map(|x| x.expect("all chunks gathered")).collect()
        })
    }

    /// Allgather of equal-size blocks, concatenated in rank order.
    fn allgather_concat<T: CommScalar>(&self, mine: Vec<T>) -> Vec<T> {
        self.allgatherv(mine).into_iter().flatten().collect()
    }

    /// Linear gather of variable-size contributions to `root`.
    fn gatherv<T: CommScalar>(&self, root: usize, mine: Vec<T>) -> Option<Vec<Vec<T>>> {
        let p = self.size();
        assert!(root < p, "gather root out of range");
        self.with_class(OpClass::GatherScatter, || {
            let tag = self.next_collective_tag();
            if self.rank() == root {
                let mut out: Vec<Option<Vec<T>>> = (0..p).map(|_| None).collect();
                out[root] = Some(mine);
                for src in (0..p).filter(|s| *s != root) {
                    out[src] = Some(self.recv::<T>(src, tag));
                }
                Some(out.into_iter().map(|x| x.expect("gathered")).collect())
            } else {
                self.send(root, tag, mine);
                None
            }
        })
    }

    /// Linear scatter of per-rank payloads from `root`.
    fn scatterv<T: CommScalar>(&self, root: usize, parts: Option<Vec<Vec<T>>>) -> Vec<T> {
        let p = self.size();
        assert!(root < p, "scatter root out of range");
        self.with_class(OpClass::GatherScatter, || {
            let tag = self.next_collective_tag();
            if self.rank() == root {
                let parts = parts.expect("root must supply scatter payloads");
                assert_eq!(parts.len(), p, "one payload per rank");
                let mut mine = Vec::new();
                for (dst, part) in parts.into_iter().enumerate() {
                    if dst == root {
                        mine = part;
                    } else {
                        self.send(dst, tag, part);
                    }
                }
                mine
            } else {
                self.recv::<T>(root, tag)
            }
        })
    }

    /// Personalized all-to-all with variable sizes: `sends[d]` goes to
    /// rank `d`; returns `recvs[s]` from every rank `s`. P-step rotation.
    fn alltoallv<T: CommScalar>(&self, mut sends: Vec<Vec<T>>) -> Vec<Vec<T>> {
        let p = self.size();
        let rank = self.rank();
        assert_eq!(sends.len(), p, "one send buffer per rank");
        if p == 1 {
            return sends;
        }
        self.with_class(OpClass::AllToAll, || {
            let tag = self.next_collective_tag();
            let mut recvs: Vec<Option<Vec<T>>> = (0..p).map(|_| None).collect();
            recvs[rank] = Some(std::mem::take(&mut sends[rank]));
            for step in 1..p {
                let dst = (rank + step) % p;
                let src = (rank + p - step) % p;
                let outgoing = std::mem::take(&mut sends[dst]);
                recvs[src] = Some(self.sendrecv(dst, src, tag, outgoing));
            }
            recvs.into_iter().map(|x| x.expect("rotation visited all ranks")).collect()
        })
    }
}

impl<C: Communicator> Collectives for C {}

/// Largest power of two ≤ `p` (`p ≥ 1`).
pub(crate) fn prev_pow2(p: usize) -> usize {
    let mut x = 1usize;
    while x * 2 <= p {
        x *= 2;
    }
    x
}

/// Segment of `0..n` that newrank's subtree owns at halving level `mask`
/// in Rabenseifner's algorithm (before the split at that level).
pub(crate) fn segment_at_level(
    n: usize,
    newrank: usize,
    pof2: usize,
    mask: usize,
) -> (usize, usize) {
    let (mut lo, mut hi) = (0usize, n);
    let mut m = pof2 >> 1;
    while m > mask {
        let mid = lo + (hi - lo) / 2;
        if newrank & m == 0 {
            hi = mid;
        } else {
            lo = mid;
        }
        m >>= 1;
    }
    (lo, hi)
}

/// Helper: `copy_from_slice` with a descriptive name for generic `T`
/// (avoids requiring `T: Clone` bounds to be spelled at call sites).
trait CopyFromSliceLike<T> {
    fn copy_from_slice_like(&mut self, src: &[T]);
}

impl<T: Copy> CopyFromSliceLike<T> for [T] {
    fn copy_from_slice_like(&mut self, src: &[T]) {
        self.copy_from_slice(src);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::runtime::run_ranks;

    #[test]
    fn block_range_balances_remainder() {
        // 10 over 4 parts: 3,3,2,2.
        assert_eq!(block_range(10, 4, 0), 0..3);
        assert_eq!(block_range(10, 4, 1), 3..6);
        assert_eq!(block_range(10, 4, 2), 6..8);
        assert_eq!(block_range(10, 4, 3), 8..10);
        // Exact division.
        assert_eq!(block_range(8, 4, 2), 4..6);
        // More parts than elements: trailing parts empty.
        assert_eq!(block_range(2, 4, 3), 2..2);
    }

    #[test]
    fn prev_pow2_values() {
        assert_eq!(prev_pow2(1), 1);
        assert_eq!(prev_pow2(2), 2);
        assert_eq!(prev_pow2(3), 2);
        assert_eq!(prev_pow2(7), 4);
        assert_eq!(prev_pow2(8), 8);
        assert_eq!(prev_pow2(13), 8);
    }

    fn expected_sum(p: usize, n: usize) -> Vec<f64> {
        // Sum over ranks of (rank+1)*(i+1).
        let ranks_sum: f64 = (1..=p).map(|r| r as f64).sum();
        (0..n).map(|i| ranks_sum * (i + 1) as f64).collect()
    }

    fn check_allreduce(alg: AllreduceAlgorithm, p: usize, n: usize) {
        let results = run_ranks(p, |comm| {
            let mine: Vec<f64> =
                (0..n).map(|i| (comm.rank() + 1) as f64 * (i + 1) as f64).collect();
            comm.allreduce_with(&mine, ReduceOp::Sum, alg)
        });
        let want = expected_sum(p, n);
        for (rank, got) in results.iter().enumerate() {
            for (g, w) in got.iter().zip(&want) {
                assert!((g - w).abs() < 1e-9, "alg {alg:?} p={p} n={n} rank={rank}: {g} vs {w}");
            }
        }
        // Determinism across ranks: bit-identical results everywhere.
        for got in &results {
            assert_eq!(got, &results[0], "alg {alg:?} p={p} n={n}: ranks disagree");
        }
    }

    #[test]
    fn allreduce_ring_various_sizes() {
        for p in [2, 3, 4, 5, 7, 8] {
            for n in [1, 2, 5, 16, 33] {
                check_allreduce(AllreduceAlgorithm::Ring, p, n);
            }
        }
    }

    #[test]
    fn allreduce_recursive_doubling_various_sizes() {
        for p in [2, 3, 4, 5, 6, 7, 8, 9] {
            for n in [1, 4, 17] {
                check_allreduce(AllreduceAlgorithm::RecursiveDoubling, p, n);
            }
        }
    }

    #[test]
    fn allreduce_rabenseifner_various_sizes() {
        for p in [2, 3, 4, 5, 6, 7, 8, 12, 16] {
            for n in [16, 17, 64] {
                check_allreduce(AllreduceAlgorithm::Rabenseifner, p, n);
            }
        }
    }

    #[test]
    fn allreduce_auto_matches_reference() {
        check_allreduce(AllreduceAlgorithm::Auto, 4, 8);
        check_allreduce(AllreduceAlgorithm::Auto, 6, 5000);
    }

    #[test]
    fn allreduce_max_and_min() {
        let p = 5;
        let res = run_ranks(p, |comm| {
            let mine = vec![comm.rank() as i64, -(comm.rank() as i64)];
            let mx = comm.allreduce(&mine, ReduceOp::Max);
            let mn = comm.allreduce(&mine, ReduceOp::Min);
            (mx, mn)
        });
        for (mx, mn) in res {
            assert_eq!(mx, vec![4, 0]);
            assert_eq!(mn, vec![0, -4]);
        }
    }

    #[test]
    fn allreduce_prod() {
        let res = run_ranks(3, |comm| comm.allreduce(&[(comm.rank() + 1) as u64], ReduceOp::Prod));
        for r in res {
            assert_eq!(r, vec![6]);
        }
    }

    #[test]
    fn reduce_to_each_possible_root() {
        let p = 6;
        for root in 0..p {
            let res =
                run_ranks(p, |comm| comm.reduce(root, &[comm.rank() as u32, 1], ReduceOp::Sum));
            for (rank, r) in res.iter().enumerate() {
                if rank == root {
                    assert_eq!(r.as_ref().unwrap(), &vec![15, 6]);
                } else {
                    assert!(r.is_none());
                }
            }
        }
    }

    #[test]
    fn bcast_from_each_root() {
        for p in [1, 2, 3, 5, 8] {
            for root in 0..p {
                let res = run_ranks(p, |comm| {
                    let payload = (comm.rank() == root).then(|| vec![root as u32 * 10, 7]);
                    comm.bcast(root, payload)
                });
                for r in res {
                    assert_eq!(r, vec![root as u32 * 10, 7]);
                }
            }
        }
    }

    #[test]
    fn reduce_scatter_blocks_align_with_block_range() {
        for p in [2, 3, 4, 5] {
            let n = 13;
            let res = run_ranks(p, |comm| {
                let mine: Vec<f64> = (0..n).map(|i| (i * (comm.rank() + 1)) as f64).collect();
                comm.reduce_scatter(&mine, ReduceOp::Sum)
            });
            let ranks_sum: f64 = (1..=p).map(|r| r as f64).sum();
            for (rank, got) in res.iter().enumerate() {
                let want: Vec<f64> =
                    block_range(n, p, rank).map(|i| i as f64 * ranks_sum).collect();
                assert_eq!(got, &want, "p={p} rank={rank}");
            }
        }
    }

    #[test]
    fn allgatherv_variable_sizes() {
        let p = 4;
        let res = run_ranks(p, |comm| {
            let mine: Vec<u32> =
                (0..comm.rank() + 1).map(|i| (comm.rank() * 10 + i) as u32).collect();
            comm.allgatherv(mine)
        });
        for r in res {
            assert_eq!(r[0], vec![0]);
            assert_eq!(r[1], vec![10, 11]);
            assert_eq!(r[2], vec![20, 21, 22]);
            assert_eq!(r[3], vec![30, 31, 32, 33]);
        }
    }

    #[test]
    fn allgather_concat_orders_by_rank() {
        let res = run_ranks(3, |comm| comm.allgather_concat(vec![comm.rank() as u8; 2]));
        for r in res {
            assert_eq!(r, vec![0, 0, 1, 1, 2, 2]);
        }
    }

    #[test]
    fn gatherv_and_scatterv_round_trip() {
        let p = 5;
        let res = run_ranks(p, |comm| {
            let gathered = comm.gatherv(2, vec![comm.rank() as u64]);

            comm.scatterv(2, gathered.map(|g| g.into_iter().map(|v| vec![v[0] * 2]).collect()))
        });
        for (rank, r) in res.iter().enumerate() {
            assert_eq!(r, &vec![rank as u64 * 2]);
        }
    }

    #[test]
    fn alltoallv_exchanges_personalized_data() {
        let p = 4;
        let res = run_ranks(p, |comm| {
            let sends: Vec<Vec<u32>> =
                (0..p).map(|d| vec![(comm.rank() * 100 + d) as u32; comm.rank() + 1]).collect();
            comm.alltoallv(sends)
        });
        for (rank, r) in res.iter().enumerate() {
            for (src, data) in r.iter().enumerate() {
                assert_eq!(data.len(), src + 1);
                assert!(data.iter().all(|v| *v == (src * 100 + rank) as u32));
            }
        }
    }

    #[test]
    fn barrier_completes_for_various_world_sizes() {
        for p in [1, 2, 3, 5, 8] {
            run_ranks(p, |comm| {
                for _ in 0..3 {
                    comm.barrier();
                }
            });
        }
    }

    #[test]
    fn ring_allreduce_is_deterministic_with_float_noise() {
        // Values chosen so that summation order matters in f32; ranks must
        // still agree bit-for-bit because each chunk is reduced once.
        let run = || {
            run_ranks(5, |comm| {
                let mine: Vec<f32> = (0..100)
                    .map(|i| ((comm.rank() + 1) * (i + 13)) as f32 * 1e-3 + 1e7 * (i % 3) as f32)
                    .collect();
                comm.allreduce_with(&mine, ReduceOp::Sum, AllreduceAlgorithm::Ring)
            })
        };
        let a = run();
        let b = run();
        assert_eq!(a, b, "repeat runs must agree exactly");
        for r in &a {
            assert_eq!(r, &a[0], "ranks must agree exactly");
        }
    }

    #[test]
    fn allreduce_traffic_is_attributed() {
        use crate::stats::OpClass;
        let stats = run_ranks(4, |comm| {
            let _ = comm.allreduce_with(&vec![0f32; 64], ReduceOp::Sum, AllreduceAlgorithm::Ring);
            comm.stats()
        });
        for s in &stats {
            // Ring: 2(P−1) = 6 messages of 16 elements (64/4) each.
            assert_eq!(s.messages(OpClass::Allreduce), 6);
            assert_eq!(s.bytes(OpClass::Allreduce), 6 * 16 * 4);
        }
    }
}
