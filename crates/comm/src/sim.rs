//! Event-driven virtual-time engine: executed runs at paper scale.
//!
//! [`crate::runtime::run_ranks_timed`] spawns one OS thread per rank, so
//! executed virtual-time runs top out at a few dozen ranks. This module
//! replaces the thread-per-rank execution with a discrete-event
//! scheduler over [`crate::trace::RankTrace`]s: every rank becomes a
//! resumable state machine stepping through its compiled communication
//! schedule (sends, receives, collectives, and modeled-compute
//! [`crate::trace::TraceOp::Advance`] ops), and a small worker pool
//! drives all ranks, matching sends to receives per `(src, dst, tag)`
//! stream exactly as the live runtime does. Worlds of 2048–32768 ranks
//! execute in seconds.
//!
//! ## Timing semantics (identical to the threaded runtime)
//!
//! * a send never advances the sender's clock; it stamps the message's
//!   arrival as `sender_now + link(src, dst, bytes)`;
//! * a receive completes no earlier than the arrival:
//!   `clock = max(clock, arrival)`, FIFO per `(src, dst, tag)` stream;
//! * `Advance` adds modeled local work to the clock.
//!
//! Under these rules the trace network is a Kahn process network: every
//! rank's final clock is independent of scheduling order and of the
//! worker-pool size, so the engine is deterministic by construction and
//! its clocks are *provably* the thread-per-rank clocks for the same
//! [`LinkModel`]. The `sim_matches_threaded` proptest pins this
//! end-to-end on ≤ 8-rank worlds.
//!
//! ## Collectives
//!
//! A traced collective executes *fused*: members deposit their entry
//! clocks; the last arriver computes every member's finish time with
//! per-round recurrences that mirror the executed algorithms in
//! [`crate::collectives`] message-for-message (see
//! [`collective_finish_times`]), then wakes the parked members. Because
//! a `sendrecv` is a send (clock unchanged) followed by a receive, each
//! round's arrivals depend only on the previous round's clocks — the
//! fused recurrence is exactly the fixed point the threaded execution
//! reaches, at a tiny fraction of the event count (a 2048-rank ring
//! allreduce is 2·2047 rounds of arithmetic instead of ~8M scheduled
//! messages).

use std::collections::{HashMap, VecDeque};
use std::fmt;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Condvar, Mutex};
use std::time::{Duration, Instant};

use crate::collectives::{prev_pow2, segment_at_level, AllreduceAlgorithm};
use crate::dynamic::ScalarType;
use crate::p2p::{Communicator, Tag};
use crate::trace::{CollectiveKind, RankTrace, TraceOp};
use crate::LinkModel;

/// Worker-pool size: `FG_SIM_WORKERS` if set to a positive integer,
/// otherwise `min(available_parallelism, 8)`. The result is identical
/// for any worker count; more workers only change wall time.
pub fn sim_workers_from_env() -> usize {
    match std::env::var("FG_SIM_WORKERS").ok().and_then(|v| v.parse::<usize>().ok()) {
        Some(n) if n >= 1 => n,
        _ => std::thread::available_parallelism().map(|n| n.get()).unwrap_or(4).min(8),
    }
}

/// What the discrete-event run produced: per-rank final clocks and a
/// breakdown of where virtual time went.
#[derive(Debug, Clone, PartialEq)]
pub struct SimReport {
    /// Per-rank final virtual clocks, seconds (rank order).
    pub clocks: Vec<f64>,
    /// Per-rank modeled compute (total `Advance`), seconds.
    pub compute: Vec<f64>,
    /// Per-rank exposed p2p wait: `max(0, arrival − now)` summed over
    /// receives, seconds.
    pub p2p_wait: Vec<f64>,
    /// Per-rank time inside collectives (`finish − entry` summed),
    /// seconds — the allreduce exposure of the schedule.
    pub allreduce: Vec<f64>,
    /// Trace ops executed (events), summed over ranks.
    pub ops_executed: u64,
    /// Modeled wire messages: every p2p send plus every per-round
    /// message of the fused collectives.
    pub messages: u64,
    /// Real elapsed time of the simulation.
    pub wall: Duration,
}

/// The scheduling-independent slice of a [`SimReport`]: clocks,
/// compute, p2p wait, allreduce exposure, ops executed, messages.
pub type DeterministicView<'a> = (&'a [f64], &'a [f64], &'a [f64], &'a [f64], u64, u64);

impl SimReport {
    /// The virtual makespan: the maximum final clock.
    pub fn makespan(&self) -> f64 {
        self.clocks.iter().copied().fold(0.0, f64::max)
    }

    /// Events (trace ops) executed per wall-clock second.
    pub fn events_per_sec(&self) -> f64 {
        self.ops_executed as f64 / self.wall.as_secs_f64().max(1e-12)
    }

    /// Everything scheduling-independent — the full report minus wall
    /// time. Two runs of the same traces must compare equal on this.
    pub fn deterministic_view(&self) -> DeterministicView<'_> {
        (
            &self.clocks,
            &self.compute,
            &self.p2p_wait,
            &self.allreduce,
            self.ops_executed,
            self.messages,
        )
    }
}

/// One rank stuck at an op when the world deadlocked.
#[derive(Debug, Clone)]
pub struct BlockedRank {
    /// The stuck rank.
    pub rank: usize,
    /// Index of the op it cannot complete.
    pub op_index: usize,
    /// What it is waiting for.
    pub detail: String,
}

/// Why a simulation failed.
#[derive(Debug, Clone)]
pub enum SimError {
    /// Every rank is blocked with ops remaining: the schedule deadlocks.
    Deadlock {
        /// The blocked ranks and what each waits on (capped at 16).
        blocked: Vec<BlockedRank>,
        /// Total ranks blocked (the cap may hide some).
        total_blocked: usize,
    },
    /// The traces disagree structurally (e.g. collective members
    /// disagree on payload size) — run the static verifier for a full
    /// diagnosis.
    Inconsistent {
        /// What disagreed.
        detail: String,
    },
}

impl fmt::Display for SimError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SimError::Deadlock { blocked, total_blocked } => {
                write!(f, "simulated schedule deadlocked: {total_blocked} rank(s) blocked")?;
                for b in blocked {
                    write!(f, "\n  rank {} at op {}: {}", b.rank, b.op_index, b.detail)?;
                }
                Ok(())
            }
            SimError::Inconsistent { detail } => {
                write!(f, "traces are structurally inconsistent: {detail}")
            }
        }
    }
}

impl std::error::Error for SimError {}

/// A compiled per-rank schedule op. Collectives are pre-matched into
/// instances at compile time (static matching: each rank's n-th
/// collective on a `(members, tag)` key joins instance n).
enum SimOp {
    Send { to: usize, tag: Tag, bytes: usize },
    Recv { from: usize, tag: Tag },
    Advance { secs: f64 },
    Collective { id: usize, member_index: usize },
}

/// One pre-matched collective instance.
struct Instance {
    members: std::sync::Arc<[usize]>,
    count: usize,
    ty: ScalarType,
    state: Mutex<InstanceState>,
}

struct InstanceState {
    /// Entry clocks, member order; NaN = not arrived yet.
    entry: Vec<f64>,
    arrived: usize,
    /// Ranks parked waiting for completion.
    parked: Vec<usize>,
    /// Finish clocks, member order; empty until the last member arrives.
    finish: Vec<f64>,
}

struct Compiled {
    ops: Vec<Vec<SimOp>>,
    instances: Vec<Instance>,
}

fn compile(traces: &[RankTrace]) -> Result<Compiled, SimError> {
    let mut instances: Vec<Instance> = Vec::new();
    // (members, tag) → instance ids in first-occurrence order.
    type Key = (std::sync::Arc<[usize]>, Tag);
    let mut by_key: HashMap<Key, Vec<usize>> = HashMap::new();
    let mut ops: Vec<Vec<SimOp>> = Vec::with_capacity(traces.len());
    for (rank, t) in traces.iter().enumerate() {
        if t.rank != rank {
            return Err(SimError::Inconsistent {
                detail: format!("trace at index {rank} belongs to rank {}", t.rank),
            });
        }
        let mut my_ops = Vec::with_capacity(t.entries.len());
        // This rank's occurrence counter per key (FIFO instance join).
        let mut seen: HashMap<Key, usize> = HashMap::new();
        for e in &t.entries {
            let op = match &e.op {
                TraceOp::Send { to, tag, count, ty } => {
                    SimOp::Send { to: *to, tag: *tag, bytes: count * ty.width() }
                }
                TraceOp::Recv { from, tag, .. } => SimOp::Recv { from: *from, tag: *tag },
                TraceOp::Advance { secs } => SimOp::Advance { secs: secs.0 },
                TraceOp::Collective {
                    kind: CollectiveKind::AllreduceSum,
                    members,
                    count,
                    ty,
                    tag,
                } => {
                    let key: Key = (std::sync::Arc::clone(members), *tag);
                    let occurrence = {
                        let c = seen.entry(key.clone()).or_insert(0);
                        let o = *c;
                        *c += 1;
                        o
                    };
                    let ids = by_key.entry(key).or_default();
                    let id = if occurrence < ids.len() {
                        ids[occurrence]
                    } else {
                        let id = instances.len();
                        let p = members.len();
                        instances.push(Instance {
                            members: std::sync::Arc::clone(members),
                            count: *count,
                            ty: *ty,
                            state: Mutex::new(InstanceState {
                                entry: vec![f64::NAN; p],
                                arrived: 0,
                                parked: Vec::new(),
                                finish: Vec::new(),
                            }),
                        });
                        ids.push(id);
                        id
                    };
                    let inst = &instances[id];
                    if inst.count != *count || inst.ty != *ty {
                        return Err(SimError::Inconsistent {
                            detail: format!(
                                "rank {rank} joins collective tag {tag:#x} with {count} {ty:?}, \
                                 another member recorded {} {:?}",
                                inst.count, inst.ty
                            ),
                        });
                    }
                    let member_index =
                        inst.members.iter().position(|&m| m == rank).ok_or_else(|| {
                            SimError::Inconsistent {
                                detail: format!(
                                    "rank {rank} records a collective (tag {tag:#x}) whose member \
                                     list {:?} does not contain it",
                                    &inst.members[..inst.members.len().min(16)]
                                ),
                            }
                        })?;
                    SimOp::Collective { id, member_index }
                }
            };
            my_ops.push(op);
        }
        ops.push(my_ops);
    }
    Ok(Compiled { ops, instances })
}

/// Per `(src, dst, tag)` message stream: FIFO arrival-time queue plus
/// the (unique) receiver parked on it, if any.
#[derive(Default)]
struct Stream {
    queue: VecDeque<f64>,
    waiting: Option<usize>,
}

struct RankState {
    ops: Vec<SimOp>,
    pc: usize,
    clock: f64,
    compute: f64,
    p2p_wait: f64,
    allreduce: f64,
}

struct Sched {
    ready: VecDeque<usize>,
    idle: usize,
    finished: usize,
    deadlock: bool,
}

const STREAM_SHARDS: usize = 64;

/// One lock shard of the stream map.
type StreamShard = Mutex<HashMap<(usize, usize, Tag), Stream>>;

struct Engine<'a> {
    ranks: Vec<Mutex<RankState>>,
    instances: Vec<Instance>,
    streams: Vec<StreamShard>,
    sched: Mutex<Sched>,
    cv: Condvar,
    link: &'a LinkModel,
    workers: usize,
    messages: AtomicU64,
    ops_executed: AtomicU64,
}

impl<'a> Engine<'a> {
    fn shard(
        &self,
        src: usize,
        dst: usize,
        tag: Tag,
    ) -> &Mutex<HashMap<(usize, usize, Tag), Stream>> {
        let h = src
            .wrapping_mul(0x9E37_79B9)
            .wrapping_add(dst.wrapping_mul(0x85EB_CA6B))
            .wrapping_add(tag as usize);
        &self.streams[h % STREAM_SHARDS]
    }

    fn wake(&self, rank: usize) {
        let mut s = self.sched.lock().expect("scheduler lock");
        s.ready.push_back(rank);
        self.cv.notify_one();
    }

    fn worker(&self) {
        loop {
            let rank = {
                let mut s = self.sched.lock().expect("scheduler lock");
                loop {
                    if s.finished == self.ranks.len() || s.deadlock {
                        return;
                    }
                    if let Some(r) = s.ready.pop_front() {
                        break r;
                    }
                    s.idle += 1;
                    if s.idle == self.workers {
                        // Nothing ready, nothing running, ranks remain:
                        // no future event can wake anyone. Deadlock.
                        s.deadlock = true;
                        self.cv.notify_all();
                        return;
                    }
                    s = self.cv.wait(s).expect("scheduler lock");
                    s.idle -= 1;
                }
            };
            self.run_rank(rank);
        }
    }

    /// Step `rank` until it parks on an empty stream / incomplete
    /// collective, or runs out of ops.
    fn run_rank(&self, rank: usize) {
        let mut st = self.ranks[rank].lock().expect("rank lock");
        let mut executed = 0u64;
        let mut messages = 0u64;
        loop {
            if st.pc >= st.ops.len() {
                drop(st);
                self.ops_executed.fetch_add(executed, Ordering::Relaxed);
                self.messages.fetch_add(messages, Ordering::Relaxed);
                let mut s = self.sched.lock().expect("scheduler lock");
                s.finished += 1;
                if s.finished == self.ranks.len() {
                    self.cv.notify_all();
                }
                return;
            }
            match st.ops[st.pc] {
                SimOp::Advance { secs } => {
                    st.clock += secs;
                    st.compute += secs;
                    st.pc += 1;
                    executed += 1;
                }
                SimOp::Send { to, tag, bytes } => {
                    let arrival = st.clock + self.link.time(rank, to, bytes);
                    messages += 1;
                    let woken = {
                        let mut shard = self.shard(rank, to, tag).lock().expect("stream lock");
                        let stream = shard.entry((rank, to, tag)).or_default();
                        stream.queue.push_back(arrival);
                        stream.waiting.take()
                    };
                    if let Some(w) = woken {
                        self.wake(w);
                    }
                    st.pc += 1;
                    executed += 1;
                }
                SimOp::Recv { from, tag } => {
                    let popped = {
                        let mut shard = self.shard(from, rank, tag).lock().expect("stream lock");
                        let stream = shard.entry((from, rank, tag)).or_default();
                        match stream.queue.pop_front() {
                            Some(a) => Some(a),
                            None => {
                                stream.waiting = Some(rank);
                                None
                            }
                        }
                    };
                    match popped {
                        Some(arrival) => {
                            if arrival > st.clock {
                                st.p2p_wait += arrival - st.clock;
                                st.clock = arrival;
                            }
                            st.pc += 1;
                            executed += 1;
                        }
                        None => {
                            // Parked; the matching send reschedules us.
                            drop(st);
                            self.ops_executed.fetch_add(executed, Ordering::Relaxed);
                            self.messages.fetch_add(messages, Ordering::Relaxed);
                            return;
                        }
                    }
                }
                SimOp::Collective { id, member_index } => {
                    let inst = &self.instances[id];
                    let mut is = inst.state.lock().expect("instance lock");
                    if is.entry[member_index].is_nan() {
                        is.entry[member_index] = st.clock;
                        is.arrived += 1;
                        if is.arrived == inst.members.len() {
                            // Last arriver: fuse the whole collective.
                            let bytes = inst.count * inst.ty.width();
                            let alg = AllreduceAlgorithm::Auto.resolve(bytes);
                            let (finish, msgs) = collective_finish_times(
                                alg,
                                &is.entry,
                                &inst.members,
                                inst.count,
                                inst.ty.width(),
                                self.link,
                            );
                            messages += msgs;
                            is.finish = finish;
                            let f = is.finish[member_index];
                            st.allreduce += f - is.entry[member_index];
                            st.clock = f;
                            let parked = std::mem::take(&mut is.parked);
                            drop(is);
                            if !parked.is_empty() {
                                let mut s = self.sched.lock().expect("scheduler lock");
                                s.ready.extend(parked);
                                self.cv.notify_all();
                            }
                            st.pc += 1;
                            executed += 1;
                        } else {
                            is.parked.push(rank);
                            drop(is);
                            drop(st);
                            self.ops_executed.fetch_add(executed, Ordering::Relaxed);
                            self.messages.fetch_add(messages, Ordering::Relaxed);
                            return;
                        }
                    } else {
                        // Resumed after completion: read our finish time.
                        debug_assert!(!is.finish.is_empty(), "resumed before completion");
                        let f = is.finish[member_index];
                        st.allreduce += f - is.entry[member_index];
                        st.clock = f;
                        st.pc += 1;
                        executed += 1;
                    }
                }
            }
        }
    }

    fn describe_blocked(&self, rank: usize, st: &RankState) -> String {
        match st.ops[st.pc] {
            SimOp::Recv { from, tag } => {
                format!("recv from rank {from} tag {tag:#x}: no message on the stream")
            }
            SimOp::Collective { id, .. } => {
                let inst = &self.instances[id];
                let is = inst.state.lock().expect("instance lock");
                format!("collective of {} members: only {} arrived", inst.members.len(), is.arrived)
            }
            SimOp::Send { to, .. } => format!("send to rank {to} (sends never block?)"),
            SimOp::Advance { .. } => format!("advance (never blocks?) at rank {rank}"),
        }
    }
}

/// Execute `traces` as a discrete-event run under `link`, with the
/// worker-pool size from [`sim_workers_from_env`]. Traces must be in
/// rank order (index i = rank i), as produced by the trace recorders.
pub fn simulate_traces(traces: &[RankTrace], link: &LinkModel) -> Result<SimReport, SimError> {
    simulate_traces_with(traces, link, sim_workers_from_env())
}

/// Execute `traces` with **per-rank compute slowdowns**: rank `r`'s
/// modeled-compute (`Advance`) durations are scaled by `slowdowns[r]`
/// before execution, so a gray-failed rank takes `factor`× as long per
/// step while its communication schedule is untouched. This is how
/// straggler scenarios execute at paper scale (64–2048 ranks): record
/// traces once on a healthy world, then simulate them under
/// [`crate::fault::FaultPlan::slowdown_vector`]. A vector of all `1.0`
/// reproduces [`simulate_traces`] exactly.
pub fn simulate_traces_slowed(
    traces: &[RankTrace],
    link: &LinkModel,
    slowdowns: &[f64],
) -> Result<SimReport, SimError> {
    assert_eq!(traces.len(), slowdowns.len(), "one slowdown factor per rank");
    assert!(
        slowdowns.iter().all(|&f| f >= 1.0 && f.is_finite()),
        "slowdown factors must be finite and ≥ 1"
    );
    if slowdowns.iter().all(|&f| f == 1.0) {
        return simulate_traces(traces, link);
    }
    let slowed: Vec<RankTrace> = traces
        .iter()
        .zip(slowdowns)
        .map(|(t, &factor)| {
            let mut t = t.clone();
            for e in &mut t.entries {
                if let TraceOp::Advance { secs } = &mut e.op {
                    secs.0 *= factor;
                }
            }
            t
        })
        .collect();
    simulate_traces(&slowed, link)
}

/// [`simulate_traces`] with an explicit worker-pool size. The report's
/// deterministic view is identical for every `workers ≥ 1`.
pub fn simulate_traces_with(
    traces: &[RankTrace],
    link: &LinkModel,
    workers: usize,
) -> Result<SimReport, SimError> {
    let start = Instant::now();
    let n = traces.len();
    let compiled = compile(traces)?;
    let workers = workers.clamp(1, n.max(1));
    let engine = Engine {
        ranks: compiled
            .ops
            .into_iter()
            .map(|ops| {
                Mutex::new(RankState {
                    ops,
                    pc: 0,
                    clock: 0.0,
                    compute: 0.0,
                    p2p_wait: 0.0,
                    allreduce: 0.0,
                })
            })
            .collect(),
        instances: compiled.instances,
        streams: (0..STREAM_SHARDS).map(|_| Mutex::new(HashMap::new())).collect(),
        sched: Mutex::new(Sched { ready: (0..n).collect(), idle: 0, finished: 0, deadlock: false }),
        cv: Condvar::new(),
        link,
        workers,
        messages: AtomicU64::new(0),
        ops_executed: AtomicU64::new(0),
    };
    std::thread::scope(|scope| {
        for _ in 0..workers {
            scope.spawn(|| engine.worker());
        }
    });
    let deadlocked = engine.sched.lock().expect("scheduler lock").deadlock;
    if deadlocked {
        let mut blocked = Vec::new();
        let mut total = 0usize;
        for (rank, m) in engine.ranks.iter().enumerate() {
            let st = m.lock().expect("rank lock");
            if st.pc < st.ops.len() {
                total += 1;
                if blocked.len() < 16 {
                    let detail = engine.describe_blocked(rank, &st);
                    blocked.push(BlockedRank { rank, op_index: st.pc, detail });
                }
            }
        }
        return Err(SimError::Deadlock { blocked, total_blocked: total });
    }
    let mut clocks = Vec::with_capacity(n);
    let mut compute = Vec::with_capacity(n);
    let mut p2p_wait = Vec::with_capacity(n);
    let mut allreduce = Vec::with_capacity(n);
    for m in &engine.ranks {
        let st = m.lock().expect("rank lock");
        clocks.push(st.clock);
        compute.push(st.compute);
        p2p_wait.push(st.p2p_wait);
        allreduce.push(st.allreduce);
    }
    Ok(SimReport {
        clocks,
        compute,
        p2p_wait,
        allreduce,
        ops_executed: engine.ops_executed.load(Ordering::Relaxed),
        messages: engine.messages.load(Ordering::Relaxed),
        wall: start.elapsed(),
    })
}

/// Per-member finish clocks of one fused allreduce, plus the modeled
/// wire-message count.
///
/// `entries[i]` is member i's clock when it enters the collective;
/// `members[i]` its world rank (link costs use world ranks, exactly as
/// a bound `SubComm` translates before sending). The recurrences step
/// the same rounds, chunk sizes, and partners as the executed
/// algorithms in [`crate::collectives`], under the timed-runtime rule
/// `new = max(own, partner_before_round + link)` — a `sendrecv` sends
/// first (clock unchanged), so round r's arrivals depend only on
/// round r−1 clocks. `Auto` resolves by payload size exactly like
/// `allreduce_with`.
///
/// Public so tests can pin fused timing against `run_ranks_timed` +
/// `allreduce_with` for every algorithm directly.
pub fn collective_finish_times(
    alg: AllreduceAlgorithm,
    entries: &[f64],
    members: &[usize],
    count: usize,
    width: usize,
    link: &LinkModel,
) -> (Vec<f64>, u64) {
    let p = members.len();
    assert_eq!(entries.len(), p, "one entry clock per member");
    if p <= 1 || count == 0 {
        return (entries.to_vec(), 0);
    }
    match alg.resolve(count * width) {
        AllreduceAlgorithm::Ring => ring_times(entries, members, count, width, link),
        AllreduceAlgorithm::RecursiveDoubling => {
            halving_times(entries, members, count, width, link, false)
        }
        AllreduceAlgorithm::Rabenseifner => {
            halving_times(entries, members, count, width, link, true)
        }
        AllreduceAlgorithm::Auto => unreachable!("Auto resolved above"),
    }
}

/// Ring allreduce: 2(P−1) lockstep rounds. In round r, member i
/// receives from its left neighbor the chunk that neighbor rotates out;
/// zero-length chunks (P > n) still cost a latency-only message, like
/// the executed algorithm's empty `sendrecv`.
fn ring_times(
    entries: &[f64],
    members: &[usize],
    n: usize,
    w: usize,
    link: &LinkModel,
) -> (Vec<f64>, u64) {
    let p = members.len();
    let mut t = entries.to_vec();
    let mut nt = vec![0.0f64; p];
    let mut msgs = 0u64;
    // Chunks come in exactly two sizes (`block_range`: ⌈n/p⌉ for the
    // first n%p blocks, ⌊n/p⌋ after), and every round's message rides
    // the same left→i link — so the 2(p−1)·p `link.time` evaluations
    // collapse to 2p, precomputed here with the identical operands the
    // naive loop would pass (bit-exactness is load-bearing: these times
    // are what the threaded runtime charges).
    let base = n / p;
    let rem = n % p;
    let time_hi: Vec<f64> =
        (0..p).map(|i| link.time(members[(i + p - 1) % p], members[i], (base + 1) * w)).collect();
    let time_lo: Vec<f64> =
        (0..p).map(|i| link.time(members[(i + p - 1) % p], members[i], base * w)).collect();
    for phase in 0..2usize {
        for step in 0..p - 1 {
            for (i, nti) in nt.iter_mut().enumerate() {
                let left = (i + p - 1) % p;
                // The chunk index the left neighbor sends this round.
                let send_idx =
                    if phase == 0 { (left + p - step) % p } else { (left + 1 + p - step) % p };
                let hop = if send_idx < rem { time_hi[i] } else { time_lo[i] };
                *nti = t[i].max(t[left] + hop);
                msgs += 1;
            }
            std::mem::swap(&mut t, &mut nt);
        }
    }
    (t, msgs)
}

/// Recursive doubling and Rabenseifner share their non-power-of-two
/// pre/post steps (odd ranks of the first `2·rem` fold into their even
/// neighbor and sit out); `halve` selects Rabenseifner's
/// halving/doubling payload schedule over recursive doubling's
/// full-vector exchanges.
fn halving_times(
    entries: &[f64],
    members: &[usize],
    n: usize,
    w: usize,
    link: &LinkModel,
    halve: bool,
) -> (Vec<f64>, u64) {
    let p = members.len();
    let pof2 = prev_pow2(p);
    let rem = p - pof2;
    let full = n * w;
    let mut t = entries.to_vec();
    let mut msgs = 0u64;
    if halve && pof2 == 1 {
        // Degenerate: the executed Rabenseifner returns the data as-is.
        return (t, 0);
    }

    // Pre-step: odd ranks < 2·rem send the full vector to rank−1 (their
    // clock unchanged — sends don't advance it); even ranks receive.
    let newrank: Vec<isize> = (0..p)
        .map(|i| {
            if i < 2 * rem {
                if i % 2 == 1 {
                    -1
                } else {
                    (i / 2) as isize
                }
            } else {
                (i - rem) as isize
            }
        })
        .collect();
    for i in (0..2 * rem).step_by(2) {
        let arrival = t[i + 1] + link.time(members[i + 1], members[i], full);
        t[i] = t[i].max(arrival);
        msgs += 1;
    }

    let to_real = |nr: usize| if nr < rem { nr * 2 } else { nr + rem };
    let mut nt = t.clone();
    if halve {
        // Reduce-scatter by recursive halving: partners share a segment,
        // exchange complementary halves; i receives its keep-half.
        let mut seg = vec![(0usize, n); p];
        let mut mask = pof2 >> 1;
        let mut merge_masks = Vec::new();
        while mask > 0 {
            for i in 0..p {
                let nr = newrank[i];
                if nr < 0 {
                    nt[i] = t[i];
                    continue;
                }
                let nr = nr as usize;
                let partner = to_real(nr ^ mask);
                let (lo, hi) = seg[i];
                let mid = lo + (hi - lo) / 2;
                let keep = if nr & mask == 0 { (lo, mid) } else { (mid, hi) };
                let bytes = (keep.1 - keep.0) * w;
                let arrival = t[partner] + link.time(members[partner], members[i], bytes);
                nt[i] = t[i].max(arrival);
                msgs += 1;
                seg[i] = keep;
            }
            std::mem::swap(&mut t, &mut nt);
            merge_masks.push(mask);
            mask >>= 1;
        }
        // Allgather by recursive doubling, reversing the halving;
        // i receives its partner's half of the level's segment.
        for mask in merge_masks.into_iter().rev() {
            for i in 0..p {
                let nr = newrank[i];
                if nr < 0 {
                    nt[i] = t[i];
                    continue;
                }
                let nr = nr as usize;
                let partner = to_real(nr ^ mask);
                let (plo, phi) = segment_at_level(n, nr, pof2, mask);
                let mid = plo + (phi - plo) / 2;
                let theirs = if nr & mask == 0 { (mid, phi) } else { (plo, mid) };
                let bytes = (theirs.1 - theirs.0) * w;
                let arrival = t[partner] + link.time(members[partner], members[i], bytes);
                nt[i] = t[i].max(arrival);
                msgs += 1;
            }
            std::mem::swap(&mut t, &mut nt);
        }
    } else {
        // Recursive doubling: log₂(pof2) full-vector pairwise rounds.
        let mut mask = 1usize;
        while mask < pof2 {
            for i in 0..p {
                let nr = newrank[i];
                if nr < 0 {
                    nt[i] = t[i];
                    continue;
                }
                let nr = nr as usize;
                let partner = to_real(nr ^ mask);
                let arrival = t[partner] + link.time(members[partner], members[i], full);
                nt[i] = t[i].max(arrival);
                msgs += 1;
            }
            std::mem::swap(&mut t, &mut nt);
            mask <<= 1;
        }
    }

    // Post-step: even ranks < 2·rem forward the result to their odd
    // neighbor, whose clock is still its entry value (it only sent).
    for i in (0..2 * rem).step_by(2) {
        let arrival = t[i] + link.time(members[i], members[i + 1], full);
        t[i + 1] = t[i + 1].max(arrival);
        msgs += 1;
    }
    (t, msgs)
}

/// Replay `traces` through the *threaded* timed runtime
/// ([`crate::runtime::run_ranks_timed`]) with zero-filled payloads and
/// return the per-rank final clocks — the reference execution the DES
/// engine must reproduce exactly. Only usable at thread-per-rank scale
/// (≤ a few dozen ranks); that is the point: it exists so tests can pin
/// [`simulate_traces`] against the live runtime on small worlds.
///
/// Collectives on a strict subset of the world re-bind a [`SubComm`]
/// with the group id recovered from the recorded tag (the salt field of
/// `sub_collective_tag`), so the replay draws the very tags the recorder
/// simulated.
pub fn replay_traces_timed(traces: &[RankTrace], link: &LinkModel) -> Vec<f64> {
    use crate::runtime::{run_ranks_timed, WorldComm};

    run_ranks_timed(traces.len(), link.clone(), |comm: &WorldComm| {
        let trace = &traces[comm.rank()];
        let world = comm.size();
        for e in &trace.entries {
            match &e.op {
                TraceOp::Send { to, tag, count, ty } => send_zeroed(comm, *to, *tag, *count, *ty),
                TraceOp::Recv { from, tag, ty, .. } => recv_discard(comm, *from, *tag, *ty),
                TraceOp::Advance { secs } => comm.advance(secs.0),
                TraceOp::Collective { members, count, ty, tag, .. } => {
                    if members.len() == world {
                        allreduce_zeroed(comm, *count, *ty);
                    } else {
                        // sub_collective_tag(salt, c) packs the salt in
                        // bits 32..61; recover it so the rebound group
                        // draws the recorded tags (counter restarts at 0
                        // per bind, matching the recorder).
                        let salt = (tag >> 32) & ((1u64 << 29) - 1);
                        let sub = crate::subcomm::SubComm::new(comm, members.to_vec(), salt)
                            .expect("recorded member list binds");
                        allreduce_zeroed(&sub, *count, *ty);
                    }
                }
            }
        }
    })
    .into_iter()
    .map(|((), clock)| clock)
    .collect()
}

fn send_zeroed<C: Communicator>(comm: &C, to: usize, tag: Tag, count: usize, ty: ScalarType) {
    match ty {
        ScalarType::F32 => comm.send(to, tag, vec![0f32; count]),
        ScalarType::F64 => comm.send(to, tag, vec![0f64; count]),
        ScalarType::U8 => comm.send(to, tag, vec![0u8; count]),
        ScalarType::U32 => comm.send(to, tag, vec![0u32; count]),
        ScalarType::U64 => comm.send(to, tag, vec![0u64; count]),
        ScalarType::I32 => comm.send(to, tag, vec![0i32; count]),
        ScalarType::I64 => comm.send(to, tag, vec![0i64; count]),
        ScalarType::Usize => comm.send(to, tag, vec![0usize; count]),
        ScalarType::UsizePair => comm.send(to, tag, vec![(0usize, 0usize); count]),
    }
}

fn recv_discard<C: Communicator>(comm: &C, from: usize, tag: Tag, ty: ScalarType) {
    match ty {
        ScalarType::F32 => drop(comm.recv::<f32>(from, tag)),
        ScalarType::F64 => drop(comm.recv::<f64>(from, tag)),
        ScalarType::U8 => drop(comm.recv::<u8>(from, tag)),
        ScalarType::U32 => drop(comm.recv::<u32>(from, tag)),
        ScalarType::U64 => drop(comm.recv::<u64>(from, tag)),
        ScalarType::I32 => drop(comm.recv::<i32>(from, tag)),
        ScalarType::I64 => drop(comm.recv::<i64>(from, tag)),
        ScalarType::Usize => drop(comm.recv::<usize>(from, tag)),
        ScalarType::UsizePair => drop(comm.recv::<(usize, usize)>(from, tag)),
    }
}

fn allreduce_zeroed<C: Communicator>(comm: &C, count: usize, ty: ScalarType) {
    use crate::collectives::{Collectives, ReduceOp};
    match ty {
        ScalarType::F32 => drop(comm.allreduce(&vec![0f32; count], ReduceOp::Sum)),
        ScalarType::F64 => drop(comm.allreduce(&vec![0f64; count], ReduceOp::Sum)),
        ScalarType::U8 => drop(comm.allreduce(&vec![0u8; count], ReduceOp::Sum)),
        ScalarType::U32 => drop(comm.allreduce(&vec![0u32; count], ReduceOp::Sum)),
        ScalarType::U64 => drop(comm.allreduce(&vec![0u64; count], ReduceOp::Sum)),
        ScalarType::I32 => drop(comm.allreduce(&vec![0i32; count], ReduceOp::Sum)),
        ScalarType::I64 => drop(comm.allreduce(&vec![0i64; count], ReduceOp::Sum)),
        ScalarType::Usize => drop(comm.allreduce(&vec![0usize; count], ReduceOp::Sum)),
        ScalarType::UsizePair => {
            panic!("no plan allreduces (usize, usize) — it has no reduction")
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::collectives::{Collectives, ReduceOp};
    use crate::runtime::run_ranks_timed;
    use crate::trace::{Phase, TraceRecorder};

    fn link() -> LinkModel {
        LinkModel::alpha_beta(5e-6, 1e-9)
    }

    /// A small pipeline: rank i advances i·1ms, sends to i+1, then the
    /// world allreduces.
    fn pipeline_traces(world: usize) -> Vec<RankTrace> {
        (0..world)
            .map(|rank| {
                let mut rec = TraceRecorder::new(rank, world);
                rec.scope(0, Phase::Forward);
                rec.advance(rank as f64 * 1e-3);
                rec.begin_exchange();
                let tag = rec.next_world_tag();
                if rank + 1 < world {
                    rec.send(rank + 1, tag, 1024, ScalarType::F32);
                }
                if rank > 0 {
                    rec.recv(rank - 1, tag, 1024, ScalarType::F32);
                }
                rec.scope(1, Phase::Backward);
                rec.world_allreduce(4096, ScalarType::F32);
                rec.finish()
            })
            .collect()
    }

    #[test]
    fn pipeline_matches_threaded_exactly() {
        let traces = pipeline_traces(6);
        let want = replay_traces_timed(&traces, &link());
        let got = simulate_traces_with(&traces, &link(), 4).expect("simulates");
        assert_eq!(got.clocks, want);
    }

    #[test]
    fn slowed_simulation_stretches_the_straggler_and_its_waiters() {
        let traces = pipeline_traces(6);
        let healthy = simulate_traces(&traces, &link()).expect("simulates");
        // Uniform slowdown of 1.0 is the identity.
        let id = simulate_traces_slowed(&traces, &link(), &[1.0; 6]).expect("simulates");
        assert_eq!(id.deterministic_view(), healthy.deterministic_view());
        // Rank 3 at 4×: its compute quadruples exactly, everyone behind
        // it in the pipeline and the closing allreduce finishes later.
        let mut f = vec![1.0; 6];
        f[3] = 4.0;
        let slow = simulate_traces_slowed(&traces, &link(), &f).expect("simulates");
        assert_eq!(slow.compute[3], 4.0 * healthy.compute[3]);
        assert_eq!(slow.compute[2], healthy.compute[2]);
        assert!(slow.makespan() > healthy.makespan());
        assert!(slow.clocks[5] > healthy.clocks[5], "downstream rank must finish later");
    }

    #[test]
    fn deterministic_across_worker_counts() {
        let traces = pipeline_traces(8);
        let a = simulate_traces_with(&traces, &link(), 1).expect("simulates");
        let b = simulate_traces_with(&traces, &link(), 7).expect("simulates");
        assert_eq!(a.deterministic_view(), b.deterministic_view());
    }

    #[test]
    fn advance_and_wait_accounting() {
        let traces = pipeline_traces(3);
        let r = simulate_traces_with(&traces, &link(), 2).expect("simulates");
        assert_eq!(r.compute, vec![0.0, 1e-3, 2e-3]);
        // Rank 1 receives rank 0's send after its own 1ms advance: the
        // message arrived long before, so no exposed wait.
        assert_eq!(r.p2p_wait[1], 0.0);
        assert!(r.allreduce.iter().all(|&a| a > 0.0));
        assert!(r.ops_executed > 0 && r.messages > 0);
    }

    #[test]
    fn unmatched_recv_deadlocks_with_diagnosis() {
        let mut rec = TraceRecorder::new(0, 2);
        rec.recv(1, 7, 4, ScalarType::F32);
        let t0 = rec.finish();
        let t1 = TraceRecorder::new(1, 2).finish();
        match simulate_traces_with(&[t0, t1], &link(), 2) {
            Err(SimError::Deadlock { blocked, total_blocked }) => {
                assert_eq!(total_blocked, 1);
                assert_eq!(blocked[0].rank, 0);
                assert_eq!(blocked[0].op_index, 0);
                assert!(blocked[0].detail.contains("recv from rank 1"));
            }
            other => panic!("expected deadlock, got {other:?}"),
        }
    }

    #[test]
    fn inconsistent_collective_counts_are_rejected() {
        let mut a = TraceRecorder::new(0, 2);
        a.world_allreduce(100, ScalarType::F32);
        let mut b = TraceRecorder::new(1, 2);
        b.world_allreduce(200, ScalarType::F32);
        match simulate_traces_with(&[a.finish(), b.finish()], &link(), 2) {
            Err(SimError::Inconsistent { detail }) => assert!(detail.contains("100")),
            other => panic!("expected inconsistency, got {other:?}"),
        }
    }

    /// The fused recurrences must reproduce the threaded runtime's
    /// clocks for every algorithm, world size, and payload shape —
    /// including non-powers-of-two and payloads smaller than the world.
    #[test]
    fn fused_collectives_match_threaded_all_algorithms() {
        let algs = [
            AllreduceAlgorithm::Ring,
            AllreduceAlgorithm::RecursiveDoubling,
            AllreduceAlgorithm::Rabenseifner,
        ];
        for p in 2..=8 {
            for n in [1usize, 3, 64, 1000] {
                for alg in algs {
                    let entries: Vec<f64> = (0..p).map(|i| (i % 3) as f64 * 1e-4).collect();
                    let members: Vec<usize> = (0..p).collect();
                    let (fused, msgs) =
                        collective_finish_times(alg, &entries, &members, n, 4, &link());
                    let want: Vec<f64> = run_ranks_timed(p, link(), |comm| {
                        comm.advance((comm.rank() % 3) as f64 * 1e-4);
                        comm.allreduce_with(&vec![0f32; n], ReduceOp::Sum, alg);
                    })
                    .into_iter()
                    .map(|((), c)| c)
                    .collect();
                    assert_eq!(fused, want, "alg {alg:?} p {p} n {n}");
                    assert!(msgs > 0);
                }
            }
        }
    }

    /// Fused timing with non-contiguous world ranks must charge links
    /// between the *world* ranks, as a bound subgroup does.
    #[test]
    fn fused_subgroup_uses_world_ranks_for_links() {
        let hetero = LinkModel::custom(|src, dst, bytes| {
            if src >= 4 || dst >= 4 {
                1e-3 + 1e-9 * bytes as f64
            } else {
                1e-6 + 1e-9 * bytes as f64
            }
        });
        let members = [1usize, 3, 5, 7];
        let entries = [0.0; 4];
        let (with_slow, _) =
            collective_finish_times(AllreduceAlgorithm::Ring, &entries, &members, 256, 4, &hetero);
        let (all_fast, _) = collective_finish_times(
            AllreduceAlgorithm::Ring,
            &entries,
            &[0, 1, 2, 3],
            256,
            4,
            &hetero,
        );
        assert!(with_slow.iter().sum::<f64>() > all_fast.iter().sum::<f64>());
    }

    #[test]
    fn empty_and_singleton_collectives_are_no_ops() {
        let (f, m) =
            collective_finish_times(AllreduceAlgorithm::Ring, &[1.0], &[0], 100, 4, &link());
        assert_eq!((f, m), (vec![1.0], 0));
        let (f, m) = collective_finish_times(
            AllreduceAlgorithm::Rabenseifner,
            &[1.0, 2.0],
            &[0, 1],
            0,
            4,
            &link(),
        );
        assert_eq!((f, m), (vec![1.0, 2.0], 0));
    }

    #[test]
    fn subgroup_replay_matches_des() {
        // Two disjoint subgroups allreduce concurrently, then a world
        // allreduce joins everyone.
        let world = 4;
        let traces: Vec<RankTrace> = (0..world)
            .map(|rank| {
                let mut rec = TraceRecorder::new(rank, world);
                rec.scope(0, Phase::Forward);
                rec.advance((rank + 1) as f64 * 1e-4);
                let group: Vec<usize> = if rank < 2 { vec![0, 1] } else { vec![2, 3] };
                rec.sub_allreduce(&group, (rank as u64) / 2, 512, ScalarType::F32);
                rec.world_allreduce(64, ScalarType::F64);
                rec.finish()
            })
            .collect();
        let want = replay_traces_timed(&traces, &link());
        let got = simulate_traces(&traces, &link()).expect("simulates");
        assert_eq!(got.clocks, want);
    }
}
