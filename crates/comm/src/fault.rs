//! Seeded, deterministic fault injection for the communicator.
//!
//! A [`FaultPlan`] is a pure description of what goes wrong and when:
//! per-link message drops and payload corruptions (by send ordinal),
//! per-rank delay spikes, and rank kills at a given communication
//! operation. [`FaultyComm`] wraps any [`Communicator`] and applies the
//! plan on the way through. Everything is keyed off message/operation
//! ordinals and the plan's seed — never wall-clock time or OS scheduling
//! — so a given `(plan, program)` pair produces the *same* faults on
//! every run. Chaos tests can therefore pin seeds and assert exact
//! outcomes, and a failure found by a randomized sweep is replayable
//! from its seed alone.
//!
//! Injected kills unwind with a [`CommError::RankFailed`] panic payload;
//! [`crate::runtime::run_ranks_with_faults`] catches that at the rank
//! boundary and returns it as the rank's `Result`, while peers observe
//! the death either as a channel disconnect (→ `RankFailed` naming the
//! victim) or via the deadlock watchdog (→ [`CommError::Timeout`] with a
//! wait graph).

use std::cell::{Cell, RefCell};
use std::sync::Arc;
use std::time::Duration;

use crate::error::CommError;
use crate::p2p::{CommScalar, Communicator, Tag, WireHeader};
use crate::stats::OpClass;

/// splitmix64: a well-distributed 64-bit mixer, used to derive per-event
/// corruption masks and chaos-plan choices from `(seed, link, ordinal)`.
fn mix64(mut z: u64) -> u64 {
    z = z.wrapping_add(0x9e37_79b9_7f4a_7c15);
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^ (z >> 31)
}

/// How many times a link-layer (sender-side) retransmission of a dropped
/// enveloped message is retried before the sender gives up with
/// [`CommError::Corrupt`]. With a drop *rate* `r` the chance of
/// exhaustion is `r^budget` — negligible for any plausible rate.
pub const LINK_RETRY_BUDGET: u32 = 16;

/// Salt separating rate-based drop draws from corruption draws.
const DROP_SALT: u64 = 0xD20B_5A17;
/// Salt separating rate-based corruption draws from drop draws.
const CORRUPT_SALT: u64 = 0x0C0B_B1E5;
/// Salt separating retransmission corruption draws from first-
/// transmission draws (retransmissions ride the same physical link and
/// deserve the same hazard, but must not mirror the original's fate).
const RETX_SALT: u64 = 0x2E7A_A9D1;

/// A seeded Bernoulli draw for event `n` on link `src → dst`.
fn rate_draw(seed: u64, salt: u64, src: usize, dst: usize, n: u64, rate: f64) -> bool {
    if rate <= 0.0 {
        return false;
    }
    let z = mix64(seed ^ salt ^ ((src as u64) << 40) ^ ((dst as u64) << 20) ^ n);
    // 53 high bits → a uniform in [0, 1).
    ((z >> 11) as f64) * (1.0 / (1u64 << 53) as f64) < rate
}

/// A deterministic schedule of injected faults.
///
/// Built with the chainable `kill_rank` / `drop_nth` / `corrupt_nth` /
/// `delay_every` methods; the default plan is empty (fully transparent).
#[derive(Debug, Clone, Default)]
pub struct FaultPlan {
    seed: u64,
    /// `(rank, op)`: kill `rank` when its comm-op counter reaches `op`.
    kills: Vec<(usize, u64)>,
    /// `(rank, op)`: like `kills`, but *permanent* — the fault persists
    /// across world rebuilds (a dead node, not a transient crash), so a
    /// resilient driver that replays the plan's persistent faults on
    /// every attempt sees this rank die in each incarnation.
    perma_kills: Vec<(usize, u64)>,
    /// `(src, dst, n)`: drop the `n`-th (0-based) message on link
    /// `src → dst`.
    drops: Vec<(usize, usize, u64)>,
    /// `(src, dst, n)`: corrupt the `n`-th message on link `src → dst`.
    corrupts: Vec<(usize, usize, u64)>,
    /// `(rank, every, pause)`: on `rank`, sleep `pause` before every
    /// `every`-th comm op — a deterministic stand-in for a slow NIC or a
    /// congested link.
    delays: Vec<(usize, u64, Duration)>,
    /// `(rank, factor)`: a *persistent* gray failure — `rank` runs
    /// `factor`× slower than its peers (thermal throttling, a failing
    /// DIMM, a congested ToR port). Unlike `delays`, the slowdown
    /// survives world rebuilds via [`FaultPlan::persistent`]: the node
    /// is sick, not momentarily unlucky. Applied to comm-op service
    /// time by [`FaultyComm`] and to modeled compute through
    /// [`FaultPlan::slowdown`] / [`FaultPlan::slowdown_vector`].
    slow: Vec<(usize, f64)>,
    /// `(src, dst, k)`: corrupt the `k`-th retransmission served on link
    /// `src → dst` (the replay-window pull path, which bypasses
    /// [`FaultyComm`]).
    corrupt_retransmits: Vec<(usize, usize, u64)>,
    /// Bernoulli drop probability applied to every message on every
    /// link, on top of the explicit `drops` list.
    drop_rate: f64,
    /// Bernoulli corruption probability applied to every message on
    /// every link (first transmissions *and* retransmissions), on top of
    /// the explicit lists.
    corrupt_rate: f64,
}

impl FaultPlan {
    /// An empty (transparent) plan with the given seed. The seed only
    /// matters once corruptions are scheduled: it picks the masks.
    pub fn new(seed: u64) -> FaultPlan {
        FaultPlan { seed, ..FaultPlan::default() }
    }

    /// The plan's seed.
    pub fn seed(&self) -> u64 {
        self.seed
    }

    /// Kill `rank` when its communication-operation counter (sends +
    /// receives, as counted by [`FaultyComm`]) reaches `op`.
    pub fn kill_rank(mut self, rank: usize, op: u64) -> FaultPlan {
        self.kills.push((rank, op));
        self
    }

    /// Kill `rank` **permanently** at comm op `op`: unlike
    /// [`FaultPlan::kill_rank`], the fault is part of
    /// [`FaultPlan::persistent`], so a resilient driver that carries the
    /// plan's persistent faults into rebuild attempts re-kills the rank
    /// in every incarnation — the model of a dead node that no amount of
    /// same-size restarting can route around.
    pub fn kill_rank_permanently(mut self, rank: usize, op: u64) -> FaultPlan {
        self.perma_kills.push((rank, op));
        self
    }

    /// Drop the `n`-th (0-based) message sent on link `src → dst`.
    pub fn drop_nth(mut self, src: usize, dst: usize, n: u64) -> FaultPlan {
        self.drops.push((src, dst, n));
        self
    }

    /// Corrupt the payload of the `n`-th message on link `src → dst`
    /// (first element bit-flipped under a seed-derived mask).
    pub fn corrupt_nth(mut self, src: usize, dst: usize, n: u64) -> FaultPlan {
        self.corrupts.push((src, dst, n));
        self
    }

    /// On `rank`, sleep `pause` before every `every`-th comm op.
    pub fn delay_every(mut self, rank: usize, every: u64, pause: Duration) -> FaultPlan {
        assert!(every > 0, "delay period must be positive");
        self.delays.push((rank, every, pause));
        self
    }

    /// Make `rank` a **persistent straggler**: everything it does —
    /// comm-op service ([`FaultyComm`] stretches each op) and compute
    /// (consumers scale modeled or measured compute by
    /// [`FaultPlan::slowdown`]) — takes `factor`× as long. The fault
    /// survives [`FaultPlan::persistent`], so rebuilding the world does
    /// not cure it; only weighted re-decomposition or eviction can.
    pub fn slow_rank(mut self, rank: usize, factor: f64) -> FaultPlan {
        assert!(factor >= 1.0 && factor.is_finite(), "slowdown factor must be ≥ 1");
        self.slow.push((rank, factor));
        self
    }

    /// Corrupt the `k`-th (0-based) *retransmission* served on link
    /// `src → dst` — the payload a receiver pulls from the sender's
    /// replay window after a checksum mismatch. Lets tests exercise the
    /// "retransmission itself corrupted" retry loop and budget
    /// exhaustion.
    pub fn corrupt_retransmit_nth(mut self, src: usize, dst: usize, k: u64) -> FaultPlan {
        self.corrupt_retransmits.push((src, dst, k));
        self
    }

    /// Drop every message with probability `rate` (seeded Bernoulli per
    /// link and send ordinal), in addition to any explicit drops.
    pub fn drop_rate(mut self, rate: f64) -> FaultPlan {
        assert!((0.0..=1.0).contains(&rate), "drop rate must be a probability");
        self.drop_rate = rate;
        self
    }

    /// Corrupt every message with probability `rate` (seeded Bernoulli
    /// per link and ordinal; retransmissions draw independently), in
    /// addition to any explicit corruptions.
    pub fn corrupt_rate(mut self, rate: f64) -> FaultPlan {
        assert!((0.0..=1.0).contains(&rate), "corrupt rate must be a probability");
        self.corrupt_rate = rate;
        self
    }

    /// A pseudo-random chaos plan for a world of `size` ranks: one
    /// victim killed at a seed-chosen op below `horizon`, plus a
    /// seed-chosen link drop and corruption. Fully determined by
    /// `(seed, size, horizon)`.
    pub fn chaos(seed: u64, size: usize, horizon: u64) -> FaultPlan {
        assert!(size > 1, "chaos needs at least two ranks");
        assert!(horizon > 0, "horizon must be positive");
        let victim = (mix64(seed) as usize) % size;
        let kill_op = mix64(seed ^ 1) % horizon;
        let src = (mix64(seed ^ 2) as usize) % size;
        let dst = (src + 1 + (mix64(seed ^ 3) as usize) % (size - 1)) % size;
        FaultPlan::new(seed)
            .kill_rank(victim, kill_op)
            .drop_nth(src, dst, mix64(seed ^ 4) % horizon)
            .corrupt_nth(dst, src, mix64(seed ^ 5) % horizon)
    }

    /// The op at which `rank` dies, if the plan kills it (earliest wins,
    /// transient and permanent kills alike).
    pub fn kill_at(&self, rank: usize) -> Option<u64> {
        self.kills
            .iter()
            .chain(self.perma_kills.iter())
            .filter(|(r, _)| *r == rank)
            .map(|(_, op)| *op)
            .min()
    }

    /// Whether `rank` is scheduled for a *permanent* kill.
    pub fn kill_is_permanent(&self, rank: usize) -> bool {
        self.perma_kills.iter().any(|(r, _)| *r == rank)
    }

    /// Ranks the plan kills permanently (sorted, deduplicated) — the
    /// set a degradation rung must shrink the world around.
    pub fn permanently_dead(&self) -> Vec<usize> {
        let mut dead: Vec<usize> = self.perma_kills.iter().map(|(r, _)| *r).collect();
        dead.sort_unstable();
        dead.dedup();
        dead
    }

    /// The slowdown factor for `rank`: `1.0` for a healthy rank, the
    /// largest scheduled factor for a straggler (stacked gray failures
    /// do not multiply — the worst one dominates).
    pub fn slowdown(&self, rank: usize) -> f64 {
        self.slow.iter().filter(|&&(r, _)| r == rank).map(|&(_, f)| f).fold(1.0, f64::max)
    }

    /// Per-rank slowdown factors for a world of `world` ranks —
    /// `vec![1.0; world]` with stragglers raised to their factor. The
    /// form the DES engine and modeled-compute oracles consume.
    pub fn slowdown_vector(&self, world: usize) -> Vec<f64> {
        (0..world).map(|r| self.slowdown(r)).collect()
    }

    /// Ranks with a scheduled slowdown (sorted, deduplicated).
    pub fn slow_ranks(&self) -> Vec<usize> {
        let mut ranks: Vec<usize> = self.slow.iter().map(|&(r, _)| r).collect();
        ranks.sort_unstable();
        ranks.dedup();
        ranks
    }

    /// The plan's *persistent* faults only: permanent kills and rank
    /// slowdowns (and the seed, which keys their identity). Transient
    /// faults — one-shot kills, drops, corruptions, delays, rate
    /// hazards — model events that already happened and must not
    /// replay, so a resilient driver runs rebuild attempts under this
    /// projection rather than the full plan. Slowdowns persist because
    /// a gray failure is a property of the node, not of the attempt.
    pub fn persistent(&self) -> FaultPlan {
        FaultPlan {
            seed: self.seed,
            perma_kills: self.perma_kills.clone(),
            slow: self.slow.clone(),
            ..FaultPlan::default()
        }
    }

    /// Project the plan onto a shrunken world: `survivors[new_rank]` is
    /// the old rank that becomes `new_rank`. Faults addressing ranks
    /// outside the survivor set are dropped (their targets no longer
    /// exist); the rest are renumbered into the new world's rank space.
    /// Rates and the seed carry over unchanged.
    pub fn restrict_to_survivors(&self, survivors: &[usize]) -> FaultPlan {
        let remap = |old: usize| survivors.iter().position(|&s| s == old);
        let remap_rank_list = |list: &[(usize, u64)]| {
            list.iter().filter_map(|&(r, op)| remap(r).map(|nr| (nr, op))).collect()
        };
        let remap_link_list = |list: &[(usize, usize, u64)]| {
            list.iter().filter_map(|&(s, d, n)| Some((remap(s)?, remap(d)?, n))).collect::<Vec<_>>()
        };
        FaultPlan {
            seed: self.seed,
            kills: remap_rank_list(&self.kills),
            perma_kills: remap_rank_list(&self.perma_kills),
            drops: remap_link_list(&self.drops),
            corrupts: remap_link_list(&self.corrupts),
            delays: self
                .delays
                .iter()
                .filter_map(|&(r, every, pause)| remap(r).map(|nr| (nr, every, pause)))
                .collect(),
            slow: self.slow.iter().filter_map(|&(r, f)| remap(r).map(|nr| (nr, f))).collect(),
            corrupt_retransmits: remap_link_list(&self.corrupt_retransmits),
            drop_rate: self.drop_rate,
            corrupt_rate: self.corrupt_rate,
        }
    }

    /// Whether the `n`-th message on `src → dst` is dropped.
    pub fn drops(&self, src: usize, dst: usize, n: u64) -> bool {
        self.drops.iter().any(|&(s, d, m)| s == src && d == dst && m == n)
            || rate_draw(self.seed, DROP_SALT, src, dst, n, self.drop_rate)
    }

    /// The corruption mask for the `n`-th message on `src → dst`, if
    /// that message is scheduled for corruption. Seed-derived, so the
    /// same plan corrupts the same message the same way on every run.
    pub fn corrupt_mask(&self, src: usize, dst: usize, n: u64) -> Option<u64> {
        if self.corrupts.iter().any(|&(s, d, m)| s == src && d == dst && m == n)
            || rate_draw(self.seed, CORRUPT_SALT, src, dst, n, self.corrupt_rate)
        {
            Some(mix64(self.seed ^ ((src as u64) << 40) ^ ((dst as u64) << 20) ^ n))
        } else {
            None
        }
    }

    /// The corruption mask for the `k`-th retransmission served on
    /// `src → dst`, if scheduled (explicitly or by `corrupt_rate`).
    pub fn retransmit_corrupt_mask(&self, src: usize, dst: usize, k: u64) -> Option<u64> {
        if self.corrupt_retransmits.iter().any(|&(s, d, m)| s == src && d == dst && m == k)
            || rate_draw(self.seed, RETX_SALT, src, dst, k, self.corrupt_rate)
        {
            Some(mix64(self.seed ^ RETX_SALT ^ ((src as u64) << 40) ^ ((dst as u64) << 20) ^ k))
        } else {
            None
        }
    }

    /// The pause (if any) `rank` takes before comm op `n`.
    pub fn delay(&self, rank: usize, n: u64) -> Option<Duration> {
        self.delays
            .iter()
            .filter(|&&(r, every, _)| r == rank && n % every == every - 1)
            .map(|&(_, _, pause)| pause)
            .max()
    }

    /// True when the plan injects nothing at all.
    pub fn is_transparent(&self) -> bool {
        self.kills.is_empty()
            && self.perma_kills.is_empty()
            && self.drops.is_empty()
            && self.corrupts.is_empty()
            && self.delays.is_empty()
            && self.slow.is_empty()
            && self.corrupt_retransmits.is_empty()
            && self.drop_rate == 0.0
            && self.corrupt_rate == 0.0
    }
}

/// A [`Communicator`] wrapper that applies a [`FaultPlan`].
///
/// Wraps a borrowed inner communicator (one per rank, like the inner
/// comm itself) and counts this rank's communication operations; the
/// plan is consulted on every send and receive. Collectives work
/// unchanged through the wrapper — faults injected into a collective's
/// constituent point-to-point messages propagate into its result, which
/// is exactly how a corrupted allreduce behaves on a real machine.
pub struct FaultyComm<'a, C: Communicator> {
    inner: &'a C,
    plan: Arc<FaultPlan>,
    /// This rank's comm-op counter (sends + receives), the clock that
    /// kill and delay faults are keyed on.
    ops: Cell<u64>,
    /// Per-destination send ordinals, the clock for drop/corrupt faults.
    sent: RefCell<Vec<u64>>,
    /// This rank's slowdown factor, cached from the plan (1.0 = healthy).
    slow_factor: f64,
}

/// Baseline per-op service time a straggling rank's comm ops are
/// stretched against: a `factor`× slow rank sleeps
/// `(factor − 1) × SLOW_OP_SERVICE` around every operation. Small enough
/// that tests stay fast, large enough that a persistent straggler is
/// measurably slow over a step's worth of operations.
pub const SLOW_OP_SERVICE: Duration = Duration::from_micros(2);

impl<'a, C: Communicator> FaultyComm<'a, C> {
    /// Wrap `inner` under `plan`.
    pub fn new(inner: &'a C, plan: Arc<FaultPlan>) -> FaultyComm<'a, C> {
        let size = inner.size();
        let slow_factor = plan.slowdown(inner.rank());
        FaultyComm {
            inner,
            plan,
            ops: Cell::new(0),
            sent: RefCell::new(vec![0; size]),
            slow_factor,
        }
    }

    /// The wrapped communicator.
    pub fn inner(&self) -> &C {
        self.inner
    }

    /// Comm ops performed so far by this rank (sends + receives).
    pub fn ops(&self) -> u64 {
        self.ops.get()
    }

    /// Advance the op clock; fire a scheduled kill or delay.
    fn tick(&self) {
        let n = self.ops.get();
        self.ops.set(n + 1);
        if let Some(at) = self.plan.kill_at(self.inner.rank()) {
            if n >= at {
                // Name permanence in the diagnostic: a resilient driver
                // (and a human reading the failure history) can tell a
                // transient crash from a dead node.
                let permanence = if self.plan.kill_is_permanent(self.inner.rank()) {
                    " (permanent: this rank dies on every rebuild)"
                } else {
                    ""
                };
                std::panic::panic_any(CommError::RankFailed {
                    rank: self.inner.rank(),
                    observer: self.inner.rank(),
                    detail: format!("killed by fault injection at comm op {at}{permanence}"),
                });
            }
        }
        if let Some(pause) = self.plan.delay(self.inner.rank(), n) {
            std::thread::sleep(pause);
        }
        if self.slow_factor > 1.0 {
            // A gray-failed rank services every operation slower, not
            // just every k-th: stretch each op by the excess factor.
            std::thread::sleep(SLOW_OP_SERVICE.mul_f64(self.slow_factor - 1.0));
        }
    }
}

impl<C: Communicator> Communicator for FaultyComm<'_, C> {
    fn rank(&self) -> usize {
        self.inner.rank()
    }

    fn size(&self) -> usize {
        self.inner.size()
    }

    fn send<T: CommScalar>(&self, dst: usize, tag: Tag, mut data: Vec<T>) {
        self.tick();
        let n = {
            let mut sent = self.sent.borrow_mut();
            let n = sent[dst];
            sent[dst] += 1;
            n
        };
        if self.plan.drops(self.rank(), dst, n) {
            self.inner.note_dropped_send(dst);
            return;
        }
        if let Some(mask) = self.plan.corrupt_mask(self.rank(), dst, n) {
            if let Some(first) = data.first_mut() {
                *first = first.corrupt(mask);
            }
        }
        self.inner.send(dst, tag, data);
    }

    fn recv<T: CommScalar>(&self, src: usize, tag: Tag) -> Vec<T> {
        self.tick();
        self.inner.recv(src, tag)
    }

    fn send_enveloped<T: CommScalar>(
        &self,
        dst: usize,
        tag: Tag,
        mut data: Vec<T>,
        header: WireHeader,
    ) {
        // One op tick per logical send; link-layer retries below do not
        // advance the kill/delay clock (they model NIC-level behavior,
        // not application activity).
        self.tick();
        let mut retries = 0u32;
        loop {
            let n = {
                let mut sent = self.sent.borrow_mut();
                let n = sent[dst];
                sent[dst] += 1;
                n
            };
            if self.plan.drops(self.rank(), dst, n) {
                // The envelope makes the drop *detectable* at the
                // sender: an unacknowledged sequence number. Model the
                // link-layer retransmit right here — resend immediately
                // under a fresh fault ordinal — so the receiver never
                // observes a sequence gap and never has to time out.
                self.inner.note_dropped_send(dst);
                retries += 1;
                if retries > LINK_RETRY_BUDGET {
                    std::panic::panic_any(CommError::Corrupt {
                        link: (self.rank(), dst),
                        seq: header.seq,
                        detail: format!(
                            "tag {tag}: message dropped on all {LINK_RETRY_BUDGET} link-layer \
                             retransmissions",
                        ),
                    });
                }
                self.inner.note_retransmit();
                continue;
            }
            if let Some(mask) = self.plan.corrupt_mask(self.rank(), dst, n) {
                if let Some(first) = data.first_mut() {
                    *first = first.corrupt(mask);
                }
            }
            self.inner.send_enveloped(dst, tag, data, header);
            return;
        }
    }

    fn recv_enveloped<T: CommScalar>(&self, src: usize, tag: Tag) -> (Vec<T>, Option<WireHeader>) {
        self.tick();
        self.inner.recv_enveloped(src, tag)
    }

    fn record(&self, class: OpClass, messages: u64, bytes: u64) {
        self.inner.record(class, messages, bytes);
    }

    fn note_dropped_send(&self, dst: usize) {
        self.inner.note_dropped_send(dst);
    }

    fn note_retransmit(&self) {
        self.inner.note_retransmit();
    }

    fn note_corrupt_repaired(&self) {
        self.inner.note_corrupt_repaired();
    }

    fn note_repair_time(&self, nanos: u64) {
        self.inner.note_repair_time(nanos);
    }

    fn note_replay_held(&self, bytes: u64) {
        self.inner.note_replay_held(bytes);
    }

    fn stats_snapshot(&self) -> Option<crate::stats::TrafficStats> {
        self.inner.stats_snapshot()
    }

    fn busy_nanos(&self) -> u64 {
        self.inner.busy_nanos()
    }

    fn note_straggler_flag(&self) {
        self.inner.note_straggler_flag();
    }

    fn note_rank_slowness(&self, ratios: &[f64]) {
        self.inner.note_rank_slowness(ratios);
    }

    fn next_collective_tag(&self) -> Tag {
        self.inner.next_collective_tag()
    }

    fn with_class<R>(&self, class: OpClass, f: impl FnOnce() -> R) -> R {
        self.inner.with_class(class, f)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_plan_is_transparent() {
        let plan = FaultPlan::default();
        assert!(plan.is_transparent());
        assert_eq!(plan.kill_at(0), None);
        assert!(!plan.drops(0, 1, 0));
        assert_eq!(plan.corrupt_mask(0, 1, 0), None);
        assert_eq!(plan.delay(0, 0), None);
    }

    #[test]
    fn builders_register_their_faults() {
        let plan = FaultPlan::new(7)
            .kill_rank(2, 11)
            .kill_rank(2, 5)
            .drop_nth(0, 1, 3)
            .corrupt_nth(1, 0, 4)
            .delay_every(3, 10, Duration::from_micros(50));
        assert!(!plan.is_transparent());
        // Earliest kill wins.
        assert_eq!(plan.kill_at(2), Some(5));
        assert_eq!(plan.kill_at(0), None);
        assert!(plan.drops(0, 1, 3));
        assert!(!plan.drops(0, 1, 2));
        assert!(!plan.drops(1, 0, 3));
        assert!(plan.corrupt_mask(1, 0, 4).is_some());
        assert!(plan.corrupt_mask(1, 0, 5).is_none());
        // delay_every(rank, 10, ..) pauses ops 9, 19, 29, ...
        assert!(plan.delay(3, 9).is_some());
        assert!(plan.delay(3, 10).is_none());
        assert!(plan.delay(0, 9).is_none());
    }

    #[test]
    fn corruption_masks_depend_on_seed_and_link() {
        let a = FaultPlan::new(1).corrupt_nth(0, 1, 0);
        let b = FaultPlan::new(1).corrupt_nth(0, 1, 0);
        let c = FaultPlan::new(2).corrupt_nth(0, 1, 0);
        assert_eq!(a.corrupt_mask(0, 1, 0), b.corrupt_mask(0, 1, 0));
        assert_ne!(a.corrupt_mask(0, 1, 0), c.corrupt_mask(0, 1, 0));
        let d = FaultPlan::new(1).corrupt_nth(1, 0, 0);
        assert_ne!(a.corrupt_mask(0, 1, 0), d.corrupt_mask(1, 0, 0));
    }

    #[test]
    fn retransmit_corruption_is_scheduled_independently() {
        let plan = FaultPlan::new(9).corrupt_retransmit_nth(0, 1, 0);
        assert!(!plan.is_transparent());
        assert!(plan.retransmit_corrupt_mask(0, 1, 0).is_some());
        assert!(plan.retransmit_corrupt_mask(0, 1, 1).is_none());
        assert!(plan.retransmit_corrupt_mask(1, 0, 0).is_none());
        // First-transmission corruption is untouched.
        assert!(plan.corrupt_mask(0, 1, 0).is_none());
        // Retransmission masks are salted away from first-transmission
        // masks so the retry does not deterministically mirror the
        // original corruption.
        let both = FaultPlan::new(9).corrupt_nth(0, 1, 0).corrupt_retransmit_nth(0, 1, 0);
        assert_ne!(both.corrupt_mask(0, 1, 0), both.retransmit_corrupt_mask(0, 1, 0));
    }

    #[test]
    fn rate_based_faults_are_seeded_and_roughly_calibrated() {
        let plan = FaultPlan::new(1234).drop_rate(0.25).corrupt_rate(0.25);
        assert!(!plan.is_transparent());
        let drops = (0..4000).filter(|&n| plan.drops(0, 1, n)).count();
        let corrupts = (0..4000).filter(|&n| plan.corrupt_mask(0, 1, n).is_some()).count();
        let retx = (0..4000).filter(|&n| plan.retransmit_corrupt_mask(0, 1, n).is_some()).count();
        for hits in [drops, corrupts, retx] {
            assert!((800..1200).contains(&hits), "expected ~1000 of 4000, got {hits}");
        }
        // Same seed → same draws; the three salts decorrelate the streams.
        let again = FaultPlan::new(1234).drop_rate(0.25).corrupt_rate(0.25);
        assert_eq!(
            (0..100).map(|n| plan.drops(0, 1, n)).collect::<Vec<_>>(),
            (0..100).map(|n| again.drops(0, 1, n)).collect::<Vec<_>>(),
        );
        assert_ne!(
            (0..100).map(|n| plan.drops(0, 1, n)).collect::<Vec<_>>(),
            (0..100).map(|n| plan.corrupt_mask(0, 1, n).is_some()).collect::<Vec<_>>(),
        );
        // Zero rates never fire.
        let quiet = FaultPlan::new(1234);
        assert!((0..100).all(|n| !quiet.drops(0, 1, n)));
        assert!(quiet.is_transparent());
    }

    #[test]
    fn permanent_kills_register_and_survive_the_persistent_projection() {
        let plan = FaultPlan::new(5)
            .kill_rank(0, 3)
            .kill_rank_permanently(2, 7)
            .drop_nth(0, 1, 4)
            .corrupt_rate(0.1);
        assert!(!plan.is_transparent());
        assert_eq!(plan.kill_at(2), Some(7));
        assert!(plan.kill_is_permanent(2));
        assert!(!plan.kill_is_permanent(0));
        assert_eq!(plan.permanently_dead(), vec![2]);
        // persistent() keeps only the permanent kills (and the seed).
        let p = plan.persistent();
        assert_eq!(p.seed(), 5);
        assert_eq!(p.kill_at(0), None, "transient kill must not replay");
        assert_eq!(p.kill_at(2), Some(7));
        assert!(!p.drops(0, 1, 4));
        assert_eq!(p.corrupt_mask(0, 1, 0), None, "rates are transient hazards");
        // A plan without permanent kills projects to transparency.
        assert!(FaultPlan::new(5).kill_rank(1, 2).persistent().is_transparent());
        // Earliest kill still wins across both lists.
        let both = FaultPlan::new(0).kill_rank(1, 9).kill_rank_permanently(1, 4);
        assert_eq!(both.kill_at(1), Some(4));
    }

    #[test]
    fn slow_rank_is_persistent_and_survives_renumbering() {
        let plan = FaultPlan::new(3).slow_rank(2, 4.0).slow_rank(2, 3.0).slow_rank(0, 1.5);
        assert!(!plan.is_transparent());
        // Worst factor dominates; healthy ranks read 1.0.
        assert_eq!(plan.slowdown(2), 4.0);
        assert_eq!(plan.slowdown(0), 1.5);
        assert_eq!(plan.slowdown(1), 1.0);
        assert_eq!(plan.slowdown_vector(4), vec![1.5, 1.0, 4.0, 1.0]);
        assert_eq!(plan.slow_ranks(), vec![0, 2]);
        // A gray failure is a property of the node: it survives the
        // persistent projection (a rebuild does not cure it)...
        let p = plan.persistent();
        assert_eq!(p.slowdown(2), 4.0);
        assert!(!p.is_transparent());
        // ...and renumbers with the world when other ranks are evicted.
        let small = plan.restrict_to_survivors(&[0, 2, 3]);
        assert_eq!(small.slowdown_vector(3), vec![1.5, 4.0, 1.0]);
        // Evicting the straggler itself removes the fault.
        let cured = plan.restrict_to_survivors(&[1, 3]);
        assert_eq!(cured.slowdown_vector(2), vec![1.0, 1.0]);
        assert_eq!(cured.slow_ranks(), Vec::<usize>::new());
    }

    #[test]
    fn restrict_to_survivors_renumbers_and_drops_dead_targets() {
        // World of 4 shrinking to [0, 1, 3] (rank 2 died).
        let plan = FaultPlan::new(11)
            .kill_rank_permanently(2, 5)
            .kill_rank(3, 8)
            .drop_nth(0, 3, 2)
            .drop_nth(2, 1, 0)
            .corrupt_nth(3, 0, 1)
            .delay_every(3, 4, Duration::from_micros(10))
            .delay_every(2, 4, Duration::from_micros(10))
            .drop_rate(0.05);
        let small = plan.restrict_to_survivors(&[0, 1, 3]);
        assert_eq!(small.seed(), 11);
        // The dead rank's faults vanish entirely.
        assert!(small.permanently_dead().is_empty());
        assert!((0..3).all(|r| !small.kill_is_permanent(r)));
        assert!(!small.drops(2, 1, 0), "link faults touching the dead rank are dropped");
        // Old rank 3 is new rank 2.
        assert_eq!(small.kill_at(2), Some(8));
        assert!(small.drops(0, 2, 2));
        assert!(small.corrupt_mask(2, 0, 1).is_some());
        assert!(small.delay(2, 3).is_some());
        assert!(small.delay(1, 3).is_none());
        // Rates carry over (seeded draws stay deterministic).
        let hits: Vec<bool> = (0..50).map(|n| small.drops(0, 1, n)).collect();
        let again: Vec<bool> = (0..50).map(|n| plan.drops(0, 1, n)).collect();
        assert_eq!(hits, again, "same seed, same link ids → same draws");
    }

    #[test]
    fn chaos_plans_are_reproducible_and_in_range() {
        let p1 = FaultPlan::chaos(42, 4, 100);
        let p2 = FaultPlan::chaos(42, 4, 100);
        assert_eq!(format!("{p1:?}"), format!("{p2:?}"));
        assert!(!p1.is_transparent());
        let p3 = FaultPlan::chaos(43, 4, 100);
        assert_ne!(format!("{p1:?}"), format!("{p3:?}"));
        // The victim and ops are within bounds.
        let victim = (0..4).find(|r| p1.kill_at(*r).is_some()).expect("one victim");
        assert!(p1.kill_at(victim).unwrap() < 100);
    }
}
