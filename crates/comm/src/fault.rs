//! Seeded, deterministic fault injection for the communicator.
//!
//! A [`FaultPlan`] is a pure description of what goes wrong and when:
//! per-link message drops and payload corruptions (by send ordinal),
//! per-rank delay spikes, and rank kills at a given communication
//! operation. [`FaultyComm`] wraps any [`Communicator`] and applies the
//! plan on the way through. Everything is keyed off message/operation
//! ordinals and the plan's seed — never wall-clock time or OS scheduling
//! — so a given `(plan, program)` pair produces the *same* faults on
//! every run. Chaos tests can therefore pin seeds and assert exact
//! outcomes, and a failure found by a randomized sweep is replayable
//! from its seed alone.
//!
//! Injected kills unwind with a [`CommError::RankFailed`] panic payload;
//! [`crate::runtime::run_ranks_with_faults`] catches that at the rank
//! boundary and returns it as the rank's `Result`, while peers observe
//! the death either as a channel disconnect (→ `RankFailed` naming the
//! victim) or via the deadlock watchdog (→ [`CommError::Timeout`] with a
//! wait graph).

use std::cell::{Cell, RefCell};
use std::sync::Arc;
use std::time::Duration;

use crate::error::CommError;
use crate::p2p::{CommScalar, Communicator, Tag, WireHeader};
use crate::stats::OpClass;

/// splitmix64: a well-distributed 64-bit mixer, used to derive per-event
/// corruption masks and chaos-plan choices from `(seed, link, ordinal)`.
fn mix64(mut z: u64) -> u64 {
    z = z.wrapping_add(0x9e37_79b9_7f4a_7c15);
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^ (z >> 31)
}

/// How many times a link-layer (sender-side) retransmission of a dropped
/// enveloped message is retried before the sender gives up with
/// [`CommError::Corrupt`]. With a drop *rate* `r` the chance of
/// exhaustion is `r^budget` — negligible for any plausible rate.
pub const LINK_RETRY_BUDGET: u32 = 16;

/// Salt separating rate-based drop draws from corruption draws.
const DROP_SALT: u64 = 0xD20B_5A17;
/// Salt separating rate-based corruption draws from drop draws.
const CORRUPT_SALT: u64 = 0x0C0B_B1E5;
/// Salt separating retransmission corruption draws from first-
/// transmission draws (retransmissions ride the same physical link and
/// deserve the same hazard, but must not mirror the original's fate).
const RETX_SALT: u64 = 0x2E7A_A9D1;

/// A seeded Bernoulli draw for event `n` on link `src → dst`.
fn rate_draw(seed: u64, salt: u64, src: usize, dst: usize, n: u64, rate: f64) -> bool {
    if rate <= 0.0 {
        return false;
    }
    let z = mix64(seed ^ salt ^ ((src as u64) << 40) ^ ((dst as u64) << 20) ^ n);
    // 53 high bits → a uniform in [0, 1).
    ((z >> 11) as f64) * (1.0 / (1u64 << 53) as f64) < rate
}

/// A deterministic schedule of injected faults.
///
/// Built with the chainable `kill_rank` / `drop_nth` / `corrupt_nth` /
/// `delay_every` methods; the default plan is empty (fully transparent).
#[derive(Debug, Clone, Default)]
pub struct FaultPlan {
    seed: u64,
    /// `(rank, op)`: kill `rank` when its comm-op counter reaches `op`.
    kills: Vec<(usize, u64)>,
    /// `(src, dst, n)`: drop the `n`-th (0-based) message on link
    /// `src → dst`.
    drops: Vec<(usize, usize, u64)>,
    /// `(src, dst, n)`: corrupt the `n`-th message on link `src → dst`.
    corrupts: Vec<(usize, usize, u64)>,
    /// `(rank, every, pause)`: on `rank`, sleep `pause` before every
    /// `every`-th comm op — a deterministic stand-in for a slow NIC or a
    /// congested link.
    delays: Vec<(usize, u64, Duration)>,
    /// `(src, dst, k)`: corrupt the `k`-th retransmission served on link
    /// `src → dst` (the replay-window pull path, which bypasses
    /// [`FaultyComm`]).
    corrupt_retransmits: Vec<(usize, usize, u64)>,
    /// Bernoulli drop probability applied to every message on every
    /// link, on top of the explicit `drops` list.
    drop_rate: f64,
    /// Bernoulli corruption probability applied to every message on
    /// every link (first transmissions *and* retransmissions), on top of
    /// the explicit lists.
    corrupt_rate: f64,
}

impl FaultPlan {
    /// An empty (transparent) plan with the given seed. The seed only
    /// matters once corruptions are scheduled: it picks the masks.
    pub fn new(seed: u64) -> FaultPlan {
        FaultPlan { seed, ..FaultPlan::default() }
    }

    /// The plan's seed.
    pub fn seed(&self) -> u64 {
        self.seed
    }

    /// Kill `rank` when its communication-operation counter (sends +
    /// receives, as counted by [`FaultyComm`]) reaches `op`.
    pub fn kill_rank(mut self, rank: usize, op: u64) -> FaultPlan {
        self.kills.push((rank, op));
        self
    }

    /// Drop the `n`-th (0-based) message sent on link `src → dst`.
    pub fn drop_nth(mut self, src: usize, dst: usize, n: u64) -> FaultPlan {
        self.drops.push((src, dst, n));
        self
    }

    /// Corrupt the payload of the `n`-th message on link `src → dst`
    /// (first element bit-flipped under a seed-derived mask).
    pub fn corrupt_nth(mut self, src: usize, dst: usize, n: u64) -> FaultPlan {
        self.corrupts.push((src, dst, n));
        self
    }

    /// On `rank`, sleep `pause` before every `every`-th comm op.
    pub fn delay_every(mut self, rank: usize, every: u64, pause: Duration) -> FaultPlan {
        assert!(every > 0, "delay period must be positive");
        self.delays.push((rank, every, pause));
        self
    }

    /// Corrupt the `k`-th (0-based) *retransmission* served on link
    /// `src → dst` — the payload a receiver pulls from the sender's
    /// replay window after a checksum mismatch. Lets tests exercise the
    /// "retransmission itself corrupted" retry loop and budget
    /// exhaustion.
    pub fn corrupt_retransmit_nth(mut self, src: usize, dst: usize, k: u64) -> FaultPlan {
        self.corrupt_retransmits.push((src, dst, k));
        self
    }

    /// Drop every message with probability `rate` (seeded Bernoulli per
    /// link and send ordinal), in addition to any explicit drops.
    pub fn drop_rate(mut self, rate: f64) -> FaultPlan {
        assert!((0.0..=1.0).contains(&rate), "drop rate must be a probability");
        self.drop_rate = rate;
        self
    }

    /// Corrupt every message with probability `rate` (seeded Bernoulli
    /// per link and ordinal; retransmissions draw independently), in
    /// addition to any explicit corruptions.
    pub fn corrupt_rate(mut self, rate: f64) -> FaultPlan {
        assert!((0.0..=1.0).contains(&rate), "corrupt rate must be a probability");
        self.corrupt_rate = rate;
        self
    }

    /// A pseudo-random chaos plan for a world of `size` ranks: one
    /// victim killed at a seed-chosen op below `horizon`, plus a
    /// seed-chosen link drop and corruption. Fully determined by
    /// `(seed, size, horizon)`.
    pub fn chaos(seed: u64, size: usize, horizon: u64) -> FaultPlan {
        assert!(size > 1, "chaos needs at least two ranks");
        assert!(horizon > 0, "horizon must be positive");
        let victim = (mix64(seed) as usize) % size;
        let kill_op = mix64(seed ^ 1) % horizon;
        let src = (mix64(seed ^ 2) as usize) % size;
        let dst = (src + 1 + (mix64(seed ^ 3) as usize) % (size - 1)) % size;
        FaultPlan::new(seed)
            .kill_rank(victim, kill_op)
            .drop_nth(src, dst, mix64(seed ^ 4) % horizon)
            .corrupt_nth(dst, src, mix64(seed ^ 5) % horizon)
    }

    /// The op at which `rank` dies, if the plan kills it (earliest wins).
    pub fn kill_at(&self, rank: usize) -> Option<u64> {
        self.kills.iter().filter(|(r, _)| *r == rank).map(|(_, op)| *op).min()
    }

    /// Whether the `n`-th message on `src → dst` is dropped.
    pub fn drops(&self, src: usize, dst: usize, n: u64) -> bool {
        self.drops.iter().any(|&(s, d, m)| s == src && d == dst && m == n)
            || rate_draw(self.seed, DROP_SALT, src, dst, n, self.drop_rate)
    }

    /// The corruption mask for the `n`-th message on `src → dst`, if
    /// that message is scheduled for corruption. Seed-derived, so the
    /// same plan corrupts the same message the same way on every run.
    pub fn corrupt_mask(&self, src: usize, dst: usize, n: u64) -> Option<u64> {
        if self.corrupts.iter().any(|&(s, d, m)| s == src && d == dst && m == n)
            || rate_draw(self.seed, CORRUPT_SALT, src, dst, n, self.corrupt_rate)
        {
            Some(mix64(self.seed ^ ((src as u64) << 40) ^ ((dst as u64) << 20) ^ n))
        } else {
            None
        }
    }

    /// The corruption mask for the `k`-th retransmission served on
    /// `src → dst`, if scheduled (explicitly or by `corrupt_rate`).
    pub fn retransmit_corrupt_mask(&self, src: usize, dst: usize, k: u64) -> Option<u64> {
        if self.corrupt_retransmits.iter().any(|&(s, d, m)| s == src && d == dst && m == k)
            || rate_draw(self.seed, RETX_SALT, src, dst, k, self.corrupt_rate)
        {
            Some(mix64(self.seed ^ RETX_SALT ^ ((src as u64) << 40) ^ ((dst as u64) << 20) ^ k))
        } else {
            None
        }
    }

    /// The pause (if any) `rank` takes before comm op `n`.
    pub fn delay(&self, rank: usize, n: u64) -> Option<Duration> {
        self.delays
            .iter()
            .filter(|&&(r, every, _)| r == rank && n % every == every - 1)
            .map(|&(_, _, pause)| pause)
            .max()
    }

    /// True when the plan injects nothing at all.
    pub fn is_transparent(&self) -> bool {
        self.kills.is_empty()
            && self.drops.is_empty()
            && self.corrupts.is_empty()
            && self.delays.is_empty()
            && self.corrupt_retransmits.is_empty()
            && self.drop_rate == 0.0
            && self.corrupt_rate == 0.0
    }
}

/// A [`Communicator`] wrapper that applies a [`FaultPlan`].
///
/// Wraps a borrowed inner communicator (one per rank, like the inner
/// comm itself) and counts this rank's communication operations; the
/// plan is consulted on every send and receive. Collectives work
/// unchanged through the wrapper — faults injected into a collective's
/// constituent point-to-point messages propagate into its result, which
/// is exactly how a corrupted allreduce behaves on a real machine.
pub struct FaultyComm<'a, C: Communicator> {
    inner: &'a C,
    plan: Arc<FaultPlan>,
    /// This rank's comm-op counter (sends + receives), the clock that
    /// kill and delay faults are keyed on.
    ops: Cell<u64>,
    /// Per-destination send ordinals, the clock for drop/corrupt faults.
    sent: RefCell<Vec<u64>>,
}

impl<'a, C: Communicator> FaultyComm<'a, C> {
    /// Wrap `inner` under `plan`.
    pub fn new(inner: &'a C, plan: Arc<FaultPlan>) -> FaultyComm<'a, C> {
        let size = inner.size();
        FaultyComm { inner, plan, ops: Cell::new(0), sent: RefCell::new(vec![0; size]) }
    }

    /// The wrapped communicator.
    pub fn inner(&self) -> &C {
        self.inner
    }

    /// Comm ops performed so far by this rank (sends + receives).
    pub fn ops(&self) -> u64 {
        self.ops.get()
    }

    /// Advance the op clock; fire a scheduled kill or delay.
    fn tick(&self) {
        let n = self.ops.get();
        self.ops.set(n + 1);
        if let Some(at) = self.plan.kill_at(self.inner.rank()) {
            if n >= at {
                std::panic::panic_any(CommError::RankFailed {
                    rank: self.inner.rank(),
                    observer: self.inner.rank(),
                    detail: format!("killed by fault injection at comm op {at}"),
                });
            }
        }
        if let Some(pause) = self.plan.delay(self.inner.rank(), n) {
            std::thread::sleep(pause);
        }
    }
}

impl<C: Communicator> Communicator for FaultyComm<'_, C> {
    fn rank(&self) -> usize {
        self.inner.rank()
    }

    fn size(&self) -> usize {
        self.inner.size()
    }

    fn send<T: CommScalar>(&self, dst: usize, tag: Tag, mut data: Vec<T>) {
        self.tick();
        let n = {
            let mut sent = self.sent.borrow_mut();
            let n = sent[dst];
            sent[dst] += 1;
            n
        };
        if self.plan.drops(self.rank(), dst, n) {
            self.inner.note_dropped_send(dst);
            return;
        }
        if let Some(mask) = self.plan.corrupt_mask(self.rank(), dst, n) {
            if let Some(first) = data.first_mut() {
                *first = first.corrupt(mask);
            }
        }
        self.inner.send(dst, tag, data);
    }

    fn recv<T: CommScalar>(&self, src: usize, tag: Tag) -> Vec<T> {
        self.tick();
        self.inner.recv(src, tag)
    }

    fn send_enveloped<T: CommScalar>(
        &self,
        dst: usize,
        tag: Tag,
        mut data: Vec<T>,
        header: WireHeader,
    ) {
        // One op tick per logical send; link-layer retries below do not
        // advance the kill/delay clock (they model NIC-level behavior,
        // not application activity).
        self.tick();
        let mut retries = 0u32;
        loop {
            let n = {
                let mut sent = self.sent.borrow_mut();
                let n = sent[dst];
                sent[dst] += 1;
                n
            };
            if self.plan.drops(self.rank(), dst, n) {
                // The envelope makes the drop *detectable* at the
                // sender: an unacknowledged sequence number. Model the
                // link-layer retransmit right here — resend immediately
                // under a fresh fault ordinal — so the receiver never
                // observes a sequence gap and never has to time out.
                self.inner.note_dropped_send(dst);
                retries += 1;
                if retries > LINK_RETRY_BUDGET {
                    std::panic::panic_any(CommError::Corrupt {
                        link: (self.rank(), dst),
                        seq: header.seq,
                        detail: format!(
                            "tag {tag}: message dropped on all {LINK_RETRY_BUDGET} link-layer \
                             retransmissions",
                        ),
                    });
                }
                self.inner.note_retransmit();
                continue;
            }
            if let Some(mask) = self.plan.corrupt_mask(self.rank(), dst, n) {
                if let Some(first) = data.first_mut() {
                    *first = first.corrupt(mask);
                }
            }
            self.inner.send_enveloped(dst, tag, data, header);
            return;
        }
    }

    fn recv_enveloped<T: CommScalar>(&self, src: usize, tag: Tag) -> (Vec<T>, Option<WireHeader>) {
        self.tick();
        self.inner.recv_enveloped(src, tag)
    }

    fn record(&self, class: OpClass, messages: u64, bytes: u64) {
        self.inner.record(class, messages, bytes);
    }

    fn note_dropped_send(&self, dst: usize) {
        self.inner.note_dropped_send(dst);
    }

    fn note_retransmit(&self) {
        self.inner.note_retransmit();
    }

    fn note_corrupt_repaired(&self) {
        self.inner.note_corrupt_repaired();
    }

    fn stats_snapshot(&self) -> Option<crate::stats::TrafficStats> {
        self.inner.stats_snapshot()
    }

    fn next_collective_tag(&self) -> Tag {
        self.inner.next_collective_tag()
    }

    fn with_class<R>(&self, class: OpClass, f: impl FnOnce() -> R) -> R {
        self.inner.with_class(class, f)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_plan_is_transparent() {
        let plan = FaultPlan::default();
        assert!(plan.is_transparent());
        assert_eq!(plan.kill_at(0), None);
        assert!(!plan.drops(0, 1, 0));
        assert_eq!(plan.corrupt_mask(0, 1, 0), None);
        assert_eq!(plan.delay(0, 0), None);
    }

    #[test]
    fn builders_register_their_faults() {
        let plan = FaultPlan::new(7)
            .kill_rank(2, 11)
            .kill_rank(2, 5)
            .drop_nth(0, 1, 3)
            .corrupt_nth(1, 0, 4)
            .delay_every(3, 10, Duration::from_micros(50));
        assert!(!plan.is_transparent());
        // Earliest kill wins.
        assert_eq!(plan.kill_at(2), Some(5));
        assert_eq!(plan.kill_at(0), None);
        assert!(plan.drops(0, 1, 3));
        assert!(!plan.drops(0, 1, 2));
        assert!(!plan.drops(1, 0, 3));
        assert!(plan.corrupt_mask(1, 0, 4).is_some());
        assert!(plan.corrupt_mask(1, 0, 5).is_none());
        // delay_every(rank, 10, ..) pauses ops 9, 19, 29, ...
        assert!(plan.delay(3, 9).is_some());
        assert!(plan.delay(3, 10).is_none());
        assert!(plan.delay(0, 9).is_none());
    }

    #[test]
    fn corruption_masks_depend_on_seed_and_link() {
        let a = FaultPlan::new(1).corrupt_nth(0, 1, 0);
        let b = FaultPlan::new(1).corrupt_nth(0, 1, 0);
        let c = FaultPlan::new(2).corrupt_nth(0, 1, 0);
        assert_eq!(a.corrupt_mask(0, 1, 0), b.corrupt_mask(0, 1, 0));
        assert_ne!(a.corrupt_mask(0, 1, 0), c.corrupt_mask(0, 1, 0));
        let d = FaultPlan::new(1).corrupt_nth(1, 0, 0);
        assert_ne!(a.corrupt_mask(0, 1, 0), d.corrupt_mask(1, 0, 0));
    }

    #[test]
    fn retransmit_corruption_is_scheduled_independently() {
        let plan = FaultPlan::new(9).corrupt_retransmit_nth(0, 1, 0);
        assert!(!plan.is_transparent());
        assert!(plan.retransmit_corrupt_mask(0, 1, 0).is_some());
        assert!(plan.retransmit_corrupt_mask(0, 1, 1).is_none());
        assert!(plan.retransmit_corrupt_mask(1, 0, 0).is_none());
        // First-transmission corruption is untouched.
        assert!(plan.corrupt_mask(0, 1, 0).is_none());
        // Retransmission masks are salted away from first-transmission
        // masks so the retry does not deterministically mirror the
        // original corruption.
        let both = FaultPlan::new(9).corrupt_nth(0, 1, 0).corrupt_retransmit_nth(0, 1, 0);
        assert_ne!(both.corrupt_mask(0, 1, 0), both.retransmit_corrupt_mask(0, 1, 0));
    }

    #[test]
    fn rate_based_faults_are_seeded_and_roughly_calibrated() {
        let plan = FaultPlan::new(1234).drop_rate(0.25).corrupt_rate(0.25);
        assert!(!plan.is_transparent());
        let drops = (0..4000).filter(|&n| plan.drops(0, 1, n)).count();
        let corrupts = (0..4000).filter(|&n| plan.corrupt_mask(0, 1, n).is_some()).count();
        let retx = (0..4000).filter(|&n| plan.retransmit_corrupt_mask(0, 1, n).is_some()).count();
        for hits in [drops, corrupts, retx] {
            assert!((800..1200).contains(&hits), "expected ~1000 of 4000, got {hits}");
        }
        // Same seed → same draws; the three salts decorrelate the streams.
        let again = FaultPlan::new(1234).drop_rate(0.25).corrupt_rate(0.25);
        assert_eq!(
            (0..100).map(|n| plan.drops(0, 1, n)).collect::<Vec<_>>(),
            (0..100).map(|n| again.drops(0, 1, n)).collect::<Vec<_>>(),
        );
        assert_ne!(
            (0..100).map(|n| plan.drops(0, 1, n)).collect::<Vec<_>>(),
            (0..100).map(|n| plan.corrupt_mask(0, 1, n).is_some()).collect::<Vec<_>>(),
        );
        // Zero rates never fire.
        let quiet = FaultPlan::new(1234);
        assert!((0..100).all(|n| !quiet.drops(0, 1, n)));
        assert!(quiet.is_transparent());
    }

    #[test]
    fn chaos_plans_are_reproducible_and_in_range() {
        let p1 = FaultPlan::chaos(42, 4, 100);
        let p2 = FaultPlan::chaos(42, 4, 100);
        assert_eq!(format!("{p1:?}"), format!("{p2:?}"));
        assert!(!p1.is_transparent());
        let p3 = FaultPlan::chaos(43, 4, 100);
        assert_ne!(format!("{p1:?}"), format!("{p3:?}"));
        // The victim and ops are within bounds.
        let victim = (0..4).find(|r| p1.kill_at(*r).is_some()).expect("one victim");
        assert!(p1.kill_at(victim).unwrap() < 100);
    }
}
