//! Per-rank traffic accounting.
//!
//! Every send records one message and its modeled wire size under the
//! *operation class* that is currently active on the sending rank.
//! Collectives activate their own class for the duration of the call, so
//! after a run you can ask "how many bytes did rank 3 move for halo
//! exchanges vs. allreduces?" — the numbers an α–β model needs.

/// Classification of traffic by the logical operation that produced it.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum OpClass {
    /// Direct user point-to-point traffic.
    P2p,
    /// Halo exchange for spatial partitioning.
    Halo,
    /// Gradient / statistics allreduce.
    Allreduce,
    /// Reduce-scatter phase traffic.
    ReduceScatter,
    /// Allgather phase traffic.
    Allgather,
    /// Broadcast.
    Bcast,
    /// Barrier (zero-byte messages).
    Barrier,
    /// All-to-all(v) exchange.
    AllToAll,
    /// Gather/scatter to/from a root.
    GatherScatter,
    /// Inter-layer data redistribution (Section III-C shuffles).
    Shuffle,
}

impl OpClass {
    /// All classes, in index order.
    pub const ALL: [OpClass; 10] = [
        OpClass::P2p,
        OpClass::Halo,
        OpClass::Allreduce,
        OpClass::ReduceScatter,
        OpClass::Allgather,
        OpClass::Bcast,
        OpClass::Barrier,
        OpClass::AllToAll,
        OpClass::GatherScatter,
        OpClass::Shuffle,
    ];

    fn index(self) -> usize {
        Self::ALL.iter().position(|c| *c == self).expect("class listed in ALL")
    }
}

/// Message and byte counters for one rank, broken down by [`OpClass`].
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct TrafficStats {
    messages: [u64; 10],
    bytes: [u64; 10],
    /// Sends that never reached the peer's channel: the receiver was
    /// already gone (its channel disconnected), or fault injection
    /// dropped the message. Nonzero dropped sends make a later hung
    /// receive attributable to a dead or lossy link instead of looking
    /// like a protocol bug.
    dropped_sends: u64,
    /// Messages whose checksum failed verification on this rank and
    /// were repaired by a retransmission (integrity layer on).
    corrupt_repaired: u64,
    /// Retransmissions this rank initiated: link-layer resends of
    /// dropped messages (sender side) plus replay-window pulls after a
    /// checksum mismatch (receiver side).
    retransmits: u64,
    /// Wall time (nanoseconds) this rank spent stalled in receiver-side
    /// integrity repair — from the first checksum mismatch of a message
    /// to its accepted retransmission. The wall-clock cost of ladder
    /// rung 1, where the counters above only give event counts.
    repair_nanos: u64,
    /// Times the straggler detector flagged *this* rank as persistently
    /// slow (EMA step time above the agreed threshold). A flag is a
    /// verdict, not yet a mitigation — rebalances and evictions are
    /// counted by the resilient driver's report.
    straggler_flags: u64,
    /// High-water mark (bytes) of the sender-side integrity replay
    /// window as observed from this rank's sends — a gauge, not a
    /// counter. This is the runtime counterpart of the static memory
    /// analyzer's comm-staging term; the byte-bounded window keeps it
    /// below the configured cap even when a stream's ACKs lag.
    replay_held_peak: u64,
}

impl TrafficStats {
    /// Record `messages` sends totalling `bytes` under `class`.
    pub fn record(&mut self, class: OpClass, messages: u64, bytes: u64) {
        let i = class.index();
        self.messages[i] += messages;
        self.bytes[i] += bytes;
    }

    /// Record one send that was dropped (dead receiver or injected
    /// fault) instead of delivered.
    pub fn record_dropped_send(&mut self) {
        self.dropped_sends += 1;
    }

    /// Sends that were dropped rather than delivered.
    pub fn dropped_sends(&self) -> u64 {
        self.dropped_sends
    }

    /// Record one corrupted message detected and repaired on this rank.
    pub fn record_corrupt_repaired(&mut self) {
        self.corrupt_repaired += 1;
    }

    /// Corrupted messages detected and repaired on this rank.
    pub fn corrupt_repaired(&self) -> u64 {
        self.corrupt_repaired
    }

    /// Record one retransmission initiated by this rank.
    pub fn record_retransmit(&mut self) {
        self.retransmits += 1;
    }

    /// Retransmissions this rank initiated.
    pub fn retransmits(&self) -> u64 {
        self.retransmits
    }

    /// Add `nanos` of receiver-side repair stall time.
    pub fn record_repair_time(&mut self, nanos: u64) {
        self.repair_nanos += nanos;
    }

    /// Wall time (nanoseconds) spent stalled in receiver-side integrity
    /// repair.
    pub fn repair_nanos(&self) -> u64 {
        self.repair_nanos
    }

    /// Update the replay-window gauge: `bytes` are currently staged on
    /// the sender side. Keeps the maximum ever observed.
    pub fn record_replay_held(&mut self, bytes: u64) {
        self.replay_held_peak = self.replay_held_peak.max(bytes);
    }

    /// High-water mark (bytes) of the sender-side integrity replay
    /// window observed from this rank.
    pub fn replay_held_peak(&self) -> u64 {
        self.replay_held_peak
    }

    /// Record one straggler verdict against this rank.
    pub fn record_straggler_flag(&mut self) {
        self.straggler_flags += 1;
    }

    /// Times this rank was flagged as a persistent straggler.
    pub fn straggler_flags(&self) -> u64 {
        self.straggler_flags
    }

    /// Messages sent under `class`.
    pub fn messages(&self, class: OpClass) -> u64 {
        self.messages[class.index()]
    }

    /// Bytes sent under `class`.
    pub fn bytes(&self, class: OpClass) -> u64 {
        self.bytes[class.index()]
    }

    /// Total messages sent across all classes.
    pub fn total_messages(&self) -> u64 {
        self.messages.iter().sum()
    }

    /// Total bytes sent across all classes.
    pub fn total_bytes(&self) -> u64 {
        self.bytes.iter().sum()
    }

    /// Merge another rank's counters into this one (for world aggregates).
    pub fn merge(&mut self, other: &TrafficStats) {
        for i in 0..self.messages.len() {
            self.messages[i] += other.messages[i];
            self.bytes[i] += other.bytes[i];
        }
        self.dropped_sends += other.dropped_sends;
        self.corrupt_repaired += other.corrupt_repaired;
        self.retransmits += other.retransmits;
        self.repair_nanos += other.repair_nanos;
        self.straggler_flags += other.straggler_flags;
        // A gauge, not a counter: the world-wide peak is the max of the
        // per-rank peaks (each rank observes the same shared window).
        self.replay_held_peak = self.replay_held_peak.max(other.replay_held_peak);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn record_and_query_by_class() {
        let mut s = TrafficStats::default();
        s.record(OpClass::Halo, 2, 100);
        s.record(OpClass::Allreduce, 1, 64);
        s.record(OpClass::Halo, 1, 28);
        assert_eq!(s.messages(OpClass::Halo), 3);
        assert_eq!(s.bytes(OpClass::Halo), 128);
        assert_eq!(s.messages(OpClass::Allreduce), 1);
        assert_eq!(s.total_messages(), 4);
        assert_eq!(s.total_bytes(), 192);
    }

    #[test]
    fn merge_accumulates() {
        let mut a = TrafficStats::default();
        a.record(OpClass::P2p, 1, 10);
        let mut b = TrafficStats::default();
        b.record(OpClass::P2p, 2, 20);
        b.record(OpClass::Bcast, 1, 5);
        a.merge(&b);
        assert_eq!(a.messages(OpClass::P2p), 3);
        assert_eq!(a.bytes(OpClass::P2p), 30);
        assert_eq!(a.bytes(OpClass::Bcast), 5);
    }

    #[test]
    fn dropped_sends_are_counted_and_merged() {
        let mut a = TrafficStats::default();
        assert_eq!(a.dropped_sends(), 0);
        a.record_dropped_send();
        a.record_dropped_send();
        assert_eq!(a.dropped_sends(), 2);
        let mut b = TrafficStats::default();
        b.record_dropped_send();
        a.merge(&b);
        assert_eq!(a.dropped_sends(), 3);
        // Dropped sends are not delivered traffic.
        assert_eq!(a.total_messages(), 0);
        assert_eq!(a.total_bytes(), 0);
    }

    #[test]
    fn integrity_counters_accumulate_and_merge() {
        let mut a = TrafficStats::default();
        assert_eq!(a.corrupt_repaired(), 0);
        assert_eq!(a.retransmits(), 0);
        a.record_corrupt_repaired();
        a.record_retransmit();
        a.record_retransmit();
        let mut b = TrafficStats::default();
        b.record_corrupt_repaired();
        b.record_retransmit();
        a.merge(&b);
        assert_eq!(a.corrupt_repaired(), 2);
        assert_eq!(a.retransmits(), 3);
        // Repairs and retransmissions are not delivered traffic either.
        assert_eq!(a.total_messages(), 0);
    }

    #[test]
    fn straggler_flags_accumulate_and_merge() {
        let mut a = TrafficStats::default();
        assert_eq!(a.straggler_flags(), 0);
        a.record_straggler_flag();
        a.record_straggler_flag();
        let mut b = TrafficStats::default();
        b.record_straggler_flag();
        a.merge(&b);
        assert_eq!(a.straggler_flags(), 3);
        // Verdicts are not delivered traffic.
        assert_eq!(a.total_messages(), 0);
    }

    #[test]
    fn replay_held_gauge_keeps_peak_and_merges_by_max() {
        let mut a = TrafficStats::default();
        assert_eq!(a.replay_held_peak(), 0);
        a.record_replay_held(100);
        a.record_replay_held(40); // gauge falls; peak stays
        assert_eq!(a.replay_held_peak(), 100);
        let mut b = TrafficStats::default();
        b.record_replay_held(250);
        a.merge(&b);
        assert_eq!(a.replay_held_peak(), 250);
        // Gauges are not delivered traffic.
        assert_eq!(a.total_messages(), 0);
        assert_eq!(a.total_bytes(), 0);
    }

    #[test]
    fn repair_time_accumulates_and_merges() {
        let mut a = TrafficStats::default();
        assert_eq!(a.repair_nanos(), 0);
        a.record_repair_time(1_500);
        a.record_repair_time(500);
        assert_eq!(a.repair_nanos(), 2_000);
        let mut b = TrafficStats::default();
        b.record_repair_time(3_000);
        a.merge(&b);
        assert_eq!(a.repair_nanos(), 5_000);
    }
}
