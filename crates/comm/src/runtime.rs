//! The world runtime: spawns one thread per rank and wires up channels.
//!
//! [`run_ranks`] is the entry point used throughout the workspace: it
//! builds a fully-connected mesh of unbounded channels (one per ordered
//! rank pair, preserving per-pair FIFO order exactly like MPI), runs the
//! given closure on every rank concurrently, and returns the per-rank
//! results in rank order.

use std::cell::{Cell, RefCell};
use std::sync::Arc;

use crossbeam::channel::{unbounded, Receiver, Sender};

use crate::p2p::{CommScalar, Communicator, Envelope, Stash, Tag, RESERVED_TAG_BASE};
use crate::stats::{OpClass, TrafficStats};

/// Virtual-time link model: seconds for `bytes` to travel from rank
/// `src` to rank `dst`. Injected by [`run_ranks_timed`].
pub type LinkModel = Arc<dyn Fn(usize, usize, usize) -> f64 + Send + Sync>;

/// A rank's handle onto the world communicator.
///
/// One `WorldComm` exists per rank and lives on that rank's thread. It is
/// `Send` (it is moved into the thread at spawn) but deliberately not
/// `Sync`: a rank is single-threaded, like an MPI process.
pub struct WorldComm {
    rank: usize,
    size: usize,
    /// `senders[d]` is the sending end of the (self → d) channel.
    senders: Vec<Sender<Envelope>>,
    /// `receivers[s]` is the receiving end of the (s → self) channel.
    receivers: Vec<Receiver<Envelope>>,
    /// Out-of-order stash, one per source rank.
    stashes: RefCell<Vec<Stash>>,
    stats: RefCell<TrafficStats>,
    /// Operation class attributed to subsequent sends.
    class: Cell<OpClass>,
    collective_counter: Cell<u64>,
    /// Virtual clock (seconds); advances on [`WorldComm::advance`] and on
    /// receives under a timed run.
    clock: Cell<f64>,
    /// Link model for virtual time; `None` in untimed runs.
    link: Option<LinkModel>,
}

impl WorldComm {
    /// Snapshot of this rank's traffic counters.
    pub fn stats(&self) -> TrafficStats {
        self.stats.borrow().clone()
    }

    /// Reset traffic counters (e.g. after a warmup iteration).
    pub fn reset_stats(&self) {
        *self.stats.borrow_mut() = TrafficStats::default();
    }
}

impl Communicator for WorldComm {
    fn rank(&self) -> usize {
        self.rank
    }

    fn size(&self) -> usize {
        self.size
    }

    fn send<T: CommScalar>(&self, dst: usize, tag: Tag, data: Vec<T>) {
        assert!(dst < self.size, "send to rank {dst} in world of {}", self.size);
        let bytes = data.len() * T::WIDTH;
        self.stats.borrow_mut().record(self.class.get(), 1, bytes as u64);
        // Under a virtual clock, stamp the arrival time: departure now,
        // plus the modeled link time (α + β·n in the usual models).
        let arrival = match &self.link {
            Some(link) => self.clock.get() + link(self.rank, dst, bytes),
            None => 0.0,
        };
        let env = Envelope { tag, payload: Box::new(data), bytes, arrival };
        // Receiver ends live as long as the scoped threads; a send error
        // means a rank panicked, which the scope will propagate anyway.
        let _ = self.senders[dst].send(env);
    }

    fn recv<T: CommScalar>(&self, src: usize, tag: Tag) -> Vec<T> {
        assert!(src < self.size, "recv from rank {src} in world of {}", self.size);
        if let Some(env) = self.stashes.borrow_mut()[src].take(tag) {
            self.observe_arrival(&env);
            return downcast_payload(env, src, tag);
        }
        loop {
            let env = self.receivers[src].recv().unwrap_or_else(|_| {
                panic!("rank {src} hung up while rank {} waits on tag {tag}", self.rank)
            });
            if env.tag == tag {
                self.observe_arrival(&env);
                return downcast_payload(env, src, tag);
            }
            self.stashes.borrow_mut()[src].put(env);
        }
    }

    fn record(&self, class: OpClass, messages: u64, bytes: u64) {
        self.stats.borrow_mut().record(class, messages, bytes);
    }

    fn next_collective_tag(&self) -> Tag {
        let c = self.collective_counter.get();
        self.collective_counter.set(c + 1);
        RESERVED_TAG_BASE + c
    }

    /// Attribute sends issued inside `f` to `class`, restoring the
    /// previous class afterwards. Used by collectives and halo exchange.
    fn with_class<R>(&self, class: OpClass, f: impl FnOnce() -> R) -> R {
        let prev = self.class.replace(class);
        let r = f();
        self.class.set(prev);
        r
    }
}

impl WorldComm {
    /// This rank's virtual time, seconds (always 0 in untimed runs
    /// unless [`WorldComm::advance`] was called).
    pub fn now(&self) -> f64 {
        self.clock.get()
    }

    /// Advance this rank's virtual clock by `dt` seconds of modeled
    /// local work (e.g. a kernel time from a device model).
    pub fn advance(&self, dt: f64) {
        debug_assert!(dt >= 0.0, "time moves forward");
        self.clock.set(self.clock.get() + dt);
    }
}

impl WorldComm {
    /// A blocking receive completes no earlier than the message's
    /// arrival: the virtual clock jumps to `max(now, arrival)`.
    fn observe_arrival(&self, env: &Envelope) {
        if self.link.is_some() {
            self.clock.set(self.clock.get().max(env.arrival));
        }
    }
}

fn downcast_payload<T: CommScalar>(env: Envelope, src: usize, tag: Tag) -> Vec<T> {
    *env.payload
        .downcast::<Vec<T>>()
        .unwrap_or_else(|_| panic!("message from rank {src} tag {tag} has unexpected element type"))
}

/// Build the channel mesh for a world of `size` ranks.
fn build_world(size: usize) -> Vec<WorldComm> {
    build_world_with_link(size, None)
}

/// Build the channel mesh, optionally with a virtual-time link model.
fn build_world_with_link(size: usize, link: Option<LinkModel>) -> Vec<WorldComm> {
    assert!(size > 0, "world must have at least one rank");
    // channels[s][d] = channel carrying s → d traffic.
    let mut senders: Vec<Vec<Sender<Envelope>>> = Vec::with_capacity(size);
    let mut receivers: Vec<Vec<Option<Receiver<Envelope>>>> =
        (0..size).map(|_| (0..size).map(|_| None).collect()).collect();
    for s in 0..size {
        let mut row = Vec::with_capacity(size);
        for dst_rows in receivers.iter_mut() {
            let (tx, rx) = unbounded();
            row.push(tx);
            dst_rows[s] = Some(rx);
        }
        senders.push(row);
    }
    senders
        .into_iter()
        .zip(receivers)
        .enumerate()
        .map(|(rank, (tx_row, rx_row))| WorldComm {
            rank,
            size,
            senders: tx_row,
            receivers: rx_row.into_iter().map(|r| r.expect("receiver wired")).collect(),
            stashes: RefCell::new((0..size).map(|_| Stash::default()).collect()),
            stats: RefCell::new(TrafficStats::default()),
            class: Cell::new(OpClass::P2p),
            collective_counter: Cell::new(0),
            clock: Cell::new(0.0),
            link: link.clone(),
        })
        .collect()
}

/// Run `f` on `size` ranks concurrently; returns per-rank results in rank
/// order. Panics in any rank propagate (fail the test / abort the run).
///
/// The closure receives a reference to the rank's [`WorldComm`]; anything
/// the caller wants back out (results, traffic stats) is returned from
/// the closure.
pub fn run_ranks<R, F>(size: usize, f: F) -> Vec<R>
where
    R: Send,
    F: Fn(&WorldComm) -> R + Send + Sync,
{
    let comms = build_world(size);
    std::thread::scope(|scope| {
        let handles: Vec<_> = comms
            .into_iter()
            .map(|comm| {
                let f = &f;
                scope.spawn(move || f(&comm))
            })
            .collect();
        handles.into_iter().map(|h| h.join().expect("rank panicked")).collect()
    })
}

/// Run `f` on `size` ranks under a **virtual clock**: sends stamp their
/// arrival as `sender_now + link(src, dst, bytes)`, receives advance the
/// receiver's clock to the arrival, and [`WorldComm::advance`] accounts
/// modeled local work. The per-rank results and final clocks come back
/// in rank order — a discrete-event simulation whose event order is the
/// real execution's message order.
pub fn run_ranks_timed<R, F>(size: usize, link: LinkModel, f: F) -> Vec<(R, f64)>
where
    R: Send,
    F: Fn(&WorldComm) -> R + Send + Sync,
{
    let comms = build_world_with_link(size, Some(link));
    std::thread::scope(|scope| {
        let handles: Vec<_> = comms
            .into_iter()
            .map(|comm| {
                let f = &f;
                scope.spawn(move || {
                    let r = f(&comm);
                    (r, comm.now())
                })
            })
            .collect();
        handles.into_iter().map(|h| h.join().expect("rank panicked")).collect()
    })
}

/// Like [`run_ranks`], additionally returning each rank's traffic stats.
pub fn run_ranks_with_stats<R, F>(size: usize, f: F) -> Vec<(R, TrafficStats)>
where
    R: Send,
    F: Fn(&WorldComm) -> R + Send + Sync,
{
    run_ranks(size, |comm| {
        let r = f(comm);
        let stats = comm.stats();
        (r, stats)
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn single_rank_world_runs() {
        let out = run_ranks(1, |comm| {
            assert_eq!(comm.rank(), 0);
            assert_eq!(comm.size(), 1);
            42usize
        });
        assert_eq!(out, vec![42]);
    }

    #[test]
    fn ring_pass_delivers_in_rank_order() {
        let out = run_ranks(5, |comm| {
            let next = (comm.rank() + 1) % comm.size();
            let prev = (comm.rank() + comm.size() - 1) % comm.size();
            comm.send(next, 1, vec![comm.rank() as u32]);
            comm.recv::<u32>(prev, 1)[0]
        });
        assert_eq!(out, vec![4, 0, 1, 2, 3]);
    }

    #[test]
    fn per_pair_fifo_is_preserved() {
        let out = run_ranks(2, |comm| {
            if comm.rank() == 0 {
                for i in 0..10u32 {
                    comm.send(1, 3, vec![i]);
                }
                Vec::new()
            } else {
                (0..10).map(|_| comm.recv::<u32>(0, 3)[0]).collect::<Vec<_>>()
            }
        });
        assert_eq!(out[1], (0..10).collect::<Vec<u32>>());
    }

    #[test]
    fn out_of_order_tags_are_stashed() {
        let out = run_ranks(2, |comm| {
            if comm.rank() == 0 {
                comm.send(1, 10, vec![1.0f32]);
                comm.send(1, 20, vec![2.0f32]);
                comm.send(1, 30, vec![3.0f32]);
                0.0
            } else {
                // Consume in reverse tag order.
                let c = comm.recv::<f32>(0, 30)[0];
                let b = comm.recv::<f32>(0, 20)[0];
                let a = comm.recv::<f32>(0, 10)[0];
                a * 100.0 + b * 10.0 + c
            }
        });
        assert_eq!(out[1], 123.0);
    }

    #[test]
    fn sendrecv_cycle_does_not_deadlock() {
        let out = run_ranks(4, |comm| {
            let next = (comm.rank() + 1) % 4;
            let prev = (comm.rank() + 3) % 4;
            comm.sendrecv(next, prev, 9, vec![comm.rank() as u64])[0]
        });
        assert_eq!(out, vec![3, 0, 1, 2]);
    }

    #[test]
    fn stats_count_messages_and_bytes() {
        let stats = run_ranks(2, |comm| {
            if comm.rank() == 0 {
                comm.send(1, 1, vec![0f32; 16]);
            } else {
                let _ = comm.recv::<f32>(0, 1);
            }
            comm.stats()
        });
        assert_eq!(stats[0].messages(OpClass::P2p), 1);
        assert_eq!(stats[0].bytes(OpClass::P2p), 64);
        assert_eq!(stats[1].total_messages(), 0);
    }

    #[test]
    fn with_class_attributes_and_restores() {
        let stats = run_ranks(2, |comm| {
            if comm.rank() == 0 {
                comm.with_class(OpClass::Halo, || comm.send(1, 1, vec![0u8; 7]));
                comm.send(1, 2, vec![0u8; 3]);
            } else {
                let _ = comm.recv::<u8>(0, 1);
                let _ = comm.recv::<u8>(0, 2);
            }
            comm.stats()
        });
        assert_eq!(stats[0].bytes(OpClass::Halo), 7);
        assert_eq!(stats[0].bytes(OpClass::P2p), 3);
    }

    #[test]
    fn mixed_payload_types_coexist() {
        let out = run_ranks(2, |comm| {
            if comm.rank() == 0 {
                comm.send(1, 1, vec![1u32, 2, 3]);
                comm.send(1, 2, vec![1.5f64]);
                0.0
            } else {
                let ints = comm.recv::<u32>(0, 1);
                let floats = comm.recv::<f64>(0, 2);
                ints.iter().sum::<u32>() as f64 + floats[0]
            }
        });
        assert_eq!(out[1], 7.5);
    }
}
