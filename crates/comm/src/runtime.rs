//! The world runtime: spawns one thread per rank and wires up channels.
//!
//! [`run_ranks`] is the entry point used throughout the workspace: it
//! builds a fully-connected mesh of unbounded channels (one per ordered
//! rank pair, preserving per-pair FIFO order exactly like MPI), runs the
//! given closure on every rank concurrently, and returns the per-rank
//! results in rank order.
//!
//! The resilience entry points layer on top without touching the fast
//! path:
//!
//! * [`run_ranks_opts`] returns per-rank `Result`s, optionally running a
//!   deadlock watchdog ([`WatchdogConfig`]) and/or a per-receive
//!   deadline. Rank deaths (injected kills, observed peer failures,
//!   watchdog aborts) come back as [`CommError`] values instead of
//!   crashing the process.
//! * [`run_ranks_with_faults`] additionally wraps every rank's
//!   communicator in a [`crate::fault::FaultyComm`] driven by a seeded
//!   [`crate::fault::FaultPlan`].
//! * Setting the `FG_COMM_WATCHDOG` environment variable (to anything
//!   but `0` or empty) makes plain [`run_ranks`] run under the watchdog,
//!   so an accidental deadlock in any test aborts in tens of
//!   milliseconds with a wait-graph diagnostic instead of hanging CI.
//!
//! When neither opts nor the environment ask for monitoring, the send
//! and receive paths are byte-for-byte the pre-resilience ones: no
//! atomics, no polling, zero overhead.

use std::cell::{Cell, RefCell};
use std::sync::Arc;
use std::time::{Duration, Instant};

use crossbeam::channel::{unbounded, Receiver, RecvTimeoutError, Sender};

use crate::error::CommError;
use crate::fault::{FaultPlan, FaultyComm};
use crate::integrity::{self, IntegrityComm, IntegrityConfig, IntegrityState, RankCursor};
use crate::p2p::{
    world_collective_tag, CommScalar, Communicator, Envelope, Stash, Tag, WireHeader,
};
use crate::stats::{OpClass, TrafficStats};
use crate::watchdog::{Monitor, WatchdogConfig};

/// Virtual-time link model: seconds for `bytes` to travel from rank
/// `src` to rank `dst`. Injected by [`run_ranks_timed`] and the
/// discrete-event engine ([`crate::sim`]).
///
/// The closed forms cover the usual cases — a uniform α–β link
/// ([`LinkModel::alpha_beta`]) and a two-level machine with fast links
/// inside a node and slower links between ([`LinkModel::two_level`]).
/// Arbitrary topologies plug in through [`LinkModel::custom`].
#[derive(Clone)]
pub struct LinkModel {
    kind: LinkKind,
}

#[derive(Clone)]
enum LinkKind {
    /// `α + β·bytes` for every rank pair.
    AlphaBeta { alpha: f64, beta: f64 },
    /// Node-aware: ranks `r` and `s` share a node iff
    /// `r / ranks_per_node == s / ranks_per_node`.
    TwoLevel { ranks_per_node: usize, intra: (f64, f64), inter: (f64, f64) },
    /// Arbitrary `(src, dst, bytes) → seconds` closure.
    Custom(Arc<dyn Fn(usize, usize, usize) -> f64 + Send + Sync>),
}

impl LinkModel {
    /// Uniform `α + β·bytes` link between every rank pair.
    pub fn alpha_beta(alpha: f64, beta: f64) -> LinkModel {
        LinkModel { kind: LinkKind::AlphaBeta { alpha, beta } }
    }

    /// Two-level machine: `(intra_alpha, intra_beta)` within a node of
    /// `ranks_per_node` consecutive ranks, `(inter_alpha, inter_beta)`
    /// between nodes — the shape of `fg_perf::Platform::link_between`.
    pub fn two_level(
        ranks_per_node: usize,
        intra_alpha: f64,
        intra_beta: f64,
        inter_alpha: f64,
        inter_beta: f64,
    ) -> LinkModel {
        assert!(ranks_per_node > 0, "a node holds at least one rank");
        LinkModel {
            kind: LinkKind::TwoLevel {
                ranks_per_node,
                intra: (intra_alpha, intra_beta),
                inter: (inter_alpha, inter_beta),
            },
        }
    }

    /// Arbitrary link-time function `(src, dst, bytes) → seconds`.
    pub fn custom(f: impl Fn(usize, usize, usize) -> f64 + Send + Sync + 'static) -> LinkModel {
        LinkModel { kind: LinkKind::Custom(Arc::new(f)) }
    }

    /// Seconds for `bytes` to travel from rank `src` to rank `dst`.
    #[inline]
    pub fn time(&self, src: usize, dst: usize, bytes: usize) -> f64 {
        match &self.kind {
            LinkKind::AlphaBeta { alpha, beta } => alpha + beta * bytes as f64,
            LinkKind::TwoLevel { ranks_per_node, intra, inter } => {
                let (alpha, beta) =
                    if src / ranks_per_node == dst / ranks_per_node { *intra } else { *inter };
                alpha + beta * bytes as f64
            }
            LinkKind::Custom(f) => f(src, dst, bytes),
        }
    }
}

impl std::fmt::Debug for LinkModel {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match &self.kind {
            LinkKind::AlphaBeta { alpha, beta } => f
                .debug_struct("LinkModel::AlphaBeta")
                .field("alpha", alpha)
                .field("beta", beta)
                .finish(),
            LinkKind::TwoLevel { ranks_per_node, intra, inter } => f
                .debug_struct("LinkModel::TwoLevel")
                .field("ranks_per_node", ranks_per_node)
                .field("intra", intra)
                .field("inter", inter)
                .finish(),
            LinkKind::Custom(_) => f.write_str("LinkModel::Custom(..)"),
        }
    }
}

/// A rank's handle onto the world communicator.
///
/// One `WorldComm` exists per rank and lives on that rank's thread. It is
/// `Send` (it is moved into the thread at spawn) but deliberately not
/// `Sync`: a rank is single-threaded, like an MPI process.
pub struct WorldComm {
    rank: usize,
    size: usize,
    /// `senders[d]` is the sending end of the (self → d) channel.
    senders: Vec<Sender<Envelope>>,
    /// `receivers[s]` is the receiving end of the (s → self) channel.
    receivers: Vec<Receiver<Envelope>>,
    /// Out-of-order stash, one per source rank.
    stashes: RefCell<Vec<Stash>>,
    stats: RefCell<TrafficStats>,
    /// Operation class attributed to subsequent sends.
    class: Cell<OpClass>,
    collective_counter: Cell<u64>,
    /// Virtual clock (seconds); advances on [`WorldComm::advance`] and on
    /// receives under a timed run.
    clock: Cell<f64>,
    /// Link model for virtual time; `None` in untimed runs.
    link: Option<LinkModel>,
    /// Progress monitor; `Some` under [`run_ranks_opts`] and friends.
    monitor: Option<Arc<Monitor>>,
    /// Per-receive deadline; `Some` switches `recv` to the polling path
    /// even without a monitor.
    recv_deadline: Option<Duration>,
    /// End-to-end integrity protocol state; `Some` routes `send`/`recv`
    /// through the checksummed envelope path (`FG_COMM_INTEGRITY=1` or
    /// [`RunOptions::integrity`]).
    integrity: Option<WorldIntegrity>,
    /// Accumulated wall time spent *outside* the communicator (compute
    /// between ops); see [`Communicator::busy_nanos`].
    busy: Cell<u64>,
    /// Instant the previous communication operation returned — the start
    /// of the current compute gap.
    last_return: Cell<Instant>,
}

/// The per-rank integrity attachment: the world-shared replay-window
/// state plus this rank's private stream cursors.
struct WorldIntegrity {
    state: Arc<IntegrityState>,
    config: IntegrityConfig,
    cursor: RankCursor,
}

impl WorldComm {
    /// Snapshot of this rank's traffic counters.
    pub fn stats(&self) -> TrafficStats {
        self.stats.borrow().clone()
    }

    /// Reset traffic counters (e.g. after a warmup iteration).
    pub fn reset_stats(&self) {
        *self.stats.borrow_mut() = TrafficStats::default();
    }
}

impl Communicator for WorldComm {
    fn rank(&self) -> usize {
        self.rank
    }

    fn size(&self) -> usize {
        self.size
    }

    fn send<T: CommScalar>(&self, dst: usize, tag: Tag, data: Vec<T>) {
        match &self.integrity {
            Some(ig) => integrity::protocol_send(self, &ig.state, &ig.cursor, dst, tag, data),
            None => self.send_impl(dst, tag, data, None),
        }
    }

    fn recv<T: CommScalar>(&self, src: usize, tag: Tag) -> Vec<T> {
        match &self.integrity {
            Some(ig) => integrity::protocol_recv(self, &ig.state, &ig.config, &ig.cursor, src, tag),
            None => self.recv_impl(src, tag).0,
        }
    }

    /// The raw channel path, bypassing the integrity protocol: the
    /// protocol itself sends through here (no recursion), and so does
    /// [`crate::fault::FaultyComm`] after applying faults.
    fn send_enveloped<T: CommScalar>(
        &self,
        dst: usize,
        tag: Tag,
        data: Vec<T>,
        header: WireHeader,
    ) {
        self.send_impl(dst, tag, data, Some(header));
    }

    fn recv_enveloped<T: CommScalar>(&self, src: usize, tag: Tag) -> (Vec<T>, Option<WireHeader>) {
        self.recv_impl(src, tag)
    }

    fn record(&self, class: OpClass, messages: u64, bytes: u64) {
        self.stats.borrow_mut().record(class, messages, bytes);
    }

    fn note_dropped_send(&self, dst: usize) {
        let _ = dst;
        self.stats.borrow_mut().record_dropped_send();
        if let Some(m) = &self.monitor {
            m.note_dropped_send(self.rank);
        }
    }

    fn note_retransmit(&self) {
        self.stats.borrow_mut().record_retransmit();
        if let Some(m) = &self.monitor {
            m.note_retransmit(self.rank);
        }
    }

    fn note_corrupt_repaired(&self) {
        self.stats.borrow_mut().record_corrupt_repaired();
        if let Some(m) = &self.monitor {
            m.note_corrupt_repaired(self.rank);
        }
    }

    fn note_repair_time(&self, nanos: u64) {
        self.stats.borrow_mut().record_repair_time(nanos);
    }

    fn note_replay_held(&self, bytes: u64) {
        self.stats.borrow_mut().record_replay_held(bytes);
    }

    fn note_straggler_flag(&self) {
        self.stats.borrow_mut().record_straggler_flag();
    }

    fn note_rank_slowness(&self, ratios: &[f64]) {
        if let Some(m) = &self.monitor {
            m.note_rank_slowness(ratios);
        }
    }

    fn stats_snapshot(&self) -> Option<TrafficStats> {
        Some(self.stats())
    }

    fn busy_nanos(&self) -> u64 {
        // Accrue the gap in flight, so a read between ops (end of a
        // training step) includes the trailing compute.
        self.accrue_busy();
        self.busy.get()
    }

    fn next_collective_tag(&self) -> Tag {
        let c = self.collective_counter.get();
        self.collective_counter.set(c + 1);
        world_collective_tag(c)
    }

    /// Attribute sends issued inside `f` to `class`, restoring the
    /// previous class afterwards. Used by collectives and halo exchange.
    fn with_class<R>(&self, class: OpClass, f: impl FnOnce() -> R) -> R {
        let prev = self.class.replace(class);
        let r = f();
        self.class.set(prev);
        r
    }
}

impl WorldComm {
    /// This rank's virtual time, seconds (always 0 in untimed runs
    /// unless [`WorldComm::advance`] was called).
    pub fn now(&self) -> f64 {
        self.clock.get()
    }

    /// Advance this rank's virtual clock by `dt` seconds of modeled
    /// local work (e.g. a kernel time from a device model).
    pub fn advance(&self, dt: f64) {
        debug_assert!(dt >= 0.0, "time moves forward");
        self.clock.set(self.clock.get() + dt);
    }
}

impl WorldComm {
    /// Close the current compute gap: add `now − last_return` to the
    /// busy total. Called on entry to every comm op (and on
    /// [`Communicator::busy_nanos`] reads), so time blocked *inside* an
    /// op never counts as compute.
    fn accrue_busy(&self) {
        let now = Instant::now();
        let gap = now.duration_since(self.last_return.get()).as_nanos() as u64;
        self.busy.set(self.busy.get() + gap);
        self.last_return.set(now);
    }

    /// Open a new compute gap: the op is done, the rank is computing.
    fn mark_return(&self) {
        self.last_return.set(Instant::now());
    }

    /// A blocking receive completes no earlier than the message's
    /// arrival: the virtual clock jumps to `max(now, arrival)`.
    fn observe_arrival(&self, env: &Envelope) {
        if self.link.is_some() {
            self.clock.set(self.clock.get().max(env.arrival));
        }
    }

    /// The raw send: record stats, stamp the arrival, push into the
    /// channel. `header` rides along when the integrity layer (ours or a
    /// wrapper's) enveloped the payload, so message and byte counts are
    /// identical with integrity on or off.
    fn send_impl<T: CommScalar>(
        &self,
        dst: usize,
        tag: Tag,
        data: Vec<T>,
        header: Option<WireHeader>,
    ) {
        assert!(dst < self.size, "send to rank {dst} in world of {}", self.size);
        self.accrue_busy();
        let bytes = data.len() * T::WIDTH;
        self.stats.borrow_mut().record(self.class.get(), 1, bytes as u64);
        // Under a virtual clock, stamp the arrival time: departure now,
        // plus the modeled link time (α + β·n in the usual models).
        let arrival = match &self.link {
            Some(link) => self.clock.get() + link.time(self.rank, dst, bytes),
            None => 0.0,
        };
        let env = Envelope { tag, payload: Box::new(data), bytes, arrival, header };
        // Count the message as in-flight *before* it enters the channel:
        // a fast receiver may dequeue it immediately, and its decrement
        // must never observe a counter that has not been incremented yet.
        if let Some(m) = &self.monitor {
            m.note_send(self.rank, dst);
        }
        match self.senders[dst].send(env) {
            Ok(()) => {}
            // The receiver is gone. Under the plain runtime that means a
            // rank panicked and the scope will propagate; under the fault
            // model it is an expected outcome. Either way the message is
            // lost — count it so a later hung receive is attributable.
            Err(_) => {
                if let Some(m) = &self.monitor {
                    m.note_send_failed(self.rank, dst);
                }
                Communicator::note_dropped_send(self, dst);
            }
        }
        self.mark_return();
    }

    /// The raw receive: stash-aware blocking dequeue, returning the
    /// integrity envelope if the sender attached one.
    fn recv_impl<T: CommScalar>(&self, src: usize, tag: Tag) -> (Vec<T>, Option<WireHeader>) {
        self.accrue_busy();
        let out = self.recv_inner(src, tag);
        self.mark_return();
        out
    }

    fn recv_inner<T: CommScalar>(&self, src: usize, tag: Tag) -> (Vec<T>, Option<WireHeader>) {
        assert!(src < self.size, "recv from rank {src} in world of {}", self.size);
        if let Some(env) = self.stashes.borrow_mut()[src].take(tag) {
            self.observe_arrival(&env);
            return downcast_payload(env, src, tag);
        }
        if self.monitor.is_some() || self.recv_deadline.is_some() {
            return self.recv_polled(src, tag);
        }
        loop {
            let env = self.receivers[src].recv().unwrap_or_else(|_| {
                panic!("rank {src} hung up while rank {} waits on tag {tag}", self.rank)
            });
            if env.tag == tag {
                self.observe_arrival(&env);
                return downcast_payload(env, src, tag);
            }
            self.stashes.borrow_mut()[src].put(env);
        }
    }

    /// Interruptible receive: waits in short slices, between which it
    /// checks the watchdog's abort flag and the per-receive deadline.
    /// Failures unwind with a [`CommError`] payload, caught at the rank
    /// boundary by [`run_ranks_opts`].
    fn recv_polled<T: CommScalar>(&self, src: usize, tag: Tag) -> (Vec<T>, Option<WireHeader>) {
        let poll = self
            .monitor
            .as_ref()
            .map(|m| m.config.poll)
            .unwrap_or(Duration::from_millis(1))
            .min(self.recv_deadline.unwrap_or(Duration::MAX));
        let deadline = self.recv_deadline.map(|d| Instant::now() + d);
        if let Some(m) = &self.monitor {
            m.enter_recv(self.rank, src, tag);
        }
        let result = loop {
            // Abort wins over everything else, including a peer's
            // disconnect: once the watchdog trips, every blocked rank
            // reports the same wait-graph Timeout, not whichever
            // teardown artifact it happens to observe first.
            if let Some(m) = &self.monitor {
                if m.aborted() {
                    break Err(m.abort_error(self.rank));
                }
            }
            match self.receivers[src].recv_timeout(poll) {
                Ok(env) => {
                    if let Some(m) = &self.monitor {
                        m.note_dequeue(src, self.rank);
                    }
                    if env.tag == tag {
                        self.observe_arrival(&env);
                        break Ok(downcast_payload(env, src, tag));
                    }
                    self.stashes.borrow_mut()[src].put(env);
                }
                Err(RecvTimeoutError::Timeout) => {
                    if deadline.is_some_and(|d| Instant::now() >= d) {
                        break Err(CommError::Timeout {
                            rank: self.rank,
                            detail: format!(
                                "receive from rank {src} (tag {tag}) exceeded the {:?} deadline",
                                self.recv_deadline.expect("deadline implies recv_deadline"),
                            ),
                        });
                    }
                }
                Err(RecvTimeoutError::Disconnected) => {
                    // A peer tearing down after a watchdog abort wakes
                    // us with Disconnected; report the abort, not the
                    // secondary disconnect.
                    if let Some(m) = &self.monitor {
                        if m.aborted() {
                            break Err(m.abort_error(self.rank));
                        }
                    }
                    let detail =
                        self.monitor.as_ref().and_then(|m| m.death_reason(src)).unwrap_or_else(
                            || format!("hung up while rank {} waited on tag {tag}", self.rank),
                        );
                    break Err(CommError::RankFailed { rank: src, observer: self.rank, detail });
                }
            }
        };
        if let Some(m) = &self.monitor {
            m.exit_recv(self.rank);
        }
        match result {
            Ok(v) => v,
            Err(e) => std::panic::panic_any(e),
        }
    }
}

fn downcast_payload<T: CommScalar>(
    env: Envelope,
    src: usize,
    tag: Tag,
) -> (Vec<T>, Option<WireHeader>) {
    let header = env.header;
    let payload = *env.payload.downcast::<Vec<T>>().unwrap_or_else(|_| {
        panic!("message from rank {src} tag {tag} has unexpected element type")
    });
    (payload, header)
}

/// Build the channel mesh for a world of `size` ranks.
fn build_world(size: usize) -> Vec<WorldComm> {
    build_world_full(size, None, None, None, None)
}

/// Build the channel mesh, optionally with a virtual-time link model.
fn build_world_with_link(size: usize, link: Option<LinkModel>) -> Vec<WorldComm> {
    build_world_full(size, link, None, None, None)
}

/// Build the channel mesh with every optional attachment.
fn build_world_full(
    size: usize,
    link: Option<LinkModel>,
    monitor: Option<Arc<Monitor>>,
    recv_deadline: Option<Duration>,
    integrity: Option<IntegrityConfig>,
) -> Vec<WorldComm> {
    assert!(size > 0, "world must have at least one rank");
    // channels[s][d] = channel carrying s → d traffic.
    let mut senders: Vec<Vec<Sender<Envelope>>> = Vec::with_capacity(size);
    let mut receivers: Vec<Vec<Option<Receiver<Envelope>>>> =
        (0..size).map(|_| (0..size).map(|_| None).collect()).collect();
    for s in 0..size {
        let mut row = Vec::with_capacity(size);
        for dst_rows in receivers.iter_mut() {
            let (tx, rx) = unbounded();
            row.push(tx);
            dst_rows[s] = Some(rx);
        }
        senders.push(row);
    }
    // One replay-window state per world, shared by all ranks' integrity
    // attachments (a receiver pulls retransmissions straight from its
    // sender's window).
    let shared_state = integrity.as_ref().map(|_| Arc::new(IntegrityState::new(size)));
    senders
        .into_iter()
        .zip(receivers)
        .enumerate()
        .map(|(rank, (tx_row, rx_row))| WorldComm {
            rank,
            size,
            senders: tx_row,
            receivers: rx_row.into_iter().map(|r| r.expect("receiver wired")).collect(),
            stashes: RefCell::new((0..size).map(|_| Stash::default()).collect()),
            stats: RefCell::new(TrafficStats::default()),
            class: Cell::new(OpClass::P2p),
            collective_counter: Cell::new(0),
            clock: Cell::new(0.0),
            link: link.clone(),
            monitor: monitor.clone(),
            recv_deadline,
            integrity: integrity.clone().map(|config| WorldIntegrity {
                state: Arc::clone(shared_state.as_ref().expect("state built with config")),
                config,
                cursor: RankCursor::new(),
            }),
            busy: Cell::new(0),
            last_return: Cell::new(Instant::now()),
        })
        .collect()
}

/// Options for a monitored run ([`run_ranks_opts`]).
#[derive(Debug, Clone, Default)]
pub struct RunOptions {
    /// Run the deadlock watchdog with this configuration. `None` leaves
    /// deadlocks to the per-receive deadline (if any).
    pub watchdog: Option<WatchdogConfig>,
    /// Abort any single receive that waits longer than this.
    pub recv_timeout: Option<Duration>,
    /// Run the end-to-end integrity protocol inside the world
    /// communicator itself: every p2p payload travels checksummed and
    /// sequence-numbered, with receiver-driven repair. Counts and
    /// payloads are identical to a run without it (the envelope rides
    /// on the message; repairs never fire on a healthy world), so it is
    /// safe to enable globally via `FG_COMM_INTEGRITY=1`.
    pub integrity: Option<IntegrityConfig>,
}

impl RunOptions {
    /// Watchdog on with default tuning, no per-receive deadline, no
    /// integrity envelope (fault runs stack integrity explicitly
    /// *above* the fault layer instead — see
    /// [`run_ranks_with_faults_integrity`]).
    pub fn watchdog_default() -> RunOptions {
        RunOptions {
            watchdog: Some(WatchdogConfig::default()),
            recv_timeout: None,
            integrity: None,
        }
    }

    /// Options from the environment: `FG_COMM_WATCHDOG` set to anything
    /// but `0` or the empty string enables the watchdog (the CI script
    /// does this, so any accidental deadlock in the test suite aborts
    /// with a wait graph instead of hanging the job), and
    /// `FG_COMM_INTEGRITY` likewise envelopes all world traffic in the
    /// end-to-end integrity protocol.
    pub fn from_env() -> RunOptions {
        let on =
            |name: &str| matches!(std::env::var_os(name), Some(v) if !v.is_empty() && v != "0");
        RunOptions {
            watchdog: on("FG_COMM_WATCHDOG").then(WatchdogConfig::default),
            recv_timeout: None,
            integrity: on("FG_COMM_INTEGRITY").then(IntegrityConfig::default),
        }
    }
}

thread_local! {
    /// True only on rank threads spawned by [`run_ranks_opts`], whose
    /// [`CommError`] unwinds are caught at the rank boundary. The panic
    /// hook consults this so suppression never leaks to other threads.
    static COMM_PANIC_CAUGHT_HERE: Cell<bool> = const { Cell::new(false) };
}

/// Suppress the default "thread panicked" printout for unwinds whose
/// payload is a [`CommError`] *and* that occur on a rank thread whose
/// boundary will catch them: those are structured fault-model outcomes,
/// not bugs. A `CommError` panic on any other thread (where nothing
/// catches it) and all non-`CommError` panics go to the previously
/// installed hook unchanged.
fn install_comm_panic_hook() {
    use std::sync::Once;
    static ONCE: Once = Once::new();
    ONCE.call_once(|| {
        let prev = std::panic::take_hook();
        std::panic::set_hook(Box::new(move |info| {
            if info.payload().is::<CommError>() && COMM_PANIC_CAUGHT_HERE.with(|f| f.get()) {
                return;
            }
            prev(info);
        }));
    });
}

/// A panic payload carried from a rank thread back to the joining
/// thread, re-raised with `resume_unwind` once the watchdog is down.
type RankPanic = Box<dyn std::any::Any + Send + 'static>;

/// Best-effort text of a non-[`CommError`] panic payload, recorded as
/// the rank's death reason before the payload is re-raised.
fn panic_message(payload: &(dyn std::any::Any + Send)) -> String {
    if let Some(s) = payload.downcast_ref::<&str>() {
        format!("panicked: {s}")
    } else if let Some(s) = payload.downcast_ref::<String>() {
        format!("panicked: {s}")
    } else {
        "panicked".into()
    }
}

/// Run `f` on `size` ranks concurrently; returns per-rank results in rank
/// order. Panics in any rank propagate (fail the test / abort the run).
///
/// The closure receives a reference to the rank's [`WorldComm`]; anything
/// the caller wants back out (results, traffic stats) is returned from
/// the closure.
///
/// With `FG_COMM_WATCHDOG` set in the environment the run is monitored
/// (see [`RunOptions::from_env`]); a detected deadlock panics with the
/// wait-graph diagnostic. Otherwise this is the zero-overhead fast path.
pub fn run_ranks<R, F>(size: usize, f: F) -> Vec<R>
where
    R: Send,
    F: Fn(&WorldComm) -> R + Send + Sync,
{
    let opts = RunOptions::from_env();
    if opts.watchdog.is_some() || opts.recv_timeout.is_some() || opts.integrity.is_some() {
        return run_ranks_opts(size, opts, f)
            .into_iter()
            .map(|r| r.unwrap_or_else(|e| panic!("{e}")))
            .collect();
    }
    let comms = build_world(size);
    std::thread::scope(|scope| {
        let handles: Vec<_> = comms
            .into_iter()
            .map(|comm| {
                let f = &f;
                scope.spawn(move || f(&comm))
            })
            .collect();
        handles.into_iter().map(|h| h.join().expect("rank panicked")).collect()
    })
}

/// Run `f` on `size` ranks under the resilience runtime: per-rank
/// results come back as `Result`s, with rank deaths (injected kills,
/// observed peer failures, watchdog or deadline aborts) as structured
/// [`CommError`]s instead of process-crashing panics.
///
/// Genuine bugs — panics whose payload is not a [`CommError`] — still
/// propagate and abort the run, exactly like [`run_ranks`].
pub fn run_ranks_opts<R, F>(size: usize, opts: RunOptions, f: F) -> Vec<Result<R, CommError>>
where
    R: Send,
    F: Fn(&WorldComm) -> R + Send + Sync,
{
    install_comm_panic_hook();
    let monitor = Arc::new(Monitor::new(size, opts.watchdog.clone().unwrap_or_default()));
    let comms =
        build_world_full(size, None, Some(Arc::clone(&monitor)), opts.recv_timeout, opts.integrity);
    let run_watchdog = opts.watchdog.is_some();
    std::thread::scope(|scope| {
        let watchdog = run_watchdog.then(|| {
            let m = Arc::clone(&monitor);
            scope.spawn(move || m.watch())
        });
        let handles: Vec<_> = comms
            .into_iter()
            .map(|comm| {
                let f = &f;
                let monitor = Arc::clone(&monitor);
                scope.spawn(move || {
                    COMM_PANIC_CAUGHT_HERE.with(|flag| flag.set(true));
                    let rank = comm.rank();
                    let result =
                        std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| f(&comm)));
                    COMM_PANIC_CAUGHT_HERE.with(|flag| flag.set(false));
                    // Publish this rank's fate *before* dropping the comm:
                    // dropping disconnects our channels, and peers that
                    // observe the disconnect look up the death reason.
                    match result {
                        Ok(r) => {
                            monitor.mark_done(rank);
                            drop(comm);
                            Ok(r)
                        }
                        Err(payload) => {
                            let reason = match payload.downcast_ref::<CommError>() {
                                Some(e) => e.to_string(),
                                None => panic_message(payload.as_ref()),
                            };
                            monitor.mark_dead(rank, reason);
                            drop(comm);
                            Err(payload)
                        }
                    }
                })
            })
            .collect();
        // Join every rank without panicking, so the watchdog is always
        // stopped and joined before any genuine panic is re-raised —
        // unwinding out of this scope with the watchdog still running
        // would block the scope's implicit join forever.
        let joined: Vec<Result<Result<R, CommError>, RankPanic>> = handles
            .into_iter()
            .map(|h| match h.join() {
                Ok(Ok(r)) => Ok(Ok(r)),
                Ok(Err(payload)) | Err(payload) => match payload.downcast::<CommError>() {
                    Ok(e) => Ok(Err(*e)),
                    Err(payload) => Err(payload),
                },
            })
            .collect();
        monitor.finish();
        if let Some(w) = watchdog {
            w.join().expect("watchdog thread panicked");
        }
        // Genuine bugs (non-CommError payloads) still abort the run,
        // exactly like `run_ranks` — first one in rank order wins.
        joined
            .into_iter()
            .map(|r| r.unwrap_or_else(|payload| std::panic::resume_unwind(payload)))
            .collect()
    })
}

/// Run `f` on `size` ranks with fault injection from `plan` and the
/// deadlock watchdog on (injected drops and kills routinely strand
/// peers; the watchdog converts those hangs into [`CommError::Timeout`]
/// wait-graph reports).
///
/// Every rank's communicator is wrapped in a
/// [`crate::fault::FaultyComm`], so delays, drops, corruptions, and
/// kills fire deterministically per the plan's seed.
pub fn run_ranks_with_faults<R, F>(size: usize, plan: FaultPlan, f: F) -> Vec<Result<R, CommError>>
where
    R: Send,
    F: Fn(&FaultyComm<'_, WorldComm>) -> R + Send + Sync,
{
    let plan = Arc::new(plan);
    run_ranks_opts(size, RunOptions::watchdog_default(), move |comm| {
        let faulty = FaultyComm::new(comm, Arc::clone(&plan));
        f(&faulty)
    })
}

/// Like [`run_ranks_with_faults`], with the end-to-end integrity layer
/// stacked **above** the fault layer: each rank sees an
/// [`IntegrityComm`] wrapping a [`FaultyComm`] wrapping the world.
///
/// The ordering is load-bearing. Checksums are computed on pristine
/// payloads before the fault layer can touch them, so injected
/// corruption is detected at the receiver and repaired by replay-window
/// retransmission, and injected drops are repaired by sender-side
/// link-layer retransmission — training under a corruption/drop plan
/// converges bitwise-identically to the fault-free run. (The
/// `FG_COMM_INTEGRITY` world-internal wiring sits *below* `FaultyComm`
/// and would happily certify already-corrupted payloads; that is why
/// fault runs use this explicit stack.)
pub fn run_ranks_with_faults_integrity<R, F>(
    size: usize,
    plan: FaultPlan,
    config: IntegrityConfig,
    f: F,
) -> Vec<Result<R, CommError>>
where
    R: Send,
    F: Fn(&IntegrityComm<'_, FaultyComm<'_, WorldComm>>) -> R + Send + Sync,
{
    let state = Arc::new(IntegrityState::new(size).with_plan(plan.clone()));
    let plan = Arc::new(plan);
    run_ranks_opts(size, RunOptions::watchdog_default(), move |comm| {
        let faulty = FaultyComm::new(comm, Arc::clone(&plan));
        let protected = IntegrityComm::new(&faulty, Arc::clone(&state), config.clone());
        f(&protected)
    })
}

/// Run `f` on `size` ranks under a **virtual clock**: sends stamp their
/// arrival as `sender_now + link(src, dst, bytes)`, receives advance the
/// receiver's clock to the arrival, and [`WorldComm::advance`] accounts
/// modeled local work. The per-rank results and final clocks come back
/// in rank order — a discrete-event simulation whose event order is the
/// real execution's message order.
pub fn run_ranks_timed<R, F>(size: usize, link: LinkModel, f: F) -> Vec<(R, f64)>
where
    R: Send,
    F: Fn(&WorldComm) -> R + Send + Sync,
{
    let comms = build_world_with_link(size, Some(link));
    std::thread::scope(|scope| {
        let handles: Vec<_> = comms
            .into_iter()
            .map(|comm| {
                let f = &f;
                scope.spawn(move || {
                    let r = f(&comm);
                    (r, comm.now())
                })
            })
            .collect();
        handles
            .into_iter()
            .enumerate()
            .map(|(rank, h)| {
                h.join().unwrap_or_else(|payload| {
                    panic!("rank {rank} {}", panic_message(payload.as_ref()))
                })
            })
            .collect()
    })
}

/// Like [`run_ranks`], additionally returning each rank's traffic stats.
pub fn run_ranks_with_stats<R, F>(size: usize, f: F) -> Vec<(R, TrafficStats)>
where
    R: Send,
    F: Fn(&WorldComm) -> R + Send + Sync,
{
    run_ranks(size, |comm| {
        let r = f(comm);
        let stats = comm.stats();
        (r, stats)
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn single_rank_world_runs() {
        let out = run_ranks(1, |comm| {
            assert_eq!(comm.rank(), 0);
            assert_eq!(comm.size(), 1);
            42usize
        });
        assert_eq!(out, vec![42]);
    }

    #[test]
    fn ring_pass_delivers_in_rank_order() {
        let out = run_ranks(5, |comm| {
            let next = (comm.rank() + 1) % comm.size();
            let prev = (comm.rank() + comm.size() - 1) % comm.size();
            comm.send(next, 1, vec![comm.rank() as u32]);
            comm.recv::<u32>(prev, 1)[0]
        });
        assert_eq!(out, vec![4, 0, 1, 2, 3]);
    }

    #[test]
    fn per_pair_fifo_is_preserved() {
        let out = run_ranks(2, |comm| {
            if comm.rank() == 0 {
                for i in 0..10u32 {
                    comm.send(1, 3, vec![i]);
                }
                Vec::new()
            } else {
                (0..10).map(|_| comm.recv::<u32>(0, 3)[0]).collect::<Vec<_>>()
            }
        });
        assert_eq!(out[1], (0..10).collect::<Vec<u32>>());
    }

    #[test]
    fn out_of_order_tags_are_stashed() {
        let out = run_ranks(2, |comm| {
            if comm.rank() == 0 {
                comm.send(1, 10, vec![1.0f32]);
                comm.send(1, 20, vec![2.0f32]);
                comm.send(1, 30, vec![3.0f32]);
                0.0
            } else {
                // Consume in reverse tag order.
                let c = comm.recv::<f32>(0, 30)[0];
                let b = comm.recv::<f32>(0, 20)[0];
                let a = comm.recv::<f32>(0, 10)[0];
                a * 100.0 + b * 10.0 + c
            }
        });
        assert_eq!(out[1], 123.0);
    }

    #[test]
    fn sendrecv_cycle_does_not_deadlock() {
        let out = run_ranks(4, |comm| {
            let next = (comm.rank() + 1) % 4;
            let prev = (comm.rank() + 3) % 4;
            comm.sendrecv(next, prev, 9, vec![comm.rank() as u64])[0]
        });
        assert_eq!(out, vec![3, 0, 1, 2]);
    }

    #[test]
    fn stats_count_messages_and_bytes() {
        let stats = run_ranks(2, |comm| {
            if comm.rank() == 0 {
                comm.send(1, 1, vec![0f32; 16]);
            } else {
                let _ = comm.recv::<f32>(0, 1);
            }
            comm.stats()
        });
        assert_eq!(stats[0].messages(OpClass::P2p), 1);
        assert_eq!(stats[0].bytes(OpClass::P2p), 64);
        assert_eq!(stats[1].total_messages(), 0);
    }

    #[test]
    fn with_class_attributes_and_restores() {
        let stats = run_ranks(2, |comm| {
            if comm.rank() == 0 {
                comm.with_class(OpClass::Halo, || comm.send(1, 1, vec![0u8; 7]));
                comm.send(1, 2, vec![0u8; 3]);
            } else {
                let _ = comm.recv::<u8>(0, 1);
                let _ = comm.recv::<u8>(0, 2);
            }
            comm.stats()
        });
        assert_eq!(stats[0].bytes(OpClass::Halo), 7);
        assert_eq!(stats[0].bytes(OpClass::P2p), 3);
    }

    #[test]
    fn mixed_payload_types_coexist() {
        let out = run_ranks(2, |comm| {
            if comm.rank() == 0 {
                comm.send(1, 1, vec![1u32, 2, 3]);
                comm.send(1, 2, vec![1.5f64]);
                0.0
            } else {
                let ints = comm.recv::<u32>(0, 1);
                let floats = comm.recv::<f64>(0, 2);
                ints.iter().sum::<u32>() as f64 + floats[0]
            }
        });
        assert_eq!(out[1], 7.5);
    }

    #[test]
    fn opts_happy_path_returns_ok_per_rank() {
        let out = run_ranks_opts(3, RunOptions::watchdog_default(), |comm| {
            let next = (comm.rank() + 1) % comm.size();
            let prev = (comm.rank() + comm.size() - 1) % comm.size();
            comm.sendrecv(next, prev, 5, vec![comm.rank() as u32])[0]
        });
        let vals: Vec<u32> = out.into_iter().map(|r| r.unwrap()).collect();
        assert_eq!(vals, vec![2, 0, 1]);
    }

    #[test]
    fn watchdog_aborts_a_real_deadlock_with_a_wait_graph() {
        // Rank 0 and 1 both wait for a message that is never sent: a
        // textbook deadlock. The watchdog must convert the hang into
        // per-rank Timeout errors carrying the wait graph.
        let out = run_ranks_opts(2, RunOptions::watchdog_default(), |comm| {
            let peer = 1 - comm.rank();
            comm.recv::<u32>(peer, 77)
        });
        for (rank, r) in out.iter().enumerate() {
            match r {
                Err(CommError::Timeout { rank: tr, detail }) => {
                    assert_eq!(*tr, rank);
                    assert!(detail.contains("wait graph"), "diagnostic: {detail}");
                    assert!(detail.contains("tag 77"), "diagnostic: {detail}");
                }
                other => panic!("expected Timeout, got {other:?}"),
            }
        }
    }

    #[test]
    fn recv_deadline_times_out_a_slow_peer() {
        let opts = RunOptions {
            watchdog: None,
            recv_timeout: Some(Duration::from_millis(20)),
            ..RunOptions::default()
        };
        let out = run_ranks_opts(2, opts, |comm| {
            if comm.rank() == 0 {
                // Stay alive well past rank 1's deadline, then send too
                // late: the receive must already have timed out.
                std::thread::sleep(Duration::from_millis(120));
                comm.send(1, 9, vec![5u32]);
                0u32
            } else {
                comm.recv::<u32>(0, 9)[0]
            }
        });
        assert!(out[0].is_ok());
        match &out[1] {
            Err(CommError::Timeout { rank, detail }) => {
                assert_eq!(*rank, 1);
                assert!(detail.contains("deadline"), "detail: {detail}");
            }
            other => panic!("expected Timeout, got {other:?}"),
        }
    }

    #[test]
    fn peer_death_is_observed_as_rank_failed() {
        // Rank 0 dies (CommError unwind); rank 1's receive observes the
        // disconnect and reports RankFailed with rank 0's death reason.
        let out = run_ranks_opts(2, RunOptions::watchdog_default(), |comm| {
            if comm.rank() == 0 {
                std::panic::panic_any(CommError::RankFailed {
                    rank: 0,
                    observer: 0,
                    detail: "killed by fault injection at comm op 0".into(),
                });
            }
            comm.recv::<u32>(0, 4)
        });
        match &out[0] {
            Err(CommError::RankFailed { rank: 0, observer: 0, .. }) => {}
            other => panic!("expected rank 0 self-report, got {other:?}"),
        }
        match &out[1] {
            Err(CommError::RankFailed { rank: 0, observer: 1, detail }) => {
                assert!(detail.contains("fault injection"), "detail: {detail}");
            }
            other => panic!("expected RankFailed, got {other:?}"),
        }
    }

    #[test]
    fn genuine_panic_propagates_and_does_not_hang() {
        // A non-CommError panic (an ordinary test assert) must abort the
        // monitored run with the original payload — not strand the
        // watchdog thread and hang the scope join forever.
        let caught = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            run_ranks_opts(2, RunOptions::watchdog_default(), |comm| {
                if comm.rank() == 0 {
                    panic!("genuine test bug");
                }
                comm.recv::<u32>(0, 1)
            })
        }));
        let payload = caught.expect_err("the rank's panic must propagate");
        let msg = panic_message(payload.as_ref());
        assert!(msg.contains("genuine test bug"), "unexpected payload: {msg}");
    }

    #[test]
    fn internal_integrity_envelopes_world_traffic_transparently() {
        // FG_COMM_INTEGRITY-style wiring: the envelope rides on the
        // message, so counts and payloads are identical to a plain run,
        // and a healthy world performs zero repairs.
        let opts =
            RunOptions { integrity: Some(IntegrityConfig::default()), ..RunOptions::default() };
        let out = run_ranks_opts(2, opts, |comm| {
            if comm.rank() == 0 {
                comm.send(1, 3, vec![1.5f32, 2.5]);
                (comm.stats().messages(OpClass::P2p), comm.stats().bytes(OpClass::P2p))
            } else {
                let v = comm.recv::<f32>(0, 3);
                assert_eq!(v, vec![1.5, 2.5]);
                let s = comm.stats();
                (s.retransmits(), s.corrupt_repaired())
            }
        });
        assert_eq!(*out[0].as_ref().unwrap(), (1, 8));
        assert_eq!(*out[1].as_ref().unwrap(), (0, 0));
    }

    #[test]
    fn dropped_sends_to_a_dead_peer_are_counted() {
        let out = run_ranks_opts(2, RunOptions::watchdog_default(), |comm| {
            if comm.rank() == 0 {
                // Wait until rank 1 is gone, then send into the void.
                while std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
                    comm.recv::<u32>(1, 1)
                }))
                .is_ok()
                {}
                comm.send(1, 2, vec![1u8, 2, 3]);
                comm.stats().dropped_sends()
            } else {
                comm.send(0, 1, vec![9u32]);
                0
            }
        });
        assert_eq!(*out[0].as_ref().unwrap(), 1);
    }
}
