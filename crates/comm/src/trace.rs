//! Symbolic communication traces for static schedule verification.
//!
//! The schedule verifier (`fg-core::verify`) walks every rank's compiled
//! plans and records what each rank *would* put on the wire — shapes,
//! element counts, and tags only, never tensor data — into a
//! [`RankTrace`]. This module owns the trace model and the trace-level
//! checks:
//!
//! * **p2p matching** ([`CheckKind::P2pMatching`]): on every
//!   `(src, dst, tag)` stream, sends and receives pair off FIFO with
//!   equal element counts and scalar types. An unmatched op is a message
//!   that would never be consumed (or a recv that would block forever) —
//!   the static shadow of a deadlock.
//! * **collective consistency** ([`CheckKind::CollectiveConsistency`]):
//!   all members of a collective's group issue the same collective
//!   sequence — same kind, count, scalar type, and simulated tag, in the
//!   same order. A rank that skips a collective (or disagrees on the
//!   payload size) would hang or corrupt the reduction at runtime.
//! * **tag discipline** ([`CheckKind::TagDiscipline`]): within one rank,
//!   a `(peer, tag, direction)` stream belongs to exactly one exchange
//!   context. Two concurrent exchanges sharing a stream would let
//!   receives match the wrong message and desync the integrity layer's
//!   per-stream sequence numbers.
//!
//! Tag simulation uses the exact formulas the live communicators use
//! ([`crate::p2p::world_collective_tag`] /
//! [`crate::p2p::sub_collective_tag`]), with one per-rank world counter.
//! Because every halo exchange, shuffle, and world collective draws a
//! world tag, a rank whose plan drops one such op desyncs its simulated
//! counter and every later tag mismatches — so omissions surface even
//! when the op itself left no unmatched partner.
//!
//! The geometric checks that need plan internals — halo symmetry and
//! shuffle/regrid conservation — live with the plan types
//! (`fg-tensor`) and the walker (`fg-core::verify`); their findings are
//! reported through the same [`Violation`] type.

use std::collections::{BTreeMap, VecDeque};
use std::fmt;
use std::sync::Arc;

use crate::dynamic::ScalarType;
use crate::p2p::{sub_collective_tag, world_collective_tag, Tag};

/// Which verifier check produced a [`Violation`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CheckKind {
    /// An unpaired or mismatched point-to-point op (check 1).
    P2pMatching,
    /// Group members disagree on the collective sequence (check 2).
    CollectiveConsistency,
    /// A halo send is not the region the peer expects (check 3).
    HaloSymmetry,
    /// A shuffle/regrid does not partition its target (check 4).
    Conservation,
    /// A `(src, dst, tag)` stream shared by two exchanges (check 5).
    TagDiscipline,
}

impl fmt::Display for CheckKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            CheckKind::P2pMatching => "p2p-matching",
            CheckKind::CollectiveConsistency => "collective-consistency",
            CheckKind::HaloSymmetry => "halo-symmetry",
            CheckKind::Conservation => "conservation",
            CheckKind::TagDiscipline => "tag-discipline",
        };
        f.write_str(s)
    }
}

/// One verifier finding: which check failed, where, and why.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Violation {
    /// The check that failed.
    pub check: CheckKind,
    /// The offending rank.
    pub rank: usize,
    /// The offending layer (index into the network spec).
    pub layer: usize,
    /// The offending layer's name.
    pub layer_name: String,
    /// Human-readable specifics (tags, counts, peers).
    pub detail: String,
}

impl fmt::Display for Violation {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "[{}] rank {} layer {} ({}): {}",
            self.check, self.rank, self.layer, self.layer_name, self.detail
        )
    }
}

/// Aggregate counters from a verification pass.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct VerifyStats {
    /// Total trace ops recorded across all ranks.
    pub ops_traced: usize,
    /// Distinct `(src, dst, tag)` p2p streams checked.
    pub links_checked: usize,
    /// Collective instances checked (per group, not per member).
    pub collectives_checked: usize,
    /// Payload bytes accounted: every send plus every member's
    /// collective contribution.
    pub bytes_accounted: usize,
}

/// Whether an op was recorded during the forward or backward walk.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum Phase {
    /// Forward pass.
    Forward,
    /// Backward pass.
    Backward,
}

impl fmt::Display for Phase {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(match self {
            Phase::Forward => "forward",
            Phase::Backward => "backward",
        })
    }
}

/// The collective operations the executor's plans issue. All layer
/// collectives are sum-allreduces (world or subgroup); the enum leaves
/// room for rooted collectives should a layer ever plan one.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum CollectiveKind {
    /// `allreduce(_, ReduceOp::Sum)`.
    AllreduceSum,
}

impl fmt::Display for CollectiveKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{self:?}")
    }
}

/// Modeled local compute time, seconds. A newtype so [`TraceOp`] can
/// stay `Eq`: comparison is on the `f64` bit pattern, which is the right
/// notion here because recorded costs come from deterministic models.
#[derive(Debug, Clone, Copy, PartialOrd)]
pub struct SimSeconds(pub f64);

impl PartialEq for SimSeconds {
    fn eq(&self, other: &SimSeconds) -> bool {
        self.0.to_bits() == other.0.to_bits()
    }
}

impl Eq for SimSeconds {}

/// One symbolic wire operation.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum TraceOp {
    /// A point-to-point send of `count` elements of `ty` to `to`.
    Send {
        /// Destination rank.
        to: usize,
        /// Message tag.
        tag: Tag,
        /// Element count.
        count: usize,
        /// Element type.
        ty: ScalarType,
    },
    /// A point-to-point receive from `from`.
    Recv {
        /// Source rank.
        from: usize,
        /// Message tag.
        tag: Tag,
        /// Element count the plan expects.
        count: usize,
        /// Element type.
        ty: ScalarType,
    },
    /// A collective, recorded atomically on each member (one collective
    /// = one tag draw, so member agreement on the tuple is exactly what
    /// the runtime needs to pair the underlying messages).
    Collective {
        /// Operation kind.
        kind: CollectiveKind,
        /// Ordered member ranks (world ranks). Shared, not owned: a
        /// 2048-rank world records ~2048 references to *one* member
        /// list per group, not 2048² rank copies.
        members: Arc<[usize]>,
        /// Per-member payload element count.
        count: usize,
        /// Element type.
        ty: ScalarType,
        /// Simulated collective tag.
        tag: Tag,
    },
    /// Modeled local compute: the rank's virtual clock advances by
    /// `secs` without touching the wire (mirrors `WorldComm::advance`).
    Advance {
        /// Modeled duration, seconds.
        secs: SimSeconds,
    },
}

/// A [`TraceOp`] plus where it came from.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TraceEntry {
    /// Layer the op belongs to.
    pub layer: usize,
    /// Forward or backward walk.
    pub phase: Phase,
    /// Exchange context: one logical exchange (one halo exchange, one
    /// shuffle, one collective) per id. Streams may not span contexts.
    pub ctx: u64,
    /// The op itself.
    pub op: TraceOp,
}

/// Everything one rank would put on the wire in one training step.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RankTrace {
    /// The rank the trace belongs to.
    pub rank: usize,
    /// Ops in program order.
    pub entries: Vec<TraceEntry>,
}

/// Records one rank's symbolic trace while the verifier walks its plans,
/// simulating the rank's world-collective tag counter along the way.
#[derive(Debug)]
pub struct TraceRecorder {
    rank: usize,
    world: usize,
    /// The full-world member list, built once and shared by every
    /// world-collective entry this recorder emits.
    world_members: Arc<[usize]>,
    world_counter: u64,
    ctx: u64,
    layer: usize,
    phase: Phase,
    entries: Vec<TraceEntry>,
}

impl TraceRecorder {
    /// A fresh recorder for `rank` of `world` ranks; counters at zero,
    /// exactly like a freshly constructed communicator.
    pub fn new(rank: usize, world: usize) -> TraceRecorder {
        TraceRecorder {
            rank,
            world,
            world_members: (0..world).collect(),
            world_counter: 0,
            ctx: 0,
            layer: 0,
            phase: Phase::Forward,
            entries: Vec::new(),
        }
    }

    /// The rank being traced.
    pub fn rank(&self) -> usize {
        self.rank
    }

    /// The world size being traced.
    pub fn world(&self) -> usize {
        self.world
    }

    /// Attribute subsequent ops to `layer` in `phase`.
    pub fn scope(&mut self, layer: usize, phase: Phase) {
        self.layer = layer;
        self.phase = phase;
    }

    /// Open a new exchange context (one halo exchange, one shuffle).
    pub fn begin_exchange(&mut self) {
        self.ctx += 1;
    }

    /// Draw the next world-collective tag, advancing this rank's
    /// simulated counter — mirrors `WorldComm::next_collective_tag`.
    pub fn next_world_tag(&mut self) -> Tag {
        let tag = world_collective_tag(self.world_counter);
        self.world_counter += 1;
        tag
    }

    /// Record a point-to-point send in the current context.
    pub fn send(&mut self, to: usize, tag: Tag, count: usize, ty: ScalarType) {
        self.push(TraceOp::Send { to, tag, count, ty });
    }

    /// Record a point-to-point receive in the current context.
    pub fn recv(&mut self, from: usize, tag: Tag, count: usize, ty: ScalarType) {
        self.push(TraceOp::Recv { from, tag, count, ty });
    }

    /// Record `secs` of modeled local compute (a kernel time from a
    /// device model). Zero-cost advances are skipped — they cannot move
    /// any clock.
    pub fn advance(&mut self, secs: f64) {
        debug_assert!(secs >= 0.0, "time moves forward");
        if secs > 0.0 {
            self.push(TraceOp::Advance { secs: SimSeconds(secs) });
        }
    }

    /// Record a world-scope sum-allreduce. Mirrors the runtime exactly:
    /// a singleton world or an empty payload returns locally without
    /// drawing a tag, so neither advances the simulated counter.
    pub fn world_allreduce(&mut self, count: usize, ty: ScalarType) {
        if self.world <= 1 || count == 0 {
            return;
        }
        self.begin_exchange();
        let tag = self.next_world_tag();
        let members = Arc::clone(&self.world_members);
        self.push(TraceOp::Collective {
            kind: CollectiveKind::AllreduceSum,
            members,
            count,
            ty,
            tag,
        });
    }

    /// Record a subgroup sum-allreduce on a bound layout. Every plan
    /// bind starts the subgroup counter at zero, so the first (and only)
    /// collective of a bind always draws counter value 0 — and, like the
    /// runtime, singleton groups and empty payloads are local no-ops.
    pub fn sub_allreduce(
        &mut self,
        members: &[usize],
        group_id: u64,
        count: usize,
        ty: ScalarType,
    ) {
        if members.len() <= 1 || count == 0 {
            return;
        }
        self.begin_exchange();
        let tag = sub_collective_tag(group_id, 0);
        self.push(TraceOp::Collective {
            kind: CollectiveKind::AllreduceSum,
            members: members.into(),
            count,
            ty,
            tag,
        });
    }

    /// Finish recording.
    pub fn finish(self) -> RankTrace {
        RankTrace { rank: self.rank, entries: self.entries }
    }

    fn push(&mut self, op: TraceOp) {
        self.entries.push(TraceEntry { layer: self.layer, phase: self.phase, ctx: self.ctx, op });
    }
}

/// A p2p op's identity for matching and discipline checks.
#[derive(Debug, Clone, Copy)]
struct P2pRef {
    layer: usize,
    phase: Phase,
    count: usize,
    ty: ScalarType,
}

/// Run the trace-level checks (p2p matching, collective consistency,
/// tag discipline) over all ranks' traces. `layer_names` maps layer
/// indices to names for diagnostics. Returns the aggregate stats and
/// every violation found — an empty violation list means the traced
/// schedule cannot deadlock or mismatch at the message level.
pub fn check_traces(traces: &[RankTrace], layer_names: &[String]) -> (VerifyStats, Vec<Violation>) {
    let mut stats = VerifyStats::default();
    let mut violations = Vec::new();
    let name = |layer: usize| layer_names.get(layer).cloned().unwrap_or_else(|| "?".into());

    // ---- Check 1: p2p matching, FIFO per (src, dst, tag) stream. ----
    let mut sends: BTreeMap<(usize, usize, Tag), VecDeque<P2pRef>> = BTreeMap::new();
    let mut recvs: BTreeMap<(usize, usize, Tag), VecDeque<P2pRef>> = BTreeMap::new();
    for t in traces {
        for e in &t.entries {
            stats.ops_traced += 1;
            let r = |count, ty| P2pRef { layer: e.layer, phase: e.phase, count, ty };
            match &e.op {
                TraceOp::Send { to, tag, count, ty } => {
                    stats.bytes_accounted += count * ty.width();
                    sends.entry((t.rank, *to, *tag)).or_default().push_back(r(*count, *ty));
                }
                TraceOp::Recv { from, tag, count, ty } => {
                    recvs.entry((*from, t.rank, *tag)).or_default().push_back(r(*count, *ty));
                }
                TraceOp::Collective { count, ty, .. } => {
                    stats.bytes_accounted += count * ty.width();
                }
                TraceOp::Advance { .. } => {}
            }
        }
    }
    let mut streams: Vec<(usize, usize, Tag)> = sends.keys().chain(recvs.keys()).copied().collect();
    streams.sort_unstable();
    streams.dedup();
    stats.links_checked = streams.len();
    for key in streams {
        let (src, dst, tag) = key;
        let mut s = sends.remove(&key).unwrap_or_default();
        let mut r = recvs.remove(&key).unwrap_or_default();
        loop {
            match (s.pop_front(), r.pop_front()) {
                (Some(sr), Some(rr)) => {
                    if sr.count != rr.count || sr.ty != rr.ty {
                        violations.push(Violation {
                            check: CheckKind::P2pMatching,
                            rank: src,
                            layer: sr.layer,
                            layer_name: name(sr.layer),
                            detail: format!(
                                "{} send of {} {:?} to rank {dst} (tag {tag:#x}) meets a recv \
                                 expecting {} {:?} (recv at layer {} {})",
                                sr.phase, sr.count, sr.ty, rr.count, rr.ty, rr.layer, rr.phase
                            ),
                        });
                    }
                }
                (Some(sr), None) => violations.push(Violation {
                    check: CheckKind::P2pMatching,
                    rank: src,
                    layer: sr.layer,
                    layer_name: name(sr.layer),
                    detail: format!(
                        "{} send of {} {:?} to rank {dst} (tag {tag:#x}) has no matching recv \
                         — the message would never be consumed",
                        sr.phase, sr.count, sr.ty
                    ),
                }),
                (None, Some(rr)) => violations.push(Violation {
                    check: CheckKind::P2pMatching,
                    rank: dst,
                    layer: rr.layer,
                    layer_name: name(rr.layer),
                    detail: format!(
                        "{} recv of {} {:?} from rank {src} (tag {tag:#x}) has no matching send \
                         — the rank would block forever",
                        rr.phase, rr.count, rr.ty
                    ),
                }),
                (None, None) => break,
            }
        }
    }

    // ---- Check 2: collective consistency per member set. ----
    // For each distinct (sorted) member set, every member's subsequence
    // of collectives on that set must be identical — kind, count, type,
    // and simulated tag, in the same order.
    type CollSeq = Vec<(CollectiveKind, usize, ScalarType, Tag, usize, Phase)>;
    let mut groups: BTreeMap<Vec<usize>, BTreeMap<usize, CollSeq>> = BTreeMap::new();
    for t in traces {
        for e in &t.entries {
            if let TraceOp::Collective { kind, members, count, ty, tag } = &e.op {
                // Member lists are recorded sorted (world ranges, group
                // layouts); look them up by slice to avoid cloning a
                // world-sized key per op — at 2048 ranks the naive
                // clone-per-op is gigabytes of transient allocation.
                let per_rank = if members.windows(2).all(|w| w[0] <= w[1]) {
                    if !groups.contains_key(&members[..]) {
                        groups.insert(members.to_vec(), BTreeMap::new());
                    }
                    groups.get_mut(&members[..]).expect("present or just inserted")
                } else {
                    let mut key = members.to_vec();
                    key.sort_unstable();
                    groups.entry(key).or_default()
                };
                per_rank
                    .entry(t.rank)
                    .or_default()
                    .push((*kind, *count, *ty, *tag, e.layer, e.phase));
            }
        }
    }
    for (members, per_rank) in &groups {
        // Reference: the longest member sequence (so a rank that drops a
        // collective is reported as missing it, not as the reference).
        let reference = members
            .iter()
            .filter_map(|r| per_rank.get(r))
            .max_by_key(|seq| seq.len())
            .cloned()
            .unwrap_or_default();
        stats.collectives_checked += reference.len();
        for &rank in members {
            let seq = per_rank.get(&rank).cloned().unwrap_or_default();
            let first_diff = reference
                .iter()
                .zip(seq.iter())
                .position(|(a, b)| a != b)
                .unwrap_or(reference.len().min(seq.len()));
            if first_diff == reference.len() && seq.len() == reference.len() {
                continue;
            }
            let (layer, phase, detail) = match (reference.get(first_diff), seq.get(first_diff)) {
                (Some(want), Some(have)) => (
                    have.4,
                    have.5,
                    format!(
                        "collective #{first_diff} of group {members:?} diverges: this rank \
                         issues {:?} of {} {:?} (tag {:#x}), the group issues {:?} of {} {:?} \
                         (tag {:#x}, layer {})",
                        have.0, have.1, have.2, have.3, want.0, want.1, want.2, want.3, want.4
                    ),
                ),
                (Some(want), None) => (
                    want.4,
                    want.5,
                    format!(
                        "rank never issues collective #{first_diff} of group {members:?} \
                         ({:?} of {} {:?}, tag {:#x}) — the group would hang waiting for it",
                        want.0, want.1, want.2, want.3
                    ),
                ),
                (None, Some(extra)) => (
                    extra.4,
                    extra.5,
                    format!(
                        "rank issues a surplus collective #{first_diff} on group {members:?} \
                         ({:?} of {} {:?}, tag {:#x}) that no other member joins",
                        extra.0, extra.1, extra.2, extra.3
                    ),
                ),
                (None, None) => unreachable!("lengths equal and no diff was handled above"),
            };
            let _ = phase;
            violations.push(Violation {
                check: CheckKind::CollectiveConsistency,
                rank,
                layer,
                layer_name: name(layer),
                detail,
            });
        }
    }

    // ---- Check 5: tag/stream discipline. ----
    // A (peer, tag, direction) stream on one rank must belong to exactly
    // one exchange context, with at most one op — otherwise two
    // exchanges share a stream and FIFO matching (and the integrity
    // layer's per-stream sequence numbers) becomes ambiguous.
    for t in traces {
        let mut seen: BTreeMap<(usize, Tag, bool), (u64, usize)> = BTreeMap::new();
        for e in &t.entries {
            let (peer, tag, is_send) = match &e.op {
                TraceOp::Send { to, tag, .. } => (*to, *tag, true),
                TraceOp::Recv { from, tag, .. } => (*from, *tag, false),
                TraceOp::Collective { .. } | TraceOp::Advance { .. } => continue,
            };
            match seen.get(&(peer, tag, is_send)) {
                None => {
                    seen.insert((peer, tag, is_send), (e.ctx, e.layer));
                }
                Some(&(ctx, first_layer)) => {
                    let dir = if is_send { "send" } else { "recv" };
                    let how = if ctx == e.ctx {
                        "twice within one exchange (FIFO matching is ambiguous)"
                    } else {
                        "from two concurrent exchanges (streams would interleave)"
                    };
                    violations.push(Violation {
                        check: CheckKind::TagDiscipline,
                        rank: t.rank,
                        layer: e.layer,
                        layer_name: name(e.layer),
                        detail: format!(
                            "{dir} stream to/from rank {peer} (tag {tag:#x}) is used {how}; \
                             first use at layer {first_layer}"
                        ),
                    });
                }
            }
        }
    }

    (stats, violations)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn two_rank_traces() -> Vec<RankTrace> {
        let mut a = TraceRecorder::new(0, 2);
        let mut b = TraceRecorder::new(1, 2);
        for rec in [&mut a, &mut b] {
            rec.scope(1, Phase::Forward);
            rec.begin_exchange();
            let tag = rec.next_world_tag();
            let peer = 1 - rec.rank();
            rec.send(peer, tag, 8, ScalarType::F32);
            rec.recv(peer, tag, 8, ScalarType::F32);
            rec.scope(2, Phase::Forward);
            rec.world_allreduce(5, ScalarType::F64);
        }
        vec![a.finish(), b.finish()]
    }

    fn names() -> Vec<String> {
        (0..4).map(|i| format!("l{i}")).collect()
    }

    #[test]
    fn clean_traces_verify_clean() {
        let (stats, violations) = check_traces(&two_rank_traces(), &names());
        assert!(violations.is_empty(), "{violations:?}");
        assert_eq!(stats.ops_traced, 6);
        assert_eq!(stats.links_checked, 2);
        assert_eq!(stats.collectives_checked, 1);
        // 2 sends × 8 f32 + 2 members × 5 f64.
        assert_eq!(stats.bytes_accounted, 2 * 8 * 4 + 2 * 5 * 8);
    }

    #[test]
    fn unmatched_send_is_reported_with_rank_and_layer() {
        let mut traces = two_rank_traces();
        // Drop rank 1's halo recv: rank 0's send goes unconsumed.
        traces[1].entries.retain(|e| !matches!(e.op, TraceOp::Recv { .. }));
        let (_, violations) = check_traces(&traces, &names());
        assert!(violations
            .iter()
            .any(|v| v.check == CheckKind::P2pMatching && v.rank == 0 && v.layer == 1));
    }

    #[test]
    fn count_mismatch_is_reported() {
        let mut traces = two_rank_traces();
        for e in &mut traces[0].entries {
            if let TraceOp::Send { count, .. } = &mut e.op {
                *count = 7;
            }
        }
        let (_, violations) = check_traces(&traces, &names());
        assert!(violations.iter().any(|v| v.check == CheckKind::P2pMatching && v.rank == 0));
    }

    #[test]
    fn dropped_collective_is_reported_against_the_skipping_rank() {
        let mut traces = two_rank_traces();
        traces[1].entries.retain(|e| !matches!(e.op, TraceOp::Collective { .. }));
        let (_, violations) = check_traces(&traces, &names());
        assert!(violations
            .iter()
            .any(|v| v.check == CheckKind::CollectiveConsistency && v.rank == 1 && v.layer == 2));
    }

    #[test]
    fn tag_collision_across_exchanges_is_reported() {
        let mut rec = TraceRecorder::new(0, 2);
        rec.scope(1, Phase::Forward);
        rec.begin_exchange();
        rec.send(1, world_collective_tag(0), 4, ScalarType::F32);
        rec.begin_exchange();
        rec.send(1, world_collective_tag(0), 4, ScalarType::F32);
        let mut peer = TraceRecorder::new(1, 2);
        peer.scope(1, Phase::Forward);
        peer.begin_exchange();
        peer.recv(0, world_collective_tag(0), 4, ScalarType::F32);
        peer.begin_exchange();
        peer.recv(0, world_collective_tag(0), 4, ScalarType::F32);
        let (_, violations) = check_traces(&[rec.finish(), peer.finish()], &names());
        assert!(violations.iter().any(|v| v.check == CheckKind::TagDiscipline && v.rank == 0));
        assert!(violations.iter().any(|v| v.check == CheckKind::TagDiscipline && v.rank == 1));
    }

    #[test]
    fn singleton_world_records_no_collectives() {
        let mut rec = TraceRecorder::new(0, 1);
        rec.world_allreduce(100, ScalarType::F32);
        rec.sub_allreduce(&[0], 7, 100, ScalarType::F32);
        assert!(rec.finish().entries.is_empty());
    }
}
