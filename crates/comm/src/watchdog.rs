//! Deadlock watchdog: a progress monitor over a running world.
//!
//! The halo-exchange and allreduce schedules this substrate exists to
//! run are tightly coupled: one lost or mistagged message leaves some
//! rank blocked in `recv` forever, which on real clusters stalls the
//! whole allocation and in CI times out the job with no diagnostic. The
//! watchdog turns that failure mode into a fast, structured abort.
//!
//! ## Detection condition
//!
//! A world is deadlocked exactly when
//!
//! 1. every *live* rank (not yet returned, not dead) is blocked in
//!    `recv`, and
//! 2. every channel a blocked rank is waiting on is empty, and
//! 3. no progress (sends or dequeues) happened across consecutive polls.
//!
//! Under these conditions no receive can ever complete: nobody is
//! running to produce a message, and nothing already sent can wake a
//! waiter. Condition 3 closes the race where a send lands between the
//! status snapshot and the channel-occupancy check. Rank status is
//! published under a per-rank mutex and counters use `SeqCst`, so a
//! rank observed as `Blocked` has made all of its prior sends visible —
//! the check cannot fire on a world that is merely slow.
//!
//! On detection the watchdog stores a **wait-graph diagnostic** (who
//! waits on whom, on which tag, plus each rank's dropped-send count so a
//! dead receiver is attributable) and raises the abort flag; blocked
//! ranks notice on their next poll and unwind with
//! [`CommError::Timeout`] carrying the diagnostic.

use std::sync::atomic::{AtomicBool, AtomicU64, AtomicUsize, Ordering};
use std::time::Duration;

use parking_lot::Mutex;

use crate::error::CommError;
use crate::p2p::Tag;

/// Tuning knobs for the deadlock watchdog.
#[derive(Debug, Clone)]
pub struct WatchdogConfig {
    /// Interval between watchdog sweeps (and the granularity at which
    /// blocked receives re-check the abort flag).
    pub poll: Duration,
    /// Number of consecutive quiet sweeps (all live ranks blocked, all
    /// awaited channels empty, zero progress) before declaring deadlock.
    pub quiet_polls: u32,
}

impl Default for WatchdogConfig {
    fn default() -> Self {
        // ~15–25 ms to detection: fast enough for tests, coarse enough
        // that a descheduled rank on a loaded machine cannot be mistaken
        // for a deadlock (the condition is stability-based, not purely
        // time-based, so this only bounds latency, not correctness).
        WatchdogConfig { poll: Duration::from_millis(5), quiet_polls: 3 }
    }
}

/// What one rank is doing right now, as published to the monitor.
#[derive(Debug, Clone)]
pub(crate) enum RankStatus {
    /// Executing user code (or inside a send).
    Running,
    /// Blocked in `recv`, waiting for `(src, tag)`.
    Blocked { src: usize, tag: Tag },
    /// The rank closure returned normally.
    Done,
    /// The rank unwound — injected kill, observed peer failure, or a
    /// genuine panic. The reason is kept for peers' diagnostics.
    Dead { reason: String },
}

/// Shared state between the ranks of one world and its watchdog thread.
pub(crate) struct Monitor {
    size: usize,
    pub(crate) config: WatchdogConfig,
    /// Bumped on every send and every channel dequeue.
    progress: AtomicU64,
    /// In-flight (sent, not yet dequeued) message count per ordered
    /// rank pair, indexed `src * size + dst`.
    pending: Vec<AtomicUsize>,
    /// Per-rank status, published by the rank itself.
    status: Vec<Mutex<RankStatus>>,
    /// Per-rank dropped-send count (dead receiver or injected drop),
    /// mirrored from `TrafficStats` for the diagnostic.
    dropped: Vec<AtomicU64>,
    /// Per-rank corrupted-and-repaired message count, mirrored from
    /// `TrafficStats` for the diagnostic.
    repaired: Vec<AtomicU64>,
    /// Per-rank retransmission count, mirrored from `TrafficStats`.
    retransmits: Vec<AtomicU64>,
    /// Per-rank slowness ratio (this rank's step-time EMA over the world
    /// median, as `f64` bits; 1.0 = healthy), mirrored from the
    /// straggler detector. Lets the wait-graph diagnostic distinguish
    /// "deadlocked" from "waiting on a rank that is 4× slow".
    slowness: Vec<AtomicU64>,
    /// Set by the watchdog on detection; blocked receives unwind.
    abort: AtomicBool,
    diagnostic: Mutex<Option<String>>,
    /// Set by the runtime once all ranks joined; stops the watchdog.
    finished: AtomicBool,
}

impl Monitor {
    pub(crate) fn new(size: usize, config: WatchdogConfig) -> Monitor {
        Monitor {
            size,
            config,
            progress: AtomicU64::new(0),
            pending: (0..size * size).map(|_| AtomicUsize::new(0)).collect(),
            status: (0..size).map(|_| Mutex::new(RankStatus::Running)).collect(),
            dropped: (0..size).map(|_| AtomicU64::new(0)).collect(),
            repaired: (0..size).map(|_| AtomicU64::new(0)).collect(),
            retransmits: (0..size).map(|_| AtomicU64::new(0)).collect(),
            slowness: (0..size).map(|_| AtomicU64::new(1.0f64.to_bits())).collect(),
            abort: AtomicBool::new(false),
            diagnostic: Mutex::new(None),
            finished: AtomicBool::new(false),
        }
    }

    pub(crate) fn note_send(&self, src: usize, dst: usize) {
        self.pending[src * self.size + dst].fetch_add(1, Ordering::SeqCst);
        self.progress.fetch_add(1, Ordering::SeqCst);
    }

    /// Roll back a [`Monitor::note_send`] whose channel push failed
    /// (receiver gone): the message never became in-flight.
    pub(crate) fn note_send_failed(&self, src: usize, dst: usize) {
        self.pending[src * self.size + dst].fetch_sub(1, Ordering::SeqCst);
    }

    pub(crate) fn note_dequeue(&self, src: usize, dst: usize) {
        self.pending[src * self.size + dst].fetch_sub(1, Ordering::SeqCst);
        self.progress.fetch_add(1, Ordering::SeqCst);
    }

    pub(crate) fn note_dropped_send(&self, src: usize) {
        self.dropped[src].fetch_add(1, Ordering::SeqCst);
    }

    pub(crate) fn note_corrupt_repaired(&self, rank: usize) {
        self.repaired[rank].fetch_add(1, Ordering::SeqCst);
    }

    pub(crate) fn note_retransmit(&self, rank: usize) {
        self.retransmits[rank].fetch_add(1, Ordering::SeqCst);
    }

    /// Publish the straggler detector's latest per-rank slowness ratios
    /// (step-time EMA over world median). Any rank may publish — the
    /// detector computes identical vectors on all ranks, so last-write
    /// wins is harmless.
    pub(crate) fn note_rank_slowness(&self, ratios: &[f64]) {
        for (slot, &r) in self.slowness.iter().zip(ratios) {
            slot.store(r.to_bits(), Ordering::SeqCst);
        }
    }

    /// The published slowness ratio of `rank` (1.0 when never published).
    fn slowness_of(&self, rank: usize) -> f64 {
        f64::from_bits(self.slowness[rank].load(Ordering::SeqCst))
    }

    pub(crate) fn enter_recv(&self, rank: usize, src: usize, tag: Tag) {
        *self.status[rank].lock() = RankStatus::Blocked { src, tag };
    }

    pub(crate) fn exit_recv(&self, rank: usize) {
        *self.status[rank].lock() = RankStatus::Running;
    }

    pub(crate) fn mark_done(&self, rank: usize) {
        *self.status[rank].lock() = RankStatus::Done;
    }

    pub(crate) fn mark_dead(&self, rank: usize, reason: String) {
        *self.status[rank].lock() = RankStatus::Dead { reason };
    }

    /// The recorded death reason of `rank`, if it already unwound.
    pub(crate) fn death_reason(&self, rank: usize) -> Option<String> {
        match &*self.status[rank].lock() {
            RankStatus::Dead { reason } => Some(reason.clone()),
            _ => None,
        }
    }

    pub(crate) fn aborted(&self) -> bool {
        self.abort.load(Ordering::SeqCst)
    }

    /// The wait-graph diagnostic, once the watchdog tripped.
    pub(crate) fn diagnostic(&self) -> String {
        self.diagnostic.lock().clone().unwrap_or_else(|| "watchdog aborted the world".into())
    }

    /// Signal the watchdog thread that every rank has joined.
    pub(crate) fn finish(&self) {
        self.finished.store(true, Ordering::SeqCst);
    }

    /// The abort error a blocked rank raises after the watchdog trips.
    pub(crate) fn abort_error(&self, rank: usize) -> CommError {
        CommError::Timeout { rank, detail: self.diagnostic() }
    }

    /// Watchdog thread body: sweep until the world finishes or a
    /// deadlock is detected.
    pub(crate) fn watch(&self) {
        let mut last_progress = u64::MAX;
        let mut quiet: u32 = 0;
        while !self.finished.load(Ordering::SeqCst) && !self.aborted() {
            std::thread::sleep(self.config.poll);
            let progress = self.progress.load(Ordering::SeqCst);
            let snapshot: Vec<RankStatus> = self.status.iter().map(|s| s.lock().clone()).collect();
            // Every rank has finished (Done or Dead): nothing left to
            // monitor. Exiting here — not just on `finished` — means the
            // watchdog can never outlive the world it watches, even if
            // the joining thread unwinds before signalling `finish`.
            if snapshot.iter().all(|st| matches!(st, RankStatus::Done | RankStatus::Dead { .. })) {
                return;
            }
            if self.is_stuck(&snapshot) && progress == last_progress {
                quiet += 1;
                if quiet >= self.config.quiet_polls {
                    self.trip(&snapshot);
                    return;
                }
            } else {
                quiet = 0;
            }
            last_progress = progress;
        }
    }

    /// Conditions 1 and 2: at least one live rank, every live rank
    /// blocked, every awaited channel empty.
    fn is_stuck(&self, snapshot: &[RankStatus]) -> bool {
        let mut live = 0usize;
        for (rank, st) in snapshot.iter().enumerate() {
            match st {
                RankStatus::Running => return false,
                RankStatus::Blocked { src, .. } => {
                    live += 1;
                    if self.pending[src * self.size + rank].load(Ordering::SeqCst) > 0 {
                        return false;
                    }
                }
                RankStatus::Done | RankStatus::Dead { .. } => {}
            }
        }
        live > 0
    }

    /// Record the wait-graph diagnostic and raise the abort flag.
    fn trip(&self, snapshot: &[RankStatus]) {
        let mut s = String::from(
            "deadlock: all live ranks blocked in recv with no in-flight messages\nwait graph:\n",
        );
        for (rank, st) in snapshot.iter().enumerate() {
            let line = match st {
                RankStatus::Blocked { src, tag } => {
                    // A known-slow awaited rank reframes the diagnosis:
                    // likely a straggler still working, not a lost
                    // message.
                    let slow = self.slowness_of(*src);
                    if slow >= 1.5 {
                        format!(
                            "  rank {rank}: waits on rank {src} (tag {tag}), link empty — rank \
                             {src} is {slow:.1}× slower than the world median (straggler)\n"
                        )
                    } else {
                        format!("  rank {rank}: waits on rank {src} (tag {tag}), link empty\n")
                    }
                }
                RankStatus::Done => format!("  rank {rank}: done\n"),
                RankStatus::Dead { reason } => format!("  rank {rank}: dead — {reason}\n"),
                RankStatus::Running => format!("  rank {rank}: running\n"),
            };
            s.push_str(&line);
        }
        let render = |counters: &[AtomicU64]| -> String {
            let nonzero: Vec<String> = counters
                .iter()
                .enumerate()
                .filter(|(_, d)| d.load(Ordering::SeqCst) > 0)
                .map(|(r, d)| format!("rank {r}: {}", d.load(Ordering::SeqCst)))
                .collect();
            if nonzero.is_empty() {
                "none".into()
            } else {
                nonzero.join(", ")
            }
        };
        s.push_str(&format!("dropped sends: {}\n", render(&self.dropped)));
        s.push_str(&format!("corruption repaired: {}\n", render(&self.repaired)));
        s.push_str(&format!("retransmits: {}\n", render(&self.retransmits)));
        let slow: Vec<String> = (0..self.size)
            .filter(|&r| self.slowness_of(r) >= 1.5)
            .map(|r| format!("rank {r}: {:.1}× median", self.slowness_of(r)))
            .collect();
        s.push_str(&format!(
            "slow ranks: {}\n",
            if slow.is_empty() { "none".into() } else { slow.join(", ") }
        ));
        *self.diagnostic.lock() = Some(s);
        self.abort.store(true, Ordering::SeqCst);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn stuck_requires_all_live_blocked_and_empty_links() {
        let m = Monitor::new(2, WatchdogConfig::default());
        // Both running: not stuck.
        assert!(!m.is_stuck(&[RankStatus::Running, RankStatus::Running]));
        // One blocked, one running: not stuck.
        let blocked = RankStatus::Blocked { src: 1, tag: 3 };
        assert!(!m.is_stuck(&[blocked.clone(), RankStatus::Running]));
        // Both blocked on each other, links empty: stuck.
        let b0 = RankStatus::Blocked { src: 1, tag: 3 };
        let b1 = RankStatus::Blocked { src: 0, tag: 3 };
        assert!(m.is_stuck(&[b0.clone(), b1.clone()]));
        // A pending message on an awaited link unsticks the world.
        m.note_send(1, 0);
        assert!(!m.is_stuck(&[b0, b1]));
    }

    #[test]
    fn all_done_or_dead_is_not_a_deadlock() {
        let m = Monitor::new(2, WatchdogConfig::default());
        assert!(!m.is_stuck(&[RankStatus::Done, RankStatus::Dead { reason: "kill".into() }]));
    }

    #[test]
    fn trip_renders_the_wait_graph_with_dropped_sends() {
        let m = Monitor::new(3, WatchdogConfig::default());
        m.note_dropped_send(1);
        m.note_corrupt_repaired(0);
        m.note_retransmit(2);
        m.note_retransmit(2);
        m.trip(&[
            RankStatus::Blocked { src: 1, tag: 42 },
            RankStatus::Blocked { src: 0, tag: 42 },
            RankStatus::Dead { reason: "killed by fault injection at comm op 5".into() },
        ]);
        assert!(m.aborted());
        let d = m.diagnostic();
        assert!(d.contains("rank 0: waits on rank 1 (tag 42)"), "{d}");
        assert!(d.contains("rank 1: waits on rank 0 (tag 42)"), "{d}");
        assert!(d.contains("rank 2: dead — killed by fault injection"), "{d}");
        assert!(d.contains("dropped sends: rank 1: 1"), "{d}");
        assert!(d.contains("corruption repaired: rank 0: 1"), "{d}");
        assert!(d.contains("retransmits: rank 2: 2"), "{d}");
    }

    #[test]
    fn pending_counter_stays_balanced_under_concurrent_traffic() {
        // The sanitizer smoke target (scripts/ci.sh runs this test under
        // tsan when a nightly with rust-src is available): hammer
        // note_send / note_send_failed / note_dequeue from racing
        // threads and check every pair-wise counter balances back to
        // zero. An ordering bug that let a decrement land before its
        // increment would wrap the counter to usize::MAX and permanently
        // convince is_stuck() the link is busy, masking real deadlocks.
        use std::sync::Arc;
        const WORLD: usize = 4;
        const ROUNDS: usize = 1000;
        let m = Arc::new(Monitor::new(WORLD, WatchdogConfig::default()));
        let mut handles = Vec::new();
        for src in 0..WORLD {
            for dst in 0..WORLD {
                let m = Arc::clone(&m);
                handles.push(std::thread::spawn(move || {
                    for i in 0..ROUNDS {
                        m.note_send(src, dst);
                        if i % 3 == 0 {
                            // A push that failed rolls its count back.
                            m.note_send_failed(src, dst);
                            m.note_send(src, dst);
                        }
                        m.note_dequeue(src, dst);
                    }
                }));
            }
        }
        for h in handles {
            h.join().unwrap();
        }
        for (i, p) in m.pending.iter().enumerate() {
            assert_eq!(
                p.load(Ordering::SeqCst),
                0,
                "link {}→{} left unbalanced",
                i / WORLD,
                i % WORLD
            );
        }
        // is_stuck must still see the all-blocked world as stuck — no
        // counter wrapped into "forever busy".
        let blocked: Vec<RankStatus> =
            (0..WORLD).map(|r| RankStatus::Blocked { src: (r + 1) % WORLD, tag: 1 }).collect();
        assert!(m.is_stuck(&blocked));
    }

    #[test]
    fn trip_reports_no_integrity_activity_as_none() {
        let m = Monitor::new(1, WatchdogConfig::default());
        m.trip(&[RankStatus::Blocked { src: 0, tag: 1 }]);
        let d = m.diagnostic();
        assert!(d.contains("corruption repaired: none"), "{d}");
        assert!(d.contains("retransmits: none"), "{d}");
        assert!(d.contains("slow ranks: none"), "{d}");
    }

    #[test]
    fn trip_names_a_known_straggler_instead_of_a_bare_deadlock() {
        let m = Monitor::new(3, WatchdogConfig::default());
        m.note_rank_slowness(&[1.0, 1.0, 4.0]);
        m.trip(&[
            RankStatus::Blocked { src: 2, tag: 7 },
            RankStatus::Blocked { src: 2, tag: 7 },
            RankStatus::Blocked { src: 0, tag: 7 },
        ]);
        let d = m.diagnostic();
        // The wait edge onto the straggler carries the slowness; the
        // edge onto a healthy rank stays a plain deadlock line.
        assert!(
            d.contains("rank 0: waits on rank 2 (tag 7), link empty — rank 2 is 4.0× slower"),
            "{d}"
        );
        assert!(d.contains("rank 2: waits on rank 0 (tag 7), link empty\n"), "{d}");
        assert!(d.contains("slow ranks: rank 2: 4.0× median"), "{d}");
    }
}
