//! Message-count and byte-volume validation of the collective
//! algorithms against the Thakur et al. formulas the performance model
//! uses (§II-B of the paper). This is the link that makes the α–β cost
//! model trustworthy: the executed algorithms move exactly the traffic
//! the formulas charge for.

use fg_comm::{run_ranks, AllreduceAlgorithm, Collectives, Communicator, OpClass, ReduceOp};

/// Per-rank (messages, bytes) sent during one allreduce of `n` f32.
fn allreduce_traffic(p: usize, n: usize, alg: AllreduceAlgorithm) -> Vec<(u64, u64)> {
    run_ranks(p, |comm| {
        let data = vec![comm.rank() as f32; n];
        let _ = comm.allreduce_with(&data, ReduceOp::Sum, alg);
        let s = comm.stats();
        (s.messages(OpClass::Allreduce), s.bytes(OpClass::Allreduce))
    })
}

#[test]
fn ring_allreduce_traffic_matches_thakur() {
    // Ring: every rank sends 2(P−1) chunks totalling 2·(P−1)/P·n elements.
    for p in [2usize, 4, 8] {
        let n = 4096usize; // divisible by all p above
        let t = allreduce_traffic(p, n, AllreduceAlgorithm::Ring);
        for (msgs, bytes) in &t {
            assert_eq!(*msgs, 2 * (p as u64 - 1), "P={p}");
            assert_eq!(*bytes, (2 * (p - 1) * n / p * 4) as u64, "P={p}");
        }
    }
}

#[test]
fn recursive_doubling_traffic_matches_thakur() {
    // Power-of-two P: log₂P rounds, each sending the whole vector.
    for p in [2usize, 4, 8, 16] {
        let n = 1000usize;
        let t = allreduce_traffic(p, n, AllreduceAlgorithm::RecursiveDoubling);
        let lg = (p as f64).log2() as u64;
        for (msgs, bytes) in &t {
            assert_eq!(*msgs, lg, "P={p}");
            assert_eq!(*bytes, lg * (n * 4) as u64, "P={p}");
        }
    }
}

#[test]
fn rabenseifner_traffic_matches_thakur() {
    // Power-of-two P: 2·log₂P messages, 2·(P−1)/P·n elements
    // (recursive halving down, doubling back up).
    for p in [2usize, 4, 8] {
        let n = 4096usize;
        let t = allreduce_traffic(p, n, AllreduceAlgorithm::Rabenseifner);
        let lg = (p as f64).log2() as u64;
        for (msgs, bytes) in &t {
            assert_eq!(*msgs, 2 * lg, "P={p}");
            assert_eq!(*bytes, (2 * (p - 1) * n / p * 4) as u64, "P={p}");
        }
    }
}

#[test]
fn non_power_of_two_pays_the_fold_in_surcharge() {
    // P = 2^k + r: the pre/post fold-in adds up to 2 extra full-vector
    // messages on the paired ranks. Verify totals stay within the
    // documented bound rather than exploding.
    let p = 6usize;
    let n = 1024usize;
    let t = allreduce_traffic(p, n, AllreduceAlgorithm::RecursiveDoubling);
    let full = (n * 4) as u64;
    for (rank, (msgs, bytes)) in t.iter().enumerate() {
        // Surviving ranks: 2 main rounds (pof2=4) + ≤2 fold messages.
        assert!(*msgs <= 4, "rank {rank}: {msgs} messages");
        assert!(*bytes <= 4 * full, "rank {rank}: {bytes} bytes");
        // Everyone participates.
        assert!(*msgs >= 1, "rank {rank} sent nothing");
    }
}

#[test]
fn reduce_scatter_and_allgather_volumes() {
    // Ring reduce-scatter and allgather each move (P−1)/P·n elements.
    let p = 4usize;
    let n = 4000usize;
    let t = run_ranks(p, |comm| {
        let data = vec![1.0f32; n];
        let _ = comm.reduce_scatter(&data, ReduceOp::Sum);
        let rs_bytes = comm.stats().bytes(OpClass::ReduceScatter);
        let _ = comm.allgather_concat(vec![2.0f32; n / p]);
        let ag_bytes = comm.stats().bytes(OpClass::Allgather);
        (rs_bytes, ag_bytes)
    });
    for (rs, ag) in &t {
        assert_eq!(*rs, ((p - 1) * n / p * 4) as u64);
        assert_eq!(*ag, ((p - 1) * (n / p) * 4) as u64);
    }
}

#[test]
fn barrier_uses_log_rounds() {
    for p in [2usize, 3, 4, 7, 8] {
        let t = run_ranks(p, |comm| {
            comm.barrier();
            comm.stats().messages(OpClass::Barrier)
        });
        let want = (p as f64).log2().ceil() as u64;
        for msgs in &t {
            assert_eq!(*msgs, want, "P={p}: dissemination barrier rounds");
        }
    }
}
