//! Virtual-time simulation tests: the executed collective algorithms,
//! run under the discrete-event clock, must take exactly the time the
//! Thakur et al. closed forms predict — because both count the same
//! message chains. This closes the loop between the *executed* system
//! and the *analytic* performance model.

use fg_comm::{
    run_ranks_timed, AllreduceAlgorithm, Collectives, Communicator, LinkModel, ReduceOp,
};

fn uniform_link(alpha: f64, beta: f64) -> LinkModel {
    LinkModel::alpha_beta(alpha, beta)
}

const ALPHA: f64 = 5e-6;
const BETA: f64 = 1e-9;

#[test]
fn ring_allreduce_virtual_time_matches_thakur_exactly() {
    for p in [2usize, 4, 8] {
        let n = 4096usize; // divisible by every p
        let out = run_ranks_timed(p, uniform_link(ALPHA, BETA), |comm| {
            let data = vec![1.0f32; n];
            comm.allreduce_with(&data, ReduceOp::Sum, AllreduceAlgorithm::Ring)
        });
        // 2(P−1) lockstep rounds, each bounded by one chunk transfer.
        let chunk_bytes = (n / p * 4) as f64;
        let want = 2.0 * (p as f64 - 1.0) * (ALPHA + BETA * chunk_bytes);
        for (_r, t) in &out {
            assert!((t - want).abs() < 1e-12, "P={p}: virtual time {t} vs Thakur {want}");
        }
    }
}

#[test]
fn recursive_doubling_virtual_time_matches_thakur() {
    for p in [2usize, 4, 8, 16] {
        let n = 1000usize;
        let out = run_ranks_timed(p, uniform_link(ALPHA, BETA), |comm| {
            let data = vec![1.0f32; n];
            comm.allreduce_with(&data, ReduceOp::Sum, AllreduceAlgorithm::RecursiveDoubling)
        });
        let lg = (p as f64).log2();
        let want = lg * (ALPHA + BETA * (n * 4) as f64);
        for (_r, t) in &out {
            assert!((t - want).abs() < 1e-12, "P={p}: {t} vs {want}");
        }
    }
}

#[test]
fn barrier_virtual_time_is_log_rounds() {
    for p in [2usize, 4, 8] {
        let out = run_ranks_timed(p, uniform_link(ALPHA, BETA), |comm| comm.barrier());
        let want = (p as f64).log2().ceil() * ALPHA; // empty payloads
        for (_r, t) in &out {
            assert!((t - want).abs() < 1e-12, "P={p}: {t} vs {want}");
        }
    }
}

#[test]
fn communication_hides_under_advanced_compute() {
    // The §IV-A overlap semantics, distilled: receiver computes while the
    // message is in flight; total time is max(compute, transfer), not
    // the sum.
    let link = uniform_link(10e-6, 0.0);
    let out = run_ranks_timed(2, link, |comm| {
        if comm.rank() == 0 {
            comm.send(1, 1, vec![1.0f32; 100]);
        } else {
            comm.advance(25e-6); // interior compute: longer than the 10 µs link
            let _ = comm.recv::<f32>(0, 1);
        }
        comm.now()
    });
    // Rank 1's clock: max(25 µs, 10 µs) = 25 µs — fully hidden.
    assert!((out[1].1 - 25e-6).abs() < 1e-12, "overlap broken: {}", out[1].1);

    let link = uniform_link(10e-6, 0.0);
    let out = run_ranks_timed(2, link, |comm| {
        if comm.rank() == 0 {
            comm.send(1, 1, vec![1.0f32; 100]);
        } else {
            comm.advance(4e-6); // too little compute to hide the link
            let _ = comm.recv::<f32>(0, 1);
        }
        comm.now()
    });
    assert!((out[1].1 - 10e-6).abs() < 1e-12, "exposed latency wrong: {}", out[1].1);
}

#[test]
fn sender_clock_gates_arrival() {
    // A late sender delays the receiver: arrival = sender_now + link.
    let link = uniform_link(1e-6, 0.0);
    let out = run_ranks_timed(2, link, |comm| {
        if comm.rank() == 0 {
            comm.advance(50e-6); // busy before sending
            comm.send(1, 1, vec![0u8; 8]);
        } else {
            let _ = comm.recv::<u8>(0, 1);
        }
        comm.now()
    });
    assert!((out[1].1 - 51e-6).abs() < 1e-12, "receiver must wait for the sender: {}", out[1].1);
}

#[test]
fn heterogeneous_links_use_per_pair_times() {
    // Ranks 0,1 on one "node" (fast), rank 2 remote (slow): a pipeline
    // 0→1→2 accumulates the right per-hop times.
    let link = LinkModel::custom(|src, dst, _bytes| if src / 2 == dst / 2 { 1e-6 } else { 20e-6 });
    let out = run_ranks_timed(3, link, |comm| {
        match comm.rank() {
            0 => comm.send(1, 1, vec![1u8]),
            1 => {
                let _ = comm.recv::<u8>(0, 1);
                comm.send(2, 1, vec![1u8]);
            }
            _ => {
                let _ = comm.recv::<u8>(1, 1);
            }
        }
        comm.now()
    });
    assert!((out[1].1 - 1e-6).abs() < 1e-12);
    assert!((out[2].1 - 21e-6).abs() < 1e-12);
}

#[test]
fn untimed_runs_keep_zero_clocks() {
    let out = fg_comm::run_ranks(3, |comm| {
        let _ = comm.allreduce(&[1.0f32], ReduceOp::Sum);
        comm.now()
    });
    assert!(out.iter().all(|&t| t == 0.0));
}
