//! Stress and interleaving tests of the simulated communicator:
//! concurrent sub-communicators, mixed collective/p2p traffic, and
//! property tests of collective semantics against sequential references.

use fg_comm::{run_ranks, AllreduceAlgorithm, Collectives, Communicator, ReduceOp, SubComm};
use proptest::prelude::*;

#[test]
fn interleaved_p2p_and_collectives_do_not_cross_match() {
    // Each rank fires user-tagged p2p traffic *between* collectives with
    // tags chosen to collide numerically with plausible counters.
    let out = run_ranks(4, |comm| {
        let next = (comm.rank() + 1) % 4;
        let prev = (comm.rank() + 3) % 4;
        let mut acc = 0.0f64;
        for round in 0..5u64 {
            comm.send(next, round, vec![comm.rank() as f64 + round as f64]);
            let sum = comm.allreduce(&[1.0f64], ReduceOp::Sum)[0];
            acc += sum;
            let got = comm.recv::<f64>(prev, round)[0];
            acc += got;
            comm.barrier();
        }
        acc
    });
    // Each round: allreduce gives 4; recv gives prev + round.
    for (rank, acc) in out.iter().enumerate() {
        let prev = (rank + 3) % 4;
        let want: f64 = (0..5).map(|r| 4.0 + prev as f64 + r as f64).sum();
        assert_eq!(*acc, want, "rank {rank}");
    }
}

#[test]
fn many_disjoint_subgroups_run_collectives_concurrently() {
    // 12 ranks in 4 groups of 3; every group runs a different number of
    // collectives (stressing tag-counter independence across groups).
    let out = run_ranks(12, |comm| {
        let color = (comm.rank() % 4) as u64;
        let sub = SubComm::split(comm, color, comm.rank() as u64);
        let rounds = 1 + (color as usize);
        let mut last = 0.0f64;
        for _ in 0..rounds {
            last = sub.allreduce(&[comm.rank() as f64], ReduceOp::Sum)[0];
        }
        last
    });
    // Group of color c contains ranks {c, c+4, c+8}: sum = 3c + 12.
    for (rank, v) in out.iter().enumerate() {
        let c = rank % 4;
        assert_eq!(*v, (3 * c + 12) as f64, "rank {rank}");
    }
}

#[test]
fn deep_subgroup_nesting() {
    // Split 16 ranks into halves three times; each level reduces.
    let out = run_ranks(16, |comm| {
        let l1 = SubComm::split(comm, (comm.rank() / 8) as u64, comm.rank() as u64);
        let l2 = SubComm::split(&l1, (l1.rank() / 4) as u64, l1.rank() as u64);
        let l3 = SubComm::split(&l2, (l2.rank() / 2) as u64, l2.rank() as u64);
        (
            l1.allreduce(&[1.0f64], ReduceOp::Sum)[0],
            l2.allreduce(&[1.0f64], ReduceOp::Sum)[0],
            l3.allreduce(&[1.0f64], ReduceOp::Sum)[0],
        )
    });
    for v in out {
        assert_eq!(v, (8.0, 4.0, 2.0));
    }
}

#[test]
fn large_payload_allreduce_is_correct_and_deterministic() {
    let n = 1 << 18; // 1 MiB of f32 per rank
    let run = || {
        run_ranks(4, |comm| {
            let data: Vec<f32> = (0..n).map(|i| ((i * (comm.rank() + 1)) % 97) as f32).collect();
            comm.allreduce_with(&data, ReduceOp::Sum, AllreduceAlgorithm::Ring)
        })
    };
    let a = run();
    let b = run();
    assert_eq!(a, b);
    for i in [0usize, 1, n / 2, n - 1] {
        let want: f32 = (1..=4).map(|r| ((i * r) % 97) as f32).sum();
        assert_eq!(a[0][i], want, "element {i}");
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    #[test]
    fn bcast_delivers_root_payload(p in 1usize..9, root_pick in 0usize..8, len in 0usize..64) {
        let root = root_pick % p;
        let out = run_ranks(p, |comm| {
            let payload = (comm.rank() == root)
                .then(|| (0..len as u32).map(|i| i * 3 + root as u32).collect());
            comm.bcast(root, payload)
        });
        let want: Vec<u32> = (0..len as u32).map(|i| i * 3 + root as u32).collect();
        for o in out {
            prop_assert_eq!(o, want.clone());
        }
    }

    #[test]
    fn gather_scatter_round_trip(p in 1usize..8, root_pick in 0usize..8, seed in any::<u32>()) {
        let root = root_pick % p;
        let out = run_ranks(p, |comm| {
            let mine: Vec<u32> = (0..comm.rank() + 1)
                .map(|i| seed ^ (comm.rank() * 31 + i) as u32)
                .collect();
            let gathered = comm.gatherv(root, mine.clone());
            let back = comm.scatterv(root, gathered);
            (mine, back)
        });
        for (mine, back) in out {
            prop_assert_eq!(mine, back);
        }
    }

    #[test]
    fn reduce_matches_sum_on_root(p in 1usize..8, len in 1usize..32, seed in any::<u64>()) {
        let out = run_ranks(p, |comm| {
            let mine: Vec<i64> = (0..len)
                .map(|i| ((seed >> (i % 32)) as i64 & 0xFF) * (comm.rank() as i64 + 1))
                .collect();
            (mine.clone(), comm.reduce(0, &mine, ReduceOp::Sum))
        });
        let want: Vec<i64> = (0..len)
            .map(|i| out.iter().map(|(m, _)| m[i]).sum())
            .collect();
        prop_assert_eq!(out[0].1.as_ref().unwrap(), &want);
        for (_, r) in &out[1..] {
            prop_assert!(r.is_none());
        }
    }
}
