//! Chaos suite: seeded fault injection against the communicator.
//!
//! Every scenario pins its seed, so outcomes are exact assertions, not
//! "eventually fails somehow". These tests are the executable contract
//! of the fault model:
//!
//! * an empty plan is perfectly transparent;
//! * kills surface as [`CommError::RankFailed`] on the victim and as
//!   `RankFailed`/`Timeout` on peers — never as a hang or a raw panic;
//! * dropped messages strand their receiver, and the watchdog converts
//!   the hang into a wait-graph [`CommError::Timeout`] that names the
//!   waiter, the tag, and the dropped-send culprit;
//! * corruption is deterministic per seed and visibly alters payloads;
//! * delays change timing only, never results.

use std::time::Duration;

use fg_comm::{
    run_ranks, run_ranks_opts, run_ranks_with_faults, run_ranks_with_faults_integrity, Collectives,
    CommError, Communicator, FaultPlan, IntegrityConfig, ReduceOp, RunOptions,
};

/// A small fixed workload: ring allreduce over distinct per-rank data,
/// then a halo-style neighbor exchange. Touches both collective and
/// point-to-point paths.
fn workload(comm: &impl Communicator) -> Vec<f32> {
    let p = comm.size();
    let mine = vec![(comm.rank() + 1) as f32; 8];
    let mut out = comm.allreduce(&mine, ReduceOp::Sum);
    let next = (comm.rank() + 1) % p;
    let prev = (comm.rank() + p - 1) % p;
    let neighbor = comm.sendrecv(next, prev, 7, vec![comm.rank() as f32]);
    out.push(neighbor[0]);
    out
}

#[test]
fn empty_plan_is_transparent() {
    let clean = run_ranks(4, workload);
    let faulty = run_ranks_with_faults(4, FaultPlan::new(1), |comm| workload(comm));
    let faulty: Vec<Vec<f32>> =
        faulty.into_iter().map(|r| r.expect("no faults injected")).collect();
    assert_eq!(clean, faulty);
}

#[test]
fn killed_rank_fails_structurally_and_peers_observe_it() {
    // Kill rank 1 at its very first comm op in a 3-rank allreduce.
    let plan = FaultPlan::new(2).kill_rank(1, 0);
    let out = run_ranks_with_faults(3, plan, |comm| workload(comm));
    // The victim reports its own injected death.
    match &out[1] {
        Err(CommError::RankFailed { rank: 1, observer: 1, detail }) => {
            assert!(detail.contains("killed by fault injection at comm op 0"), "{detail}");
        }
        other => panic!("victim should self-report, got {other:?}"),
    }
    // Peers fail too rather than hanging — either by observing the dead
    // rank directly, via a cascade (a peer that died observing it), or
    // through the watchdog. The root cause stays in the detail chain.
    for r in [0, 2] {
        match &out[r] {
            Err(CommError::RankFailed { detail, .. }) => {
                assert!(detail.contains("killed by fault injection"), "rank {r}: {detail}");
            }
            Err(CommError::Timeout { .. }) => {}
            other => panic!("rank {r} should observe the failure, got {other:?}"),
        }
    }
}

#[test]
fn dropped_message_trips_the_watchdog_with_attribution() {
    // Rank 0's request to rank 1 is dropped; rank 1 never sees it and
    // never replies, so both ranks block forever — a stable deadlock
    // with all ranks alive. The watchdog must abort with a wait graph
    // that names each waiter, the awaited link and tag, and rank 0's
    // dropped send as the culprit.
    let plan = FaultPlan::new(3).drop_nth(0, 1, 0);
    let out = run_ranks_with_faults(2, plan, |comm| {
        if comm.rank() == 0 {
            comm.send(1, 7, vec![1.0f32]);
            let _ = comm.recv::<f32>(1, 8);
        } else {
            let _ = comm.recv::<f32>(0, 7);
            comm.send(0, 8, vec![2.0f32]);
        }
    });
    for (rank, r) in out.iter().enumerate() {
        match r {
            Err(CommError::Timeout { rank: tr, detail }) => {
                assert_eq!(*tr, rank);
                assert!(detail.contains("wait graph"), "{detail}");
                assert!(detail.contains("rank 1: waits on rank 0 (tag 7)"), "{detail}");
                assert!(detail.contains("rank 0: waits on rank 1 (tag 8)"), "{detail}");
                assert!(detail.contains("dropped sends: rank 0: 1"), "{detail}");
            }
            other => panic!("expected watchdog Timeout on rank {rank}, got {other:?}"),
        }
    }
}

#[test]
fn corruption_changes_the_result_deterministically() {
    // Corrupt the first point-to-point message rank 0 sends to rank 1.
    let run = |seed: u64| {
        let plan = FaultPlan::new(seed).corrupt_nth(0, 1, 0);
        let out = run_ranks_with_faults(2, plan, |comm| {
            if comm.rank() == 0 {
                comm.send(1, 3, vec![1.0f32, 2.0, 3.0]);
                Vec::new()
            } else {
                comm.recv::<f32>(0, 3)
            }
        });
        out.into_iter().map(|r| r.expect("corruption does not kill")).collect::<Vec<_>>()
    };
    let a = run(11);
    // The first element is corrupted, the rest untouched.
    assert_ne!(a[1][0].to_bits(), 1.0f32.to_bits());
    assert_eq!(&a[1][1..], &[2.0, 3.0]);
    // Same seed → bitwise-identical corruption; different seed → different.
    let b = run(11);
    assert_eq!(a[1][0].to_bits(), b[1][0].to_bits());
    let c = run(12);
    assert_ne!(a[1][0].to_bits(), c[1][0].to_bits());
}

#[test]
fn delays_change_timing_but_not_results() {
    let clean = run_ranks(3, workload);
    let plan = FaultPlan::new(4).delay_every(1, 2, Duration::from_millis(2));
    let delayed = run_ranks_with_faults(3, plan, |comm| workload(comm));
    let delayed: Vec<Vec<f32>> =
        delayed.into_iter().map(|r| r.expect("delays are benign")).collect();
    assert_eq!(clean, delayed);
}

#[test]
fn fixed_seed_reproduces_identical_outcomes() {
    // A chaos plan derived from a pinned seed must produce the same
    // per-rank outcome (including error shape and text) across runs.
    let run = || {
        let plan = FaultPlan::chaos(0xC0FFEE, 4, 16);
        run_ranks_with_faults(4, plan, |comm| workload(comm))
            .into_iter()
            .map(|r| match r {
                Ok(v) => format!("ok:{v:?}"),
                Err(e) => format!("err:{e}"),
            })
            .collect::<Vec<_>>()
    };
    let a = run();
    let b = run();
    assert_eq!(a, b);
    // The chaos plan really does hurt someone.
    assert!(a.iter().any(|s| s.starts_with("err:")), "outcomes: {a:?}");
}

#[test]
fn integrity_repairs_injected_corruption_bitwise() {
    // The same scenario as `corruption_changes_the_result_deterministically`,
    // but with the integrity layer stacked above the fault layer: the
    // receiver detects the checksum mismatch, pulls a clean copy from
    // the sender's replay window, and delivers the pristine payload.
    let plan = FaultPlan::new(11).corrupt_nth(0, 1, 0);
    let out = run_ranks_with_faults_integrity(2, plan, IntegrityConfig::default(), |comm| {
        if comm.rank() == 0 {
            comm.send(1, 3, vec![1.0f32, 2.0, 3.0]);
            (Vec::new(), 0, 0)
        } else {
            let v = comm.recv::<f32>(0, 3);
            let stats = comm.stats_snapshot().expect("world stats reachable through the stack");
            (v, stats.corrupt_repaired(), stats.retransmits())
        }
    });
    let (payload, repaired, retransmits) = out[1].as_ref().expect("repaired, not fatal").clone();
    assert_eq!(payload, vec![1.0, 2.0, 3.0]);
    assert_eq!(repaired, 1);
    assert_eq!(retransmits, 1);
}

#[test]
fn integrity_retries_when_the_retransmission_is_also_corrupted() {
    // First transmission corrupted AND the first replay-window pull
    // corrupted: the receiver's retry loop pulls again and the second
    // retransmission delivers. One repaired message, two retransmits.
    let plan = FaultPlan::new(13).corrupt_nth(0, 1, 0).corrupt_retransmit_nth(0, 1, 0);
    let out = run_ranks_with_faults_integrity(2, plan, IntegrityConfig::default(), |comm| {
        if comm.rank() == 0 {
            comm.send(1, 3, vec![4.0f32, 5.0]);
            (Vec::new(), 0, 0)
        } else {
            let v = comm.recv::<f32>(0, 3);
            let stats = comm.stats_snapshot().expect("stats");
            (v, stats.corrupt_repaired(), stats.retransmits())
        }
    });
    let (payload, repaired, retransmits) = out[1].as_ref().expect("repaired").clone();
    assert_eq!(payload, vec![4.0, 5.0]);
    assert_eq!(repaired, 1);
    assert_eq!(retransmits, 2);
}

#[test]
fn integrity_budget_exhaustion_surfaces_typed_corrupt() {
    // Every retransmission is corrupted too; after the retry budget the
    // receive must unwind with CommError::Corrupt naming the link and
    // stream position — a structured outcome at the rank boundary, not
    // a hang or a raw panic.
    let config = IntegrityConfig { max_retries: 3, ..IntegrityConfig::default() };
    let mut plan = FaultPlan::new(17).corrupt_nth(0, 1, 0);
    for k in 0..8 {
        plan = plan.corrupt_retransmit_nth(0, 1, k);
    }
    let out = run_ranks_with_faults_integrity(2, plan, config, |comm| {
        if comm.rank() == 0 {
            comm.send(1, 3, vec![1.0f32]);
            Vec::new()
        } else {
            comm.recv::<f32>(0, 3)
        }
    });
    assert!(out[0].is_ok());
    match &out[1] {
        Err(CommError::Corrupt { link, seq, detail }) => {
            assert_eq!(*link, (0, 1));
            assert_eq!(*seq, 0);
            assert!(detail.contains("budget 3"), "{detail}");
        }
        other => panic!("expected Corrupt after budget exhaustion, got {other:?}"),
    }
}

#[test]
fn integrity_repairs_drops_without_a_watchdog_trip() {
    // The same request/reply scenario that deadlocks in
    // `dropped_message_trips_the_watchdog_with_attribution` — but with
    // the envelope attached, the sender detects the drop and
    // retransmits at the link layer. The exchange completes; nobody
    // waits, so the watchdog never trips.
    let plan = FaultPlan::new(3).drop_nth(0, 1, 0);
    let out = run_ranks_with_faults_integrity(2, plan, IntegrityConfig::default(), |comm| {
        if comm.rank() == 0 {
            comm.send(1, 7, vec![1.0f32]);
            let reply = comm.recv::<f32>(1, 8);
            let stats = comm.stats_snapshot().expect("stats");
            (reply, stats.dropped_sends(), stats.retransmits())
        } else {
            let req = comm.recv::<f32>(0, 7);
            comm.send(0, 8, vec![req[0] + 1.0]);
            (Vec::new(), 0, 0)
        }
    });
    let (reply, dropped, retransmits) = out[0].as_ref().expect("exchange completes").clone();
    assert_eq!(reply, vec![2.0]);
    assert_eq!(dropped, 1, "the drop still happened and is still counted");
    assert_eq!(retransmits, 1, "and was repaired by one link-layer retransmission");
}

#[test]
fn integrity_full_workload_survives_fault_rates_bitwise() {
    // Seeded Bernoulli drop + corruption rates over the whole mixed
    // workload (allreduce + halo exchange): with the integrity layer on,
    // every rank's result is bitwise identical to the fault-free run.
    let clean = run_ranks(4, workload);
    let plan = FaultPlan::new(0xFA17).drop_rate(0.2).corrupt_rate(0.2);
    let out = run_ranks_with_faults_integrity(4, plan, IntegrityConfig::default(), |comm| {
        let r = workload(comm);
        let stats = comm.stats_snapshot().expect("stats");
        (r, stats.retransmits() + stats.corrupt_repaired())
    });
    let mut total_repairs = 0;
    for (rank, r) in out.iter().enumerate() {
        let (result, repairs) = r.as_ref().expect("all faults repaired");
        assert_eq!(result, &clean[rank], "rank {rank} diverged");
        total_repairs += repairs;
    }
    assert!(total_repairs > 0, "the plan must actually have injected faults");
}

#[test]
fn recv_deadline_passes_through_the_integrity_layer() {
    // A per-receive deadline from RunOptions must still surface as
    // Timeout when the world runs the internal integrity protocol: the
    // repair loop only engages after a message arrives, so a silent
    // peer is the deadline's business, not the integrity layer's.
    let opts = RunOptions {
        watchdog: None,
        recv_timeout: Some(Duration::from_millis(20)),
        integrity: Some(IntegrityConfig::default()),
    };
    let out = run_ranks_opts(2, opts, |comm| {
        if comm.rank() == 0 {
            std::thread::sleep(Duration::from_millis(120));
            comm.send(1, 9, vec![5u32]);
            Vec::new()
        } else {
            comm.recv::<u32>(0, 9)
        }
    });
    assert!(out[0].is_ok());
    match &out[1] {
        Err(CommError::Timeout { rank: 1, detail }) => {
            assert!(detail.contains("deadline"), "{detail}");
        }
        other => panic!("expected deadline Timeout, got {other:?}"),
    }
}

#[test]
fn faults_pass_through_subgroup_traffic() {
    // FaultyComm wraps the world; a SubComm built over it routes through
    // the wrapper, so link faults hit subgroup collectives too. Kill
    // rank 2 before its first send and let its subgroup discover it.
    let plan = FaultPlan::new(5).kill_rank(2, 0);
    let out = run_ranks_with_faults(4, plan, |comm| {
        let group: Vec<usize> = (0..comm.size()).filter(|r| r % 2 == comm.rank() % 2).collect();
        let sub = fg_comm::SubComm::new(comm, group, comm.rank() as u64 % 2).expect("valid group");
        sub.allreduce(&[comm.rank() as f32], ReduceOp::Sum)
    });
    match &out[2] {
        Err(CommError::RankFailed { rank: 2, observer: 2, .. }) => {}
        other => panic!("rank 2 should die by injection, got {other:?}"),
    }
    // Rank 0 shares the even subgroup with rank 2 and must not hang.
    assert!(out[0].is_err(), "rank 0 depends on dead rank 2: {:?}", out[0]);
}
