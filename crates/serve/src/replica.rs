//! Replica worlds: independent thread-per-rank inference executors with
//! the elastic-degradation lifecycle.
//!
//! Each replica is one *driver thread* owning a sequence of **epochs**.
//! An epoch is a full `run_ranks_with_faults_integrity` world: every
//! rank loops on its private job channel, executes
//! [`fg_core::DistExecutor::infer_logits`] for each batch job, and rank
//! 0 (the assembly root) sends the reply. Jobs are fanned out to *all*
//! rank channels under a submission lock, so every rank observes the
//! identical job sequence — the property that keeps collectives from
//! interleaving across concurrent dispatchers.
//!
//! Degradation contract (DESIGN.md "Serving tier"): when a rank dies
//! mid-traffic, the fault unwinds out of the victim as a
//! [`fg_comm::CommError`]; peers blocked on it observe the broken links
//! and unwind too; idle ranks see the session's `failed` flag and leave
//! cleanly. The driver then
//!
//! 1. **trips the breaker** (requests route around the replica),
//! 2. **drains** the in-flight jobs left in the dead epoch's channels,
//!    replying "replica failed" so dispatchers retry immediately
//!    instead of waiting out their timeouts,
//! 3. **rebuilds** on the surviving ranks — re-attribute the dead
//!    ([`fg_comm::attribute_dead_ranks`]), restrict the fault plan to
//!    survivors, re-plan the strategy at the shrunken world size
//!    (spatial fallback, as the trainer's elastic rung does), recompile
//!    the per-batch-size executor ladder — and
//! 4. **re-admits** through a half-open breaker probe.
//!
//! Inference parameters are replicated on every rank, so unlike the
//! trainer's elastic rung there is no state to reshard: a rebuilt
//! replica serves bitwise-identical logits at any world size.

use std::panic::{catch_unwind, resume_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicBool, AtomicU64, AtomicUsize, Ordering};
use std::sync::{Arc, Mutex};
use std::time::Duration;

use crossbeam::channel::{unbounded, Receiver, RecvTimeoutError, Sender};
use fg_comm::{
    attribute_dead_ranks, run_ranks_with_faults_integrity, CommError, Communicator, FaultPlan,
    IntegrityConfig, TrafficStats,
};
use fg_core::{DistExecutor, ServableModel, Strategy};
use fg_tensor::{ProcGrid, Tensor};

use crate::breaker::{BreakerConfig, CircuitBreaker};

/// Static description of one replica's world.
#[derive(Debug, Clone)]
pub struct ReplicaSpec {
    /// Initial world size (ranks).
    pub world: usize,
    /// Initial process grid (must have `grid.size() == world`).
    pub grid: ProcGrid,
    /// Fault plan injected under this replica (chaos experiments).
    pub faults: FaultPlan,
    /// Receiver-side integrity repair tuning.
    pub integrity: IntegrityConfig,
}

impl ReplicaSpec {
    /// A healthy replica: `grid.size()` ranks, no injected faults.
    pub fn healthy(grid: ProcGrid) -> ReplicaSpec {
        ReplicaSpec {
            world: grid.size(),
            grid,
            faults: FaultPlan::new(0),
            integrity: IntegrityConfig::default(),
        }
    }

    /// The same world with a fault plan injected.
    pub fn with_faults(mut self, faults: FaultPlan) -> ReplicaSpec {
        self.faults = faults;
        self
    }
}

/// One batch job, shared (via `Arc`) by every rank of an epoch.
pub(crate) struct BatchJob {
    /// Dispatch-unique id (reply matching, incl. hedges).
    pub id: u64,
    /// Real (unpadded) request count; rows beyond it are padding.
    pub n_real: usize,
    /// The padded global batch, `(padded, C, H, W)`.
    pub x: Tensor,
    /// Reply channel back to the dispatcher.
    pub reply: Sender<JobReply>,
}

/// A reply for one batch job.
#[derive(Debug)]
pub(crate) struct JobReply {
    /// The job this answers.
    pub job: u64,
    /// Which replica produced it.
    pub replica: usize,
    /// Per-request logits rows (`n_real` of them), or `None` when the
    /// replica failed and the job should be retried elsewhere.
    pub rows: Option<Vec<Vec<f32>>>,
}

/// Messages on a rank's job channel.
pub(crate) enum RankMsg {
    Job(Arc<BatchJob>),
    Stop,
}

/// One epoch's shared state: channels, executors, failure flag.
pub(crate) struct Session {
    rank_tx: Vec<Sender<RankMsg>>,
    rank_rx: Vec<Receiver<RankMsg>>,
    /// Set by the first rank that observes a comm failure; idle ranks
    /// poll it and leave, which collapses the world deterministically.
    failed: AtomicBool,
    /// Per-batch-size executor ladder, ascending.
    execs: Vec<(usize, Arc<DistExecutor>)>,
    /// Jobs completed this epoch (health denominator).
    jobs_done: AtomicU64,
}

impl Session {
    /// Smallest planned batch size that fits `n` requests.
    pub(crate) fn padded_size(&self, n: usize) -> Option<usize> {
        self.execs.iter().map(|(b, _)| *b).find(|b| *b >= n)
    }

    fn exec_for(&self, padded: usize) -> &DistExecutor {
        let (_, exec) =
            self.execs.iter().find(|(b, _)| *b == padded).expect("padded size was planned");
        exec
    }
}

/// A serving replica: breaker + current session + driver thread.
pub struct Replica {
    /// Replica index (stable across epochs).
    pub id: usize,
    pub(crate) breaker: CircuitBreaker,
    session: Mutex<Option<Arc<Session>>>,
    /// Serializes job fan-out so all ranks see one job order.
    submit_lock: Mutex<()>,
    /// Dispatches currently in flight (least-loaded routing).
    pub(crate) outstanding: AtomicUsize,
    /// Completed world epochs that ended in failure (i.e. recycles).
    recycles: AtomicU64,
    /// Set when the driver exits for good: no session will ever come.
    dark: AtomicBool,
    stop: Arc<AtomicBool>,
    driver: Mutex<Option<std::thread::JoinHandle<()>>>,
}

impl Replica {
    /// Spawn the replica's driver thread. `stop` is the server-wide
    /// shutdown flag.
    pub(crate) fn spawn(
        id: usize,
        spec: ReplicaSpec,
        model: Arc<ServableModel>,
        max_batch: usize,
        breaker_cfg: BreakerConfig,
        stop: Arc<AtomicBool>,
    ) -> Arc<Replica> {
        assert_eq!(spec.grid.size(), spec.world, "replica grid must match its world size");
        let replica = Arc::new(Replica {
            id,
            breaker: CircuitBreaker::new(breaker_cfg),
            session: Mutex::new(None),
            submit_lock: Mutex::new(()),
            outstanding: AtomicUsize::new(0),
            recycles: AtomicU64::new(0),
            dark: AtomicBool::new(false),
            stop,
            driver: Mutex::new(None),
        });
        let r = Arc::clone(&replica);
        let handle = std::thread::Builder::new()
            .name(format!("fg-serve-replica-{id}"))
            .spawn(move || run_driver(&r, &model, spec, max_batch))
            .expect("spawn replica driver");
        *replica.driver.lock().unwrap() = Some(handle);
        replica
    }

    /// The live session, if the replica is admitted.
    pub(crate) fn current_session(&self) -> Option<Arc<Session>> {
        self.session.lock().unwrap().clone()
    }

    /// Fan `job` out to every rank of the current session. Returns
    /// false (job untouched by this replica) when no session is live or
    /// the session already failed.
    pub(crate) fn submit_job(&self, job: &Arc<BatchJob>) -> bool {
        let Some(session) = self.current_session() else { return false };
        if session.failed.load(Ordering::Acquire) {
            return false;
        }
        let _guard = self.submit_lock.lock().unwrap();
        // Receivers live in the session (which we hold), so fan-out is
        // all-or-nothing: no rank can miss a job its peers execute.
        for tx in &session.rank_tx {
            assert!(tx.send(RankMsg::Job(Arc::clone(job))).is_ok(), "session holds the receivers");
        }
        true
    }

    /// Times the replica's world died and was rebuilt.
    pub fn recycles(&self) -> u64 {
        self.recycles.load(Ordering::Acquire)
    }

    /// Whether the driver has exited for good (unservable configuration
    /// or no survivors): no session will ever be published again.
    pub fn is_dark(&self) -> bool {
        self.dark.load(Ordering::Acquire)
    }

    /// Shutdown: nudge the current epoch's ranks and join the driver.
    pub(crate) fn join(&self) {
        debug_assert!(self.stop.load(Ordering::Acquire), "join only after stop is set");
        if let Some(session) = self.current_session() {
            for tx in &session.rank_tx {
                let _ = tx.send(RankMsg::Stop);
            }
        }
        if let Some(handle) = self.driver.lock().unwrap().take() {
            let _ = handle.join();
        }
    }
}

/// The executor ladder: doubling batch sizes from one sample group's
/// worth up to `max_batch` (plus `max_batch` itself), so closed batches
/// pad to the next planned size. Padding is harmless: inference is
/// batch-composition independent, and padded rows are dropped.
fn batch_ladder(group_count: usize, max_batch: usize) -> Vec<usize> {
    let base = group_count.max(1);
    let mut sizes = Vec::new();
    let mut b = base;
    while b < max_batch {
        sizes.push(b);
        b *= 2;
    }
    sizes.push(max_batch.max(base));
    sizes.dedup();
    sizes
}

/// The largest batch the ladder will plan: `max_batch`, or one sample
/// group's worth when the cap sits below the group count. Validation
/// happens at this size — a sample-parallel grid can never populate a
/// batch smaller than its group count, and the ladder never dispatches
/// one.
fn ladder_cap(groups: usize, max_batch: usize) -> usize {
    groups.max(1).max(max_batch)
}

/// Re-plan a strategy for a shrunken world, mirroring the trainer's
/// elastic-degradation rung: spatial fallback at the largest viable
/// size, stepping down until one validates.
fn replan(model: &ServableModel, max_batch: usize, p: usize) -> Option<(Strategy, usize)> {
    for p_new in (1..=p).rev() {
        // Validate at the ladder cap: sample-parallel candidates serve
        // padded batches of at least one group's worth.
        let batch = ladder_cap(p_new, max_batch);
        if let Some(s) = Strategy::spatial_fallback(&model.spec, batch, p_new) {
            if s.validate(&model.spec, batch).is_ok() {
                return Some((s, p_new));
            }
        }
    }
    None
}

/// Build the per-batch-size executor ladder for a strategy.
fn build_execs(
    model: &ServableModel,
    strategy: &Strategy,
    max_batch: usize,
) -> Vec<(usize, Arc<DistExecutor>)> {
    let groups = strategy.grids.first().map_or(1, |g| g.n);
    batch_ladder(groups, max_batch)
        .into_iter()
        .filter_map(|b| {
            DistExecutor::new(model.spec.clone(), strategy.clone(), b)
                .ok()
                .map(|e| (b, Arc::new(e)))
        })
        .collect()
}

/// The driver: one epoch per loop iteration, rebuild-on-failure.
fn run_driver(
    replica: &Arc<Replica>,
    model: &Arc<ServableModel>,
    spec: ReplicaSpec,
    max_batch: usize,
) {
    let mut world = spec.world;
    let mut plan = spec.faults.clone();
    let mut strategy = Strategy::uniform(&model.spec, spec.grid);
    let mut epoch: u64 = 0;
    loop {
        if replica.stop.load(Ordering::Acquire) {
            break;
        }
        let groups = strategy.grids.first().map_or(1, |g| g.n);
        if strategy.validate(&model.spec, ladder_cap(groups, max_batch)).is_err() {
            break; // unservable configuration: replica stays dark
        }
        let execs = build_execs(model, &strategy, max_batch);
        if execs.is_empty() {
            break;
        }
        let (txs, rxs): (Vec<_>, Vec<_>) = (0..world).map(|_| unbounded()).unzip();
        let session = Arc::new(Session {
            rank_tx: txs,
            rank_rx: rxs,
            failed: AtomicBool::new(false),
            execs,
            jobs_done: AtomicU64::new(0),
        });

        // Publish + (re-)admit: first epoch opens closed, rebuilds get
        // a half-open probe.
        *replica.session.lock().unwrap() = Some(Arc::clone(&session));
        if epoch == 0 {
            replica.breaker.record_success();
        } else {
            replica.breaker.probe();
        }

        let results =
            run_ranks_with_faults_integrity(world, plan.clone(), spec.integrity.clone(), |comm| {
                serve_rank(comm, replica, &session, model)
            });

        // The epoch ended: unpublish and route traffic around us.
        *replica.session.lock().unwrap() = None;
        replica.breaker.trip();
        drain_session(replica.id, &session);

        // Health: aggregate the epoch's repair traffic.
        let mut stats = TrafficStats::default();
        for s in results.iter().filter_map(|r| r.as_ref().ok().and_then(|o| o.as_ref())) {
            stats.merge(s);
        }
        replica.breaker.note_health(&stats, session.jobs_done.load(Ordering::Acquire).max(1));

        if replica.stop.load(Ordering::Acquire) {
            break;
        }

        // Failure epoch: attribute the dead, shrink, re-plan, go again.
        replica.recycles.fetch_add(1, Ordering::AcqRel);
        let errors: Vec<CommError> =
            results.iter().filter_map(|r| r.as_ref().err().cloned()).collect();
        let dead = attribute_dead_ranks(&errors);
        let survivors: Vec<usize> = (0..world).filter(|r| !dead.contains(r)).collect();
        let live = if survivors.is_empty() || survivors.len() == world {
            // Nothing attributable (e.g. watchdog-only evidence): shed
            // one rank on the localized-failure heuristic, as the
            // trainer's shrink rung does.
            world - 1
        } else {
            survivors.len()
        };
        if live == 0 {
            break; // no survivors: the replica is gone for good
        }
        let Some((next_strategy, p_new)) = replan(model, max_batch, live) else {
            break;
        };
        let keep: Vec<usize> = survivors.iter().copied().take(p_new).collect();
        plan = plan.persistent().restrict_to_survivors(&keep);
        strategy = next_strategy;
        world = p_new;
        epoch += 1;
    }
    // Dark forever (or shutting down): leave the breaker open.
    *replica.session.lock().unwrap() = None;
    replica.breaker.trip();
    replica.dark.store(true, Ordering::Release);
}

/// Fail every job still queued in a dead epoch's channels, so
/// dispatchers retry immediately instead of waiting out timeouts. All
/// ranks hold the same job sequence; draining rank 0's channel (plus
/// the others, for Arcs' sake) covers every queued job exactly once.
fn drain_session(replica: usize, session: &Session) {
    for (rank, rx) in session.rank_rx.iter().enumerate() {
        while let Ok(msg) = rx.try_recv() {
            if rank == 0 {
                if let RankMsg::Job(job) = msg {
                    let _ = job.reply.send(JobReply { job: job.id, replica, rows: None });
                }
            }
        }
    }
}

/// One rank's serving loop: poll the job channel, execute, reply from
/// rank 0. Comm failures mark the session failed and re-panic so the
/// runtime's rank boundary classifies them; idle peers see the flag and
/// leave, collapsing the world without a hang.
fn serve_rank<C: Communicator>(
    comm: &C,
    replica: &Replica,
    session: &Session,
    model: &ServableModel,
) -> Option<TrafficStats> {
    let rank = comm.rank();
    let rx = session.rank_rx[rank].clone();
    loop {
        if session.failed.load(Ordering::Acquire) || replica.stop.load(Ordering::Acquire) {
            break;
        }
        match rx.recv_timeout(Duration::from_millis(1)) {
            Ok(RankMsg::Job(job)) => {
                let outcome = catch_unwind(AssertUnwindSafe(|| {
                    let exec = session.exec_for(job.x.shape().n);
                    exec.infer_logits(comm, &model.params, &job.x, model.stats.stats(), 0)
                }));
                match outcome {
                    Ok(assembled) => {
                        session.jobs_done.fetch_add(1, Ordering::AcqRel);
                        if rank == 0 {
                            let full = assembled.expect("root rank receives the assembly");
                            let rows = slice_rows(&full, job.n_real);
                            let _ = job.reply.send(JobReply {
                                job: job.id,
                                replica: replica.id,
                                rows: Some(rows),
                            });
                        }
                    }
                    Err(payload) => {
                        session.failed.store(true, Ordering::Release);
                        resume_unwind(payload);
                    }
                }
            }
            Ok(RankMsg::Stop) => break,
            Err(RecvTimeoutError::Timeout) => continue,
            Err(RecvTimeoutError::Disconnected) => break,
        }
    }
    comm.stats_snapshot()
}

/// Split an assembled `(padded, …)` activation into per-request rows,
/// dropping padding.
fn slice_rows(full: &Tensor, n_real: usize) -> Vec<Vec<f32>> {
    let shape = full.shape();
    let row = shape.c * shape.h * shape.w;
    (0..n_real).map(|i| full.as_slice()[i * row..(i + 1) * row].to_vec()).collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ladder_doubles_from_group_count_and_includes_the_cap() {
        assert_eq!(batch_ladder(1, 8), vec![1, 2, 4, 8]);
        assert_eq!(batch_ladder(2, 8), vec![2, 4, 8]);
        assert_eq!(batch_ladder(1, 6), vec![1, 2, 4, 6]);
        assert_eq!(batch_ladder(4, 2), vec![4], "cap below one group still serves a group");
        assert_eq!(batch_ladder(3, 12), vec![3, 6, 12]);
    }

    #[test]
    fn rows_slice_drops_padding() {
        let t =
            Tensor::from_fn(fg_tensor::Shape4::new(4, 3, 1, 1), |n, c, _, _| (n * 10 + c) as f32);
        let rows = slice_rows(&t, 2);
        assert_eq!(rows, vec![vec![0.0, 1.0, 2.0], vec![10.0, 11.0, 12.0]]);
    }
}
