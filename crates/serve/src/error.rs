//! Typed terminal errors — the "or a typed error" half of the serving
//! tier's correct-or-typed-error contract.

use std::fmt;

/// Why an accepted (or submitted) request did not produce logits.
///
/// Every variant is a *terminal, typed* outcome: the chaos tests assert
/// that no accepted request ever hangs or silently returns wrong data —
/// it either completes with bitwise-correct logits or with one of
/// these.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ServeError {
    /// Shed at admission: the bounded queue held `capacity` requests.
    QueueFull {
        /// The configured admission bound.
        capacity: usize,
    },
    /// The deadline expired before any replica produced a result;
    /// `retries` dispatch attempts had been made by then.
    DeadlineExceeded {
        /// Dispatch attempts made before the deadline passed.
        retries: u32,
    },
    /// The retry budget was exhausted without a healthy replica reply
    /// (all attempts timed out or hit failing replicas).
    RetriesExhausted {
        /// Total dispatch attempts made.
        attempts: u32,
    },
    /// The server shut down before the request completed.
    Shutdown,
}

impl fmt::Display for ServeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ServeError::QueueFull { capacity } => {
                write!(f, "request shed: admission queue full ({capacity} requests)")
            }
            ServeError::DeadlineExceeded { retries } => {
                write!(f, "deadline exceeded after {retries} dispatch attempt(s)")
            }
            ServeError::RetriesExhausted { attempts } => {
                write!(f, "no replica replied within {attempts} dispatch attempt(s)")
            }
            ServeError::Shutdown => write!(f, "server shut down before completion"),
        }
    }
}

impl std::error::Error for ServeError {}
