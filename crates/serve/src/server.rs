//! The serving front-end: admission → batcher → dispatchers → replicas.
//!
//! Dispatchers implement the routing policy: breaker-aware least-loaded
//! replica selection, a per-dispatch timeout bounded by the batch's
//! nearest deadline, retry with exponential backoff on a different
//! replica, and optional hedging — a duplicate dispatch to a second
//! replica once the primary is slower than the hedge threshold, first
//! reply wins. Hedging is safe by construction: a replica's reply is a
//! deterministic function of the dispatched batch (the crate-level
//! contract pins it to the serial reference), so *which* replica
//! answers is unobservable to the client.

use std::sync::atomic::{AtomicBool, AtomicU64, AtomicUsize, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

use crossbeam::channel::{unbounded, Receiver, RecvTimeoutError, Sender};
use fg_core::ServableModel;
use fg_nn::LayerKind;
use fg_tensor::{Shape4, Tensor};

use crate::batcher::{run_batcher, ClosedBatch};
use crate::error::ServeError;
use crate::queue::{AdmissionQueue, Admitted};
use crate::replica::{BatchJob, JobReply, Replica, ReplicaSpec};
use crate::{CostEstimator, ServerConfig};

/// A completed request's payload.
#[derive(Debug, Clone, PartialEq)]
pub struct InferReply {
    /// The final layer's activation for this sample, flattened — equal
    /// to [`ServableModel::infer`] on the same input (bitwise for
    /// sharded heads; see the crate-level contract).
    pub logits: Vec<f32>,
    /// Admission → completion latency.
    pub latency: Duration,
    /// Replica that produced the winning reply.
    pub replica: usize,
    /// Real requests in the dispatched batch.
    pub batch: usize,
    /// Whether a hedge dispatch was in flight.
    pub hedged: bool,
    /// Dispatch attempts beyond the first.
    pub retries: u32,
}

/// Terminal outcome of one request.
pub type InferResult = Result<InferReply, ServeError>;

/// Client handle for one accepted request.
pub struct Response {
    rx: Receiver<InferResult>,
}

impl Response {
    /// Block until the terminal outcome. The serving tier guarantees a
    /// terminal reply for every accepted request (the chaos tests pin
    /// "zero hangs"), so this returns; a disconnected channel maps to
    /// the typed [`ServeError::Shutdown`].
    pub fn wait(&self) -> InferResult {
        self.rx.recv().unwrap_or(Err(ServeError::Shutdown))
    }

    /// Like [`Response::wait`] with a wall-clock bound; `None` means
    /// the request is still in flight.
    pub fn wait_timeout(&self, timeout: Duration) -> Option<InferResult> {
        match self.rx.recv_timeout(timeout) {
            Ok(r) => Some(r),
            Err(RecvTimeoutError::Disconnected) => Some(Err(ServeError::Shutdown)),
            Err(RecvTimeoutError::Timeout) => None,
        }
    }
}

/// Monotonic serving counters.
#[derive(Debug, Default)]
pub(crate) struct Metrics {
    pub accepted: AtomicU64,
    pub shed: AtomicU64,
    pub completed_ok: AtomicU64,
    pub deadline_exceeded: AtomicU64,
    pub retries_exhausted: AtomicU64,
    pub shutdown_errors: AtomicU64,
    pub batches: AtomicU64,
    pub batched_requests: AtomicU64,
    pub dispatch_retries: AtomicU64,
    pub hedges: AtomicU64,
}

/// A point-in-time copy of the serving counters.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct MetricsSnapshot {
    /// Requests past admission.
    pub accepted: u64,
    /// Requests shed at the full admission queue.
    pub shed: u64,
    /// Requests completed with logits.
    pub completed_ok: u64,
    /// Requests failed `DeadlineExceeded`.
    pub deadline_exceeded: u64,
    /// Requests failed `RetriesExhausted`.
    pub retries_exhausted: u64,
    /// Requests failed `Shutdown`.
    pub shutdown_errors: u64,
    /// Batches dispatched.
    pub batches: u64,
    /// Requests across all dispatched batches (mean batch size =
    /// `batched_requests / batches`).
    pub batched_requests: u64,
    /// Dispatch attempts beyond each batch's first.
    pub dispatch_retries: u64,
    /// Hedge dispatches issued.
    pub hedges: u64,
    /// World rebuilds across all replicas (rank deaths absorbed).
    pub replica_recycles: u64,
}

/// State shared by the batcher, dispatchers, and the front-end.
pub(crate) struct ServerShared {
    pub(crate) cfg: ServerConfig,
    pub(crate) stop: Arc<AtomicBool>,
    pub(crate) metrics: Metrics,
    pub(crate) cost: CostEstimator,
    pub(crate) replicas: Vec<Arc<Replica>>,
    /// Closed batches handed to the dispatcher pool but not yet served
    /// to completion. The batcher bounds this (see [`run_batcher`]) so
    /// overload backs up into the admission queue — where it sheds
    /// typed — instead of into an invisible dispatch backlog that blows
    /// every deadline.
    pub(crate) inflight_batches: AtomicUsize,
    next_job: AtomicU64,
    input_chw: (usize, usize, usize),
}

/// The serving tier. Construct with [`Server::start`], submit with
/// [`Server::submit`], tear down with [`Server::shutdown`].
pub struct Server {
    shared: Arc<ServerShared>,
    queue: Arc<AdmissionQueue>,
    dispatch_rx: Receiver<ClosedBatch>,
    batcher: Option<std::thread::JoinHandle<()>>,
    dispatchers: Vec<std::thread::JoinHandle<()>>,
}

impl Server {
    /// Boot the tier: spawn every replica's driver, the batcher, and
    /// the dispatcher pool. Blocks (bounded) until each replica has
    /// published its first session, so early traffic is not spuriously
    /// shed onto cold replicas.
    pub fn start(
        model: Arc<ServableModel>,
        replicas: Vec<ReplicaSpec>,
        cfg: ServerConfig,
    ) -> Server {
        assert!(!replicas.is_empty(), "serving needs at least one replica");
        let input = model
            .spec
            .layers()
            .iter()
            .position(|l| matches!(l.kind, LayerKind::Input { .. }))
            .expect("network has an input layer");
        let input_chw = model.spec.shapes()[input];

        let stop = Arc::new(AtomicBool::new(false));
        let replicas: Vec<Arc<Replica>> = replicas
            .into_iter()
            .enumerate()
            .map(|(i, spec)| {
                Replica::spawn(
                    i,
                    spec,
                    Arc::clone(&model),
                    cfg.max_batch,
                    cfg.breaker.clone(),
                    Arc::clone(&stop),
                )
            })
            .collect();
        // Bounded warmup: wait for first sessions (plan compilation). A
        // replica whose driver already exited (unservable grid for this
        // model) will never publish — skip it instead of burning the
        // deadline.
        let warm_deadline = Instant::now() + Duration::from_secs(30);
        for r in &replicas {
            while r.current_session().is_none() && !r.is_dark() && Instant::now() < warm_deadline {
                std::thread::sleep(Duration::from_millis(1));
            }
        }
        if replicas.iter().all(|r| r.is_dark()) {
            eprintln!(
                "fg-serve: every replica is dark (no grid validates for this \
                 model/batch); all requests will fail typed"
            );
        }

        let shared = Arc::new(ServerShared {
            cost: CostEstimator::new(cfg.cost_prior),
            cfg,
            stop,
            metrics: Metrics::default(),
            replicas,
            inflight_batches: AtomicUsize::new(0),
            next_job: AtomicU64::new(0),
            input_chw,
        });
        let queue = Arc::new(AdmissionQueue::new(shared.cfg.queue_capacity));
        let (dispatch_tx, dispatch_rx) = unbounded();

        let batcher = {
            let shared = Arc::clone(&shared);
            let queue = Arc::clone(&queue);
            let tx: Sender<ClosedBatch> = dispatch_tx;
            std::thread::Builder::new()
                .name("fg-serve-batcher".into())
                .spawn(move || run_batcher(&shared, &queue, &tx))
                .expect("spawn batcher")
        };
        let dispatchers = (0..shared.cfg.dispatchers.max(1))
            .map(|i| {
                let shared = Arc::clone(&shared);
                let rx = dispatch_rx.clone();
                std::thread::Builder::new()
                    .name(format!("fg-serve-dispatch-{i}"))
                    .spawn(move || run_dispatcher(&shared, &rx))
                    .expect("spawn dispatcher")
            })
            .collect();

        Server { shared, queue, dispatch_rx, batcher: Some(batcher), dispatchers }
    }

    /// Submit one `(1, C, H, W)` sample with an absolute deadline.
    /// Sheds typed ([`ServeError::QueueFull`]) when the admission queue
    /// is at capacity; otherwise the returned [`Response`] resolves to
    /// the request's terminal outcome.
    pub fn submit(&self, x: Tensor, deadline: Instant) -> Result<Response, ServeError> {
        let (c, h, w) = self.shared.input_chw;
        assert_eq!(x.shape(), Shape4::new(1, c, h, w), "submit takes one sample in input shape");
        let (tx, rx) = unbounded();
        let admitted = Admitted { x, deadline, admitted_at: Instant::now(), reply: tx };
        match self.queue.try_push(admitted) {
            Ok(()) => {
                self.shared.metrics.accepted.fetch_add(1, Ordering::AcqRel);
                Ok(Response { rx })
            }
            Err(e) => {
                self.shared.metrics.shed.fetch_add(1, Ordering::AcqRel);
                Err(e)
            }
        }
    }

    /// Current admission-queue depth.
    pub fn queue_depth(&self) -> usize {
        self.queue.depth()
    }

    /// Counters so far.
    pub fn metrics(&self) -> MetricsSnapshot {
        let m = &self.shared.metrics;
        MetricsSnapshot {
            accepted: m.accepted.load(Ordering::Acquire),
            shed: m.shed.load(Ordering::Acquire),
            completed_ok: m.completed_ok.load(Ordering::Acquire),
            deadline_exceeded: m.deadline_exceeded.load(Ordering::Acquire),
            retries_exhausted: m.retries_exhausted.load(Ordering::Acquire),
            shutdown_errors: m.shutdown_errors.load(Ordering::Acquire),
            batches: m.batches.load(Ordering::Acquire),
            batched_requests: m.batched_requests.load(Ordering::Acquire),
            dispatch_retries: m.dispatch_retries.load(Ordering::Acquire),
            hedges: m.hedges.load(Ordering::Acquire),
            replica_recycles: self.shared.replicas.iter().map(|r| r.recycles()).sum(),
        }
    }

    /// Tear the tier down: every queued or in-flight request terminates
    /// typed, every thread joins. Returns the final counters.
    pub fn shutdown(mut self) -> MetricsSnapshot {
        self.shared.stop.store(true, Ordering::Release);
        if let Some(b) = self.batcher.take() {
            let _ = b.join();
        }
        // The batcher is gone; fail any batch it closed but no
        // dispatcher will pick up (they may already be draining).
        while let Ok(batch) = self.dispatch_rx.try_recv() {
            for r in batch.reqs {
                self.shared.metrics.shutdown_errors.fetch_add(1, Ordering::AcqRel);
                let _ = r.reply.send(Err(ServeError::Shutdown));
            }
        }
        for d in self.dispatchers.drain(..) {
            let _ = d.join();
        }
        for r in &self.shared.replicas {
            r.join();
        }
        self.metrics()
    }
}

/// Dispatcher loop: pull closed batches, serve them end to end.
fn run_dispatcher(shared: &Arc<ServerShared>, rx: &Receiver<ClosedBatch>) {
    loop {
        match rx.recv_timeout(Duration::from_millis(2)) {
            Ok(batch) => {
                serve_batch(shared, batch.reqs);
                shared.inflight_batches.fetch_sub(1, Ordering::AcqRel);
            }
            Err(RecvTimeoutError::Timeout) => {
                if shared.stop.load(Ordering::Acquire) {
                    break;
                }
            }
            Err(RecvTimeoutError::Disconnected) => break,
        }
    }
    while let Ok(batch) = rx.try_recv() {
        fail_all(shared, &batch.reqs, &ServeError::Shutdown);
    }
}

fn fail_all(shared: &ServerShared, reqs: &[Admitted], err: &ServeError) {
    let counter = match err {
        ServeError::DeadlineExceeded { .. } => &shared.metrics.deadline_exceeded,
        ServeError::RetriesExhausted { .. } => &shared.metrics.retries_exhausted,
        ServeError::Shutdown => &shared.metrics.shutdown_errors,
        ServeError::QueueFull { .. } => &shared.metrics.shed,
    };
    for r in reqs {
        counter.fetch_add(1, Ordering::AcqRel);
        let _ = r.reply.send(Err(err.clone()));
    }
}

/// Breaker-aware least-loaded replica choice; acquires the breaker
/// (probe slot included) for the returned replica.
fn pick_replica(shared: &ServerShared, exclude: &[usize]) -> Option<Arc<Replica>> {
    let mut candidates: Vec<&Arc<Replica>> = shared
        .replicas
        .iter()
        .filter(|r| {
            !exclude.contains(&r.id) && r.breaker.available() && r.current_session().is_some()
        })
        .collect();
    candidates.sort_by_key(|r| r.outstanding.load(Ordering::Acquire));
    candidates.into_iter().find(|r| r.breaker.try_acquire()).map(Arc::clone)
}

/// Outcome bookkeeping for every replica a dispatch attempt touched.
enum Verdict {
    Won,
    Failed,
    /// Slower half of a hedge pair: no evidence either way.
    Neutral,
}

struct AttemptSuccess {
    rows: Vec<Vec<f32>>,
    replica: usize,
    hedged: bool,
    latency: Duration,
}

/// Serve one closed batch to completion: pick → dispatch → (hedge) →
/// retry with backoff → typed failure. Every request gets exactly one
/// terminal reply.
fn serve_batch(shared: &Arc<ServerShared>, reqs: Vec<Admitted>) {
    if shared.stop.load(Ordering::Acquire) {
        fail_all(shared, &reqs, &ServeError::Shutdown);
        return;
    }
    let mut live = reqs;
    let mut attempts: u32 = 0;
    let mut exclude: Vec<usize> = Vec::new();
    loop {
        let now = Instant::now();
        if shared.stop.load(Ordering::Acquire) {
            fail_all(shared, &live, &ServeError::Shutdown);
            return;
        }
        // Cull expired *and doomed* members before burning a replica on
        // them: a request whose remaining slack is below the service
        // estimate cannot win — the replica would compute the full
        // forward only for the dispatcher to discard it, which is how
        // overload turns into wasted-work collapse. (A batch can go
        // stale between closing and reaching a dispatcher, and between
        // retry attempts.)
        let horizon = now + shared.cost.estimate();
        let (viable, doomed): (Vec<_>, Vec<_>) = live.drain(..).partition(|r| r.deadline > horizon);
        if !doomed.is_empty() {
            fail_all(shared, &doomed, &ServeError::DeadlineExceeded { retries: attempts });
        }
        live = viable;
        if live.is_empty() {
            return;
        }
        let min_deadline = live.iter().map(|r| r.deadline).min().expect("non-empty");
        if attempts > shared.cfg.max_retries {
            fail_all(shared, &live, &ServeError::RetriesExhausted { attempts });
            return;
        }
        let picked = pick_replica(shared, &exclude).or_else(|| pick_replica(shared, &[]));
        let Some(primary) = picked else {
            // Every breaker open or every session down (rebuilds in
            // progress): wait a beat, bounded by the deadline.
            std::thread::sleep(
                Duration::from_millis(1).min(min_deadline.saturating_duration_since(now)),
            );
            continue;
        };
        let budget = min_deadline.saturating_duration_since(now).min(shared.cfg.attempt_timeout);
        match try_once(shared, &live, &primary, budget) {
            Ok(win) => {
                let done = Instant::now();
                for (i, r) in live.iter().enumerate() {
                    shared.metrics.completed_ok.fetch_add(1, Ordering::AcqRel);
                    let _ = r.reply.send(Ok(InferReply {
                        logits: win.rows[i].clone(),
                        latency: done.saturating_duration_since(r.admitted_at),
                        replica: win.replica,
                        batch: live.len(),
                        hedged: win.hedged,
                        retries: attempts,
                    }));
                }
                shared.cost.observe(win.latency);
                return;
            }
            Err(failed) => {
                attempts += 1;
                shared.metrics.dispatch_retries.fetch_add(1, Ordering::AcqRel);
                exclude = failed;
                let backoff = shared
                    .cfg
                    .retry_backoff
                    .saturating_mul(1 << (attempts - 1).min(6))
                    .min(Duration::from_millis(20))
                    .min(min_deadline.saturating_duration_since(Instant::now()) / 4);
                std::thread::sleep(backoff);
            }
        }
    }
}

/// One dispatch attempt (primary plus optional hedge). `Ok` carries the
/// winning rows; `Err` lists the replica ids that failed, for the retry
/// exclusion set. Breakers of every touched replica are resolved here.
fn try_once(
    shared: &Arc<ServerShared>,
    reqs: &[Admitted],
    primary: &Arc<Replica>,
    budget: Duration,
) -> Result<AttemptSuccess, Vec<usize>> {
    let (reply_tx, reply_rx) = unbounded::<JobReply>();
    let start = Instant::now();
    let deadline = start + budget;

    // (replica, job id, verdict) for everything we dispatched to.
    let mut touched: Vec<(Arc<Replica>, u64, Verdict)> = Vec::new();
    let mut hedged = false;

    let submit = |replica: &Arc<Replica>,
                  touched: &mut Vec<(Arc<Replica>, u64, Verdict)>|
     -> bool {
        let Some(session) = replica.current_session() else { return false };
        let Some(padded) = session.padded_size(reqs.len()) else { return false };
        let job_id = shared.next_job.fetch_add(1, Ordering::AcqRel);
        let (c, h, w) = shared.input_chw;
        let mut x = Tensor::zeros(Shape4::new(padded, c, h, w));
        let row = c * h * w;
        for (i, r) in reqs.iter().enumerate() {
            x.as_mut_slice()[i * row..(i + 1) * row].copy_from_slice(r.x.as_slice());
        }
        let job = Arc::new(BatchJob { id: job_id, n_real: reqs.len(), x, reply: reply_tx.clone() });
        if !replica.submit_job(&job) {
            return false;
        }
        replica.outstanding.fetch_add(1, Ordering::AcqRel);
        touched.push((Arc::clone(replica), job_id, Verdict::Failed));
        true
    };

    let resolve = |touched: Vec<(Arc<Replica>, u64, Verdict)>| {
        for (replica, _, verdict) in &touched {
            replica.outstanding.fetch_sub(1, Ordering::AcqRel);
            match verdict {
                Verdict::Won => replica.breaker.record_success(),
                Verdict::Failed => replica.breaker.record_failure(),
                Verdict::Neutral => replica.breaker.release_probe(),
            }
        }
        touched
            .iter()
            .filter(|(_, _, v)| matches!(v, Verdict::Failed))
            .map(|(r, _, _)| r.id)
            .collect::<Vec<_>>()
    };

    if !submit(primary, &mut touched) {
        return Err(resolve(touched).into_iter().chain([primary.id]).collect());
    }

    loop {
        let now = Instant::now();
        if now >= deadline {
            return Err(resolve(touched));
        }
        // Hedge once the primary is slower than the threshold.
        let mut wait = deadline.saturating_duration_since(now);
        if let (Some(after), false) = (shared.cfg.hedge_after, hedged) {
            let hedge_at = start + after;
            if now >= hedge_at {
                hedged = true;
                if let Some(second) = pick_replica(shared, &[primary.id]) {
                    if submit(&second, &mut touched) {
                        shared.metrics.hedges.fetch_add(1, Ordering::AcqRel);
                        touched.last_mut().expect("just pushed").2 = Verdict::Neutral;
                        // The primary also becomes neutral-unless-it-fails:
                        // both are racing now; losing the race is not a
                        // failure verdict.
                        touched[0].2 = Verdict::Neutral;
                    } else {
                        second.breaker.record_failure();
                    }
                }
            } else {
                wait = wait.min(hedge_at.saturating_duration_since(now));
            }
        }
        match reply_rx.recv_timeout(wait) {
            Ok(rep) => {
                let Some(slot) = touched.iter().position(|(_, id, _)| *id == rep.job) else {
                    continue; // stale duplicate; ignore
                };
                match rep.rows {
                    Some(rows) => {
                        touched[slot].2 = Verdict::Won;
                        let latency = start.elapsed();
                        resolve(touched);
                        return Ok(AttemptSuccess { rows, replica: rep.replica, hedged, latency });
                    }
                    None => {
                        touched[slot].2 = Verdict::Failed;
                        let all_failed =
                            touched.iter().all(|(_, _, v)| matches!(v, Verdict::Failed));
                        if all_failed {
                            return Err(resolve(touched));
                        }
                    }
                }
            }
            Err(RecvTimeoutError::Timeout) => continue,
            Err(RecvTimeoutError::Disconnected) => {
                // Every job Arc dropped without a reply: dead worlds.
                for t in &mut touched {
                    t.2 = Verdict::Failed;
                }
                return Err(resolve(touched));
            }
        }
    }
}
