//! # fg-serve — the inference serving tier
//!
//! Turns the paper's strong-scaling substrate into a latency-bound
//! system: requests with deadlines flow through a **bounded admission
//! queue** (typed load shedding when full), a **deadline-aware dynamic
//! batcher** (close a batch at size B, or when the oldest request's
//! deadline slack hits the dispatch-cost estimate), and a router over
//! independent **replica worlds**, each a thread-per-rank
//! [`fg_core::DistExecutor`] running `forward_inference` under the
//! integrity-over-faults communicator stack.
//!
//! Robustness is request-shaped, not step-shaped:
//!
//! * per-dispatch **timeout**, **retry with exponential backoff**, and
//!   optional **hedging** to a second replica (replicas are
//!   deterministic functions of the request batch, so the first reply
//!   wins safely);
//! * a per-replica **circuit breaker** fed by dispatch outcomes,
//!   world-death (watchdog / rank-failure) signals, and
//!   [`fg_comm::TrafficStats`] repair-traffic health;
//! * a replica that loses a rank mid-traffic fails its in-flight
//!   batches *typed* (the dispatcher routes around it), rebuilds on the
//!   surviving ranks via the elastic-degradation path, and re-admits
//!   through a half-open probe — offered load sees elevated p99, not
//!   silent wrong answers.
//!
//! The correctness contract, pinned by the chaos tests: **every
//! accepted request terminates with either logits equal to the
//! single-process reference ([`fg_core::ServableModel::infer`]) or a
//! typed error** ([`ServeError`]). For models with *sharded* heads
//! (segmentation — the paper's family) the equality is **bitwise on
//! every grid** a replica may rebuild onto; for per-sample (GAP → FC)
//! heads it is bitwise under sample parallelism and ULP-close under
//! spatial partitioning, where GAP's spatial allreduce reorders the
//! summation (quantified in `tests/proptests.rs`). Drops and corruption
//! are repaired below us by the integrity layer; kills surface as typed
//! retries.

pub mod batcher;
pub mod breaker;
pub mod error;
pub mod loadgen;
pub mod queue;
pub mod replica;
pub mod server;

pub use breaker::{BreakerConfig, BreakerState, CircuitBreaker};
pub use error::ServeError;
pub use loadgen::{run_load, LoadConfig, LoadMode, LoadReport};
pub use replica::ReplicaSpec;
pub use server::{InferReply, InferResult, MetricsSnapshot, Response, Server};

use std::time::Duration;

/// Tuning for the serving front-end. Defaults suit the small CNNs the
/// test and bench harnesses serve; every knob is exercised by
/// `repro -- serve`.
#[derive(Debug, Clone)]
pub struct ServerConfig {
    /// Bounded admission queue depth; submissions beyond it are shed
    /// with [`ServeError::QueueFull`].
    pub queue_capacity: usize,
    /// Close a batch at this many requests.
    pub max_batch: usize,
    /// Dispatcher threads pulling closed batches to replicas.
    pub dispatchers: usize,
    /// Initial dispatch-cost estimate (one batch, submit → reply); the
    /// batcher and router refine it with an EMA of observed latencies.
    pub cost_prior: Duration,
    /// Safety margin added to the cost estimate in the batch-close rule.
    pub batch_slack_margin: Duration,
    /// Maximum time the oldest request may linger in an open batch,
    /// regardless of remaining deadline slack.
    pub batch_linger: Duration,
    /// Cap on one dispatch attempt's wait (also bounded by the batch's
    /// nearest deadline).
    pub attempt_timeout: Duration,
    /// Dispatch attempts per batch beyond the first.
    pub max_retries: u32,
    /// Base of the exponential retry backoff (doubles per attempt).
    pub retry_backoff: Duration,
    /// Hedge to a second replica if the primary has not replied this
    /// long after dispatch (`None` disables hedging).
    pub hedge_after: Option<Duration>,
    /// Per-replica circuit-breaker tuning.
    pub breaker: BreakerConfig,
}

impl Default for ServerConfig {
    fn default() -> ServerConfig {
        ServerConfig {
            queue_capacity: 256,
            max_batch: 8,
            dispatchers: 2,
            cost_prior: Duration::from_millis(2),
            batch_slack_margin: Duration::from_micros(500),
            batch_linger: Duration::from_millis(2),
            attempt_timeout: Duration::from_millis(60),
            max_retries: 4,
            retry_backoff: Duration::from_micros(500),
            hedge_after: None,
            breaker: BreakerConfig::default(),
        }
    }
}

/// Shared, EMA-smoothed estimate of one batch's dispatch cost.
#[derive(Debug)]
pub(crate) struct CostEstimator {
    nanos: std::sync::Mutex<f64>,
}

impl CostEstimator {
    pub(crate) fn new(prior: Duration) -> CostEstimator {
        CostEstimator { nanos: std::sync::Mutex::new(prior.as_nanos() as f64) }
    }

    pub(crate) fn estimate(&self) -> Duration {
        Duration::from_nanos(*self.nanos.lock().unwrap() as u64)
    }

    /// Fold an observed batch latency in (EMA, α = 0.2).
    pub(crate) fn observe(&self, latency: Duration) {
        let mut e = self.nanos.lock().unwrap();
        *e = 0.8 * *e + 0.2 * latency.as_nanos() as f64;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn cost_estimator_tracks_observations() {
        let c = CostEstimator::new(Duration::from_millis(1));
        assert_eq!(c.estimate(), Duration::from_millis(1));
        for _ in 0..60 {
            c.observe(Duration::from_millis(3));
        }
        let e = c.estimate();
        assert!(e > Duration::from_micros(2900) && e < Duration::from_micros(3100), "{e:?}");
    }
}
