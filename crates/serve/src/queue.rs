//! Bounded admission queue: accept-or-shed, never block the client.
//!
//! The vendored channel stand-in offers only unbounded channels, so the
//! bound is enforced with an atomic depth counter *reserved before the
//! send*: a successful reservation guarantees the enqueue, and a full
//! queue rejects with the typed [`ServeError::QueueFull`] instead of
//! applying backpressure — overload turns into fast, measurable load
//! shedding rather than unbounded queueing delay (the queue would
//! otherwise absorb arbitrary latency and every deadline would pass in
//! line).

use std::sync::atomic::{AtomicUsize, Ordering};
use std::time::{Duration, Instant};

use crossbeam::channel::{unbounded, Receiver, RecvTimeoutError, Sender};
use fg_tensor::Tensor;

use crate::error::ServeError;
use crate::server::InferResult;

/// An admitted request, as the batcher sees it.
pub(crate) struct Admitted {
    /// The single-sample input, `(1, C, H, W)`.
    pub x: Tensor,
    /// Absolute completion deadline.
    pub deadline: Instant,
    /// When admission accepted the request (latency baseline).
    pub admitted_at: Instant,
    /// Terminal-reply channel back to the client.
    pub reply: Sender<InferResult>,
}

/// The bounded admission queue.
pub(crate) struct AdmissionQueue {
    tx: Sender<Admitted>,
    rx: Receiver<Admitted>,
    depth: AtomicUsize,
    capacity: usize,
}

impl AdmissionQueue {
    pub(crate) fn new(capacity: usize) -> AdmissionQueue {
        assert!(capacity > 0, "admission queue needs a positive capacity");
        let (tx, rx) = unbounded();
        AdmissionQueue { tx, rx, depth: AtomicUsize::new(0), capacity }
    }

    /// Admit or shed. A `Full` result is the typed load-shedding path;
    /// the request was *not* enqueued and the client owns it again.
    pub(crate) fn try_push(&self, item: Admitted) -> Result<(), ServeError> {
        let mut cur = self.depth.load(Ordering::Acquire);
        loop {
            if cur >= self.capacity {
                return Err(ServeError::QueueFull { capacity: self.capacity });
            }
            match self.depth.compare_exchange_weak(
                cur,
                cur + 1,
                Ordering::AcqRel,
                Ordering::Acquire,
            ) {
                Ok(_) => break,
                Err(seen) => cur = seen,
            }
        }
        assert!(self.tx.send(item).is_ok(), "queue receiver outlives the server");
        Ok(())
    }

    /// Pop the oldest admitted request, waiting at most `timeout`.
    pub(crate) fn pop(&self, timeout: Duration) -> Option<Admitted> {
        match self.rx.recv_timeout(timeout) {
            Ok(item) => {
                self.depth.fetch_sub(1, Ordering::AcqRel);
                Some(item)
            }
            Err(RecvTimeoutError::Timeout) | Err(RecvTimeoutError::Disconnected) => None,
        }
    }

    /// Drain everything currently queued (shutdown path).
    pub(crate) fn drain(&self) -> Vec<Admitted> {
        let mut out = Vec::new();
        while let Some(item) = self.pop(Duration::ZERO) {
            out.push(item);
        }
        out
    }

    pub(crate) fn depth(&self) -> usize {
        self.depth.load(Ordering::Acquire)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use fg_tensor::Shape4;

    fn req(tag: u64) -> (Admitted, Receiver<InferResult>) {
        let (tx, rx) = unbounded();
        let now = Instant::now();
        let a = Admitted {
            x: Tensor::zeros(Shape4::new(1, 1, 2, 2)),
            // Tag requests by deadline offset so pop order is checkable.
            deadline: now + Duration::from_secs(tag),
            admitted_at: now,
            reply: tx,
        };
        (a, rx)
    }

    fn tag_of(a: &Admitted) -> u64 {
        a.deadline.duration_since(a.admitted_at).as_secs()
    }

    #[test]
    fn sheds_typed_when_full_and_frees_capacity_on_pop() {
        let q = AdmissionQueue::new(2);
        let (a, _r1) = req(1);
        let (b, _r2) = req(2);
        let (c, _r3) = req(3);
        q.try_push(a).unwrap();
        q.try_push(b).unwrap();
        assert_eq!(q.try_push(c).unwrap_err(), ServeError::QueueFull { capacity: 2 });
        assert_eq!(q.depth(), 2);
        assert_eq!(tag_of(&q.pop(Duration::ZERO).unwrap()), 1);
        let (c2, _r4) = req(3);
        q.try_push(c2).unwrap();
        let drained = q.drain();
        assert_eq!(drained.iter().map(tag_of).collect::<Vec<_>>(), vec![2, 3]);
        assert_eq!(q.depth(), 0);
    }
}
