//! Per-replica circuit breaker.
//!
//! State machine (see DESIGN.md "Serving tier"):
//!
//! ```text
//!            consecutive failures ≥ threshold, or trip()
//!   Closed ────────────────────────────────────────────▶ Open
//!     ▲                                                   │ cooldown
//!     │ probe succeeds                                    ▼ elapsed
//!     └──────────────────────────────────────────────  HalfOpen
//!                       probe fails ▶ Open                (one probe)
//! ```
//!
//! Inputs: dispatch outcomes (`record_success` / `record_failure`),
//! hard world-death signals from the watchdog / rank-failure path
//! (`trip`, immediate open), the replica driver's rebuild completion
//! (`probe`, skip the cooldown and offer one probe), and
//! [`fg_comm::TrafficStats`] repair-traffic health (`note_health`, a
//! soft failure when integrity repairs per job exceed the alert level —
//! a link can be lossy enough to hurt latency without ever failing a
//! dispatch outright).

use std::sync::Mutex;
use std::time::{Duration, Instant};

use fg_comm::TrafficStats;

/// Breaker tuning.
#[derive(Debug, Clone)]
pub struct BreakerConfig {
    /// Consecutive dispatch failures that open the breaker.
    pub failure_threshold: u32,
    /// Time an open breaker waits before offering a half-open probe.
    pub cooldown: Duration,
    /// Integrity repairs (drops retransmitted + corruptions repaired)
    /// per job above which an epoch's traffic counts as a soft failure.
    pub repair_alert: f64,
}

impl Default for BreakerConfig {
    fn default() -> BreakerConfig {
        BreakerConfig {
            failure_threshold: 3,
            cooldown: Duration::from_millis(25),
            repair_alert: 32.0,
        }
    }
}

/// Observable breaker state (for metrics and tests).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BreakerState {
    /// Healthy: dispatches flow.
    Closed,
    /// Failing: dispatches are refused until the cooldown elapses.
    Open,
    /// One probe dispatch is allowed; its outcome decides.
    HalfOpen,
}

#[derive(Debug)]
enum State {
    Closed { consecutive: u32 },
    Open { since: Instant },
    HalfOpen { probing: bool },
}

/// A per-replica circuit breaker.
#[derive(Debug)]
pub struct CircuitBreaker {
    state: Mutex<State>,
    cfg: BreakerConfig,
}

impl CircuitBreaker {
    pub fn new(cfg: BreakerConfig) -> CircuitBreaker {
        CircuitBreaker { state: Mutex::new(State::Closed { consecutive: 0 }), cfg }
    }

    /// Read-only view.
    pub fn state(&self) -> BreakerState {
        match *self.state.lock().unwrap() {
            State::Closed { .. } => BreakerState::Closed,
            State::Open { .. } => BreakerState::Open,
            State::HalfOpen { .. } => BreakerState::HalfOpen,
        }
    }

    /// Whether a dispatch may proceed *right now*, acquiring the
    /// half-open probe slot if that is what permits it. Callers must
    /// follow up with [`CircuitBreaker::record_success`] or
    /// [`CircuitBreaker::record_failure`].
    pub fn try_acquire(&self) -> bool {
        let mut s = self.state.lock().unwrap();
        match &mut *s {
            State::Closed { .. } => true,
            State::Open { since } => {
                if since.elapsed() >= self.cfg.cooldown {
                    *s = State::HalfOpen { probing: true };
                    true
                } else {
                    false
                }
            }
            State::HalfOpen { probing } => {
                if *probing {
                    false
                } else {
                    *probing = true;
                    true
                }
            }
        }
    }

    /// Whether a dispatch *could* proceed, without taking the probe.
    pub fn available(&self) -> bool {
        let s = self.state.lock().unwrap();
        match &*s {
            State::Closed { .. } => true,
            State::Open { since } => since.elapsed() >= self.cfg.cooldown,
            State::HalfOpen { probing } => !*probing,
        }
    }

    /// A dispatch completed: close.
    pub fn record_success(&self) {
        *self.state.lock().unwrap() = State::Closed { consecutive: 0 };
    }

    /// A dispatch failed or timed out.
    pub fn record_failure(&self) {
        let mut s = self.state.lock().unwrap();
        match &mut *s {
            State::Closed { consecutive } => {
                *consecutive += 1;
                if *consecutive >= self.cfg.failure_threshold {
                    *s = State::Open { since: Instant::now() };
                }
            }
            State::HalfOpen { .. } => *s = State::Open { since: Instant::now() },
            State::Open { .. } => {}
        }
    }

    /// Hard health signal (world death: watchdog timeout or rank
    /// failure) — open immediately, no threshold.
    pub fn trip(&self) {
        *self.state.lock().unwrap() = State::Open { since: Instant::now() };
    }

    /// The replica rebuilt and wants back in: skip the cooldown and
    /// offer one probe (re-admission).
    pub fn probe(&self) {
        *self.state.lock().unwrap() = State::HalfOpen { probing: false };
    }

    /// Release an acquired probe without a verdict (the neutral, slower
    /// half of a hedge pair): the probe slot becomes available again.
    pub fn release_probe(&self) {
        let mut s = self.state.lock().unwrap();
        if let State::HalfOpen { probing } = &mut *s {
            *probing = false;
        }
    }

    /// Soft health signal from an epoch's traffic: if the integrity
    /// layer repaired more than `repair_alert` incidents per job, the
    /// replica's links are degraded — count one failure so sustained
    /// gray traffic opens the breaker.
    pub fn note_health(&self, stats: &TrafficStats, jobs: u64) {
        if jobs == 0 {
            return;
        }
        let repairs = (stats.retransmits() + stats.corrupt_repaired()) as f64;
        if repairs / jobs as f64 > self.cfg.repair_alert {
            self.record_failure();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn fast() -> BreakerConfig {
        BreakerConfig {
            failure_threshold: 2,
            cooldown: Duration::from_millis(5),
            repair_alert: 4.0,
        }
    }

    #[test]
    fn opens_after_threshold_then_recloses_via_probe() {
        let b = CircuitBreaker::new(fast());
        assert!(b.try_acquire());
        b.record_failure();
        assert_eq!(b.state(), BreakerState::Closed);
        b.record_failure();
        assert_eq!(b.state(), BreakerState::Open);
        assert!(!b.try_acquire(), "open breaker refuses inside cooldown");
        std::thread::sleep(Duration::from_millis(6));
        assert!(b.try_acquire(), "cooldown elapsed: half-open probe");
        assert!(!b.try_acquire(), "only one probe at a time");
        b.record_success();
        assert_eq!(b.state(), BreakerState::Closed);
    }

    #[test]
    fn failed_probe_reopens_and_trip_is_immediate() {
        let b = CircuitBreaker::new(fast());
        b.trip();
        assert_eq!(b.state(), BreakerState::Open);
        b.probe();
        assert!(b.try_acquire());
        b.record_failure();
        assert_eq!(b.state(), BreakerState::Open);
    }

    #[test]
    fn repair_traffic_counts_as_soft_failures() {
        let b = CircuitBreaker::new(fast());
        let mut stats = TrafficStats::default();
        for _ in 0..100 {
            stats.record_retransmit();
            stats.record_corrupt_repaired();
        }
        b.note_health(&stats, 10); // 20 repairs/job > 4.0
        b.note_health(&stats, 10);
        assert_eq!(b.state(), BreakerState::Open);
        b.record_success();
        let healthy = TrafficStats::default();
        b.note_health(&healthy, 10);
        assert_eq!(b.state(), BreakerState::Closed);
    }
}
