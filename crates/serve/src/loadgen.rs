//! Open- and closed-loop load generation with latency accounting.
//!
//! Open loop: arrivals follow a seeded Poisson process at the offered
//! rate, submitted on schedule regardless of completions — the honest
//! way to measure an overloaded server, since waiting for responses
//! (closed loop) throttles the offered load to whatever the server
//! sustains and hides queueing collapse. Closed loop: a fixed client
//! pool, each submitting its next request as soon as the previous one
//! terminates — the right model for a bounded user population and for
//! saturation throughput.
//!
//! Both report client-observed percentiles over *successful* requests
//! and goodput: completions within their deadline per wall-clock
//! second. Typed failures (shed, deadline, retries, shutdown) are
//! counted, never averaged into latency.

use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Mutex;
use std::time::{Duration, Instant};

use fg_tensor::Tensor;

use crate::error::ServeError;
use crate::server::Server;

/// How the generator offers load.
#[derive(Debug, Clone, Copy)]
pub enum LoadMode {
    /// Poisson arrivals at `rps` requests/second (seeded, open loop).
    Open {
        /// Offered arrival rate, requests per second.
        rps: f64,
    },
    /// `clients` synchronous clients, back to back (closed loop).
    Closed {
        /// Concurrent synchronous clients.
        clients: usize,
    },
}

/// One load run's shape.
#[derive(Debug, Clone)]
pub struct LoadConfig {
    /// Arrival process.
    pub mode: LoadMode,
    /// Total requests to offer.
    pub requests: usize,
    /// Relative deadline attached to every request.
    pub deadline: Duration,
    /// Seed for the arrival process and request inputs.
    pub seed: u64,
}

/// Client-side outcome counts and latency percentiles.
#[derive(Debug, Clone, Default)]
pub struct LoadReport {
    /// Requests offered (submitted or attempted).
    pub offered: usize,
    /// Shed at admission (typed `QueueFull`).
    pub shed: usize,
    /// Completed with logits.
    pub ok: usize,
    /// Completed with logits within their deadline.
    pub ok_in_deadline: usize,
    /// Typed `DeadlineExceeded` failures.
    pub deadline_exceeded: usize,
    /// Typed `RetriesExhausted` failures.
    pub retries_exhausted: usize,
    /// Typed `Shutdown` failures.
    pub shutdown: usize,
    /// Median successful latency, milliseconds.
    pub p50_ms: f64,
    /// 99th-percentile successful latency, milliseconds.
    pub p99_ms: f64,
    /// Mean successful latency, milliseconds.
    pub mean_ms: f64,
    /// In-deadline completions per second of wall time.
    pub goodput_rps: f64,
    /// Wall time from first submission to last resolution.
    pub wall: Duration,
}

/// splitmix64 — the repo's standard seeded pseudo-noise.
fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9e37_79b9_7f4a_7c15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^ (z >> 31)
}

/// Uniform (0, 1].
fn uniform01(state: &mut u64) -> f64 {
    ((splitmix64(state) >> 11) as f64 + 1.0) / (1u64 << 53) as f64
}

fn percentile(sorted_ms: &[f64], p: f64) -> f64 {
    if sorted_ms.is_empty() {
        return f64::NAN;
    }
    let idx = ((sorted_ms.len() as f64 - 1.0) * p).round() as usize;
    sorted_ms[idx.min(sorted_ms.len() - 1)]
}

#[derive(Default)]
struct Tally {
    shed: usize,
    ok: usize,
    ok_in_deadline: usize,
    deadline_exceeded: usize,
    retries_exhausted: usize,
    shutdown: usize,
    latencies_ms: Vec<f64>,
}

impl Tally {
    fn absorb(&mut self, outcome: &crate::server::InferResult, deadline: Duration) {
        match outcome {
            Ok(reply) => {
                self.ok += 1;
                if reply.latency <= deadline {
                    self.ok_in_deadline += 1;
                }
                self.latencies_ms.push(reply.latency.as_secs_f64() * 1e3);
            }
            Err(ServeError::QueueFull { .. }) => self.shed += 1,
            Err(ServeError::DeadlineExceeded { .. }) => self.deadline_exceeded += 1,
            Err(ServeError::RetriesExhausted { .. }) => self.retries_exhausted += 1,
            Err(ServeError::Shutdown) => self.shutdown += 1,
        }
    }
}

/// Drive `cfg.requests` requests at the server; `make_input(i)` builds
/// the `i`-th request's `(1, C, H, W)` sample. Returns the client-side
/// report (pair with [`Server::metrics`] for the server-side view).
pub fn run_load<F>(server: &Server, make_input: F, cfg: &LoadConfig) -> LoadReport
where
    F: Fn(u64) -> Tensor + Sync,
{
    // Terminal replies are guaranteed; this bound only converts a
    // protocol bug into a visible test failure instead of a hang.
    let hang_guard = cfg.deadline + Duration::from_secs(30);
    let start = Instant::now();
    let tally = Mutex::new(Tally::default());
    match cfg.mode {
        LoadMode::Open { rps } => {
            assert!(rps > 0.0, "open-loop rate must be positive");
            let mut rng = cfg.seed | 1;
            let mut pending = Vec::with_capacity(cfg.requests);
            let mut next_arrival = Instant::now();
            for i in 0..cfg.requests {
                let now = Instant::now();
                if next_arrival > now {
                    std::thread::sleep(next_arrival - now);
                }
                // Exponential inter-arrival at rate `rps`.
                let gap = -uniform01(&mut rng).ln() / rps;
                next_arrival += Duration::from_secs_f64(gap);
                match server.submit(make_input(i as u64), Instant::now() + cfg.deadline) {
                    Ok(resp) => pending.push(resp),
                    Err(e) => tally.lock().unwrap().absorb(&Err(e), cfg.deadline),
                }
            }
            let mut t = tally.lock().unwrap();
            for resp in pending {
                let outcome = resp
                    .wait_timeout(hang_guard)
                    .expect("serving contract: every accepted request terminates");
                t.absorb(&outcome, cfg.deadline);
            }
        }
        LoadMode::Closed { clients } => {
            assert!(clients > 0, "closed loop needs at least one client");
            let budget = AtomicUsize::new(cfg.requests);
            std::thread::scope(|scope| {
                for _ in 0..clients {
                    scope.spawn(|| loop {
                        let left = budget.fetch_update(Ordering::AcqRel, Ordering::Acquire, |b| {
                            b.checked_sub(1)
                        });
                        if left.is_err() {
                            break;
                        }
                        let i = (cfg.requests - left.unwrap()) as u64;
                        let outcome =
                            match server.submit(make_input(i), Instant::now() + cfg.deadline) {
                                Ok(resp) => resp
                                    .wait_timeout(hang_guard)
                                    .expect("serving contract: accepted requests terminate"),
                                Err(e) => Err(e),
                            };
                        tally.lock().unwrap().absorb(&outcome, cfg.deadline);
                    });
                }
            });
        }
    }
    let wall = start.elapsed();
    let mut t = tally.into_inner().unwrap();
    t.latencies_ms.sort_by(|a, b| a.partial_cmp(b).expect("finite latencies"));
    let mean_ms = if t.latencies_ms.is_empty() {
        f64::NAN
    } else {
        t.latencies_ms.iter().sum::<f64>() / t.latencies_ms.len() as f64
    };
    LoadReport {
        offered: cfg.requests,
        shed: t.shed,
        ok: t.ok,
        ok_in_deadline: t.ok_in_deadline,
        deadline_exceeded: t.deadline_exceeded,
        retries_exhausted: t.retries_exhausted,
        shutdown: t.shutdown,
        p50_ms: percentile(&t.latencies_ms, 0.50),
        p99_ms: percentile(&t.latencies_ms, 0.99),
        mean_ms,
        goodput_rps: t.ok_in_deadline as f64 / wall.as_secs_f64().max(1e-9),
        wall,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn percentiles_and_arrival_stream_are_deterministic() {
        let ms = [1.0, 2.0, 3.0, 4.0, 100.0];
        assert_eq!(percentile(&ms, 0.50), 3.0);
        assert_eq!(percentile(&ms, 0.99), 100.0);
        assert!(percentile(&[], 0.5).is_nan());
        let mut a = 7u64;
        let mut b = 7u64;
        let xs: Vec<u64> = (0..4).map(|_| splitmix64(&mut a)).collect();
        let ys: Vec<u64> = (0..4).map(|_| splitmix64(&mut b)).collect();
        assert_eq!(xs, ys);
        let mut r = 3u64;
        for _ in 0..100 {
            let u = uniform01(&mut r);
            assert!(u > 0.0 && u <= 1.0);
        }
    }
}
