//! Deadline-aware dynamic batching.
//!
//! The batcher is one thread between the admission queue and the
//! dispatch channel. It accumulates requests into an open batch and
//! closes it when the first of three conditions hits:
//!
//! 1. **size** — the batch reached `max_batch`;
//! 2. **slack** — the oldest deadline's remaining slack fell to the
//!    dispatch-cost estimate (EMA of observed batch latencies) plus the
//!    configured safety margin: waiting longer would spend the time the
//!    dispatch itself needs;
//! 3. **linger** — the oldest request has waited `batch_linger`, the
//!    cap that keeps lone requests with generous deadlines from
//!    queueing indefinitely for company.
//!
//! Requests whose deadline has already passed are failed typed
//! (`DeadlineExceeded`) instead of being dispatched — their slot in the
//! batch would be wasted work.
//!
//! Handoff is gated by a **bounded dispatch window** (active
//! dispatchers + 1 closed batches in flight). A full window means the
//! tier is at capacity: the batcher keeps accumulating toward
//! `max_batch` instead of queueing more small batches, and sustained
//! overload backs up into the bounded admission queue where new
//! arrivals shed typed (`QueueFull`) at submit time — fast failure at
//! the edge, not deadline storms in the middle.

use std::sync::atomic::Ordering;
use std::sync::Arc;
use std::time::{Duration, Instant};

use crossbeam::channel::Sender;

use crate::error::ServeError;
use crate::queue::{AdmissionQueue, Admitted};
use crate::server::ServerShared;

/// A closed batch on its way to a dispatcher.
pub(crate) struct ClosedBatch {
    pub reqs: Vec<Admitted>,
}

/// The batcher loop. Exits once the server's stop flag is set, failing
/// everything still queued with the typed `Shutdown` error.
pub(crate) fn run_batcher(
    shared: &Arc<ServerShared>,
    queue: &AdmissionQueue,
    out: &Sender<ClosedBatch>,
) {
    let cfg = &shared.cfg;
    let mut open: Vec<Admitted> = Vec::new();
    loop {
        if shared.stop.load(Ordering::Acquire) {
            break;
        }
        if open.is_empty() {
            if let Some(a) = queue.pop(Duration::from_millis(2)) {
                open.push(a);
            }
            continue;
        }

        let now = Instant::now();
        let raw_est = shared.cost.estimate();
        let est = raw_est + cfg.batch_slack_margin;
        // Expired — and *doomed* — requests exit the batch typed, not
        // dispatched: a request whose remaining slack is already below
        // the dispatch-cost estimate cannot make its deadline, and
        // serving it anyway burns replica time that fresh requests
        // need. Under overload this is what keeps goodput at capacity
        // instead of collapsing into 100%-wasted work. (The cull
        // threshold sits `batch_slack_margin` below the slack-close
        // threshold, so a batch still closes and dispatches in the
        // window between them.)
        open.retain(|r| {
            if r.deadline.saturating_duration_since(now) <= raw_est {
                shared.metrics.deadline_exceeded.fetch_add(1, Ordering::AcqRel);
                let _ = r.reply.send(Err(ServeError::DeadlineExceeded { retries: 0 }));
                false
            } else {
                true
            }
        });
        if open.is_empty() {
            continue;
        }
        let nearest_deadline = open.iter().map(|r| r.deadline).min().expect("non-empty");
        let oldest_admitted = open.iter().map(|r| r.admitted_at).min().expect("non-empty");
        let close_by_slack = nearest_deadline.saturating_duration_since(now) <= est;
        let close_by_linger = now.duration_since(oldest_admitted) >= cfg.batch_linger;
        if open.len() >= cfg.max_batch || close_by_slack || close_by_linger {
            // Bounded dispatch window: at most one queued batch beyond
            // the active dispatchers. When the window is full, keep
            // accumulating toward `max_batch` — larger batches are the
            // efficient response to pressure — and let overload back up
            // into the bounded admission queue, where it sheds typed at
            // submit instead of silently aging here.
            let window = cfg.dispatchers.max(1) + 1;
            if shared.inflight_batches.load(Ordering::Acquire) < window {
                shared.metrics.batches.fetch_add(1, Ordering::AcqRel);
                shared.metrics.batched_requests.fetch_add(open.len() as u64, Ordering::AcqRel);
                shared.inflight_batches.fetch_add(1, Ordering::AcqRel);
                let _ = out.send(ClosedBatch { reqs: std::mem::take(&mut open) });
                continue;
            }
            if open.len() >= cfg.max_batch {
                // Nothing more to accumulate: wait for a dispatch slot.
                // The retain() above keeps pruning expired requests
                // typed while we wait.
                std::thread::sleep(Duration::from_micros(100));
                continue;
            }
        }

        // Wait for company, but never past the earliest close condition.
        let until_slack = nearest_deadline.saturating_duration_since(now).saturating_sub(est);
        let until_linger = (oldest_admitted + cfg.batch_linger).saturating_duration_since(now);
        let wait = until_slack
            .min(until_linger)
            .clamp(Duration::from_micros(50), Duration::from_millis(1));
        if let Some(a) = queue.pop(wait) {
            open.push(a);
        }
    }
    // Shutdown: everything still open or queued terminates typed.
    for r in open.into_iter().chain(queue.drain()) {
        shared.metrics.shutdown_errors.fetch_add(1, Ordering::AcqRel);
        let _ = r.reply.send(Err(ServeError::Shutdown));
    }
}
