//! End-to-end serving tests, healthy and under chaos.
//!
//! The contract under test (crate docs): **every accepted request
//! terminates** — no hangs — **with either logits equal to the serial
//! reference ([`ServableModel::infer`]) or a typed [`ServeError`]** —
//! no silent wrong answers. The model is a segmentation net (sharded
//! head), so the equality is bitwise on every grid a replica may
//! rebuild onto after losing a rank.
//!
//! The chaos run injects, with pinned seeds: message drops, payload
//! corruption (both repaired bitwise by the integrity layer below the
//! executor), and one mid-traffic rank kill on replica 0 — which must
//! drain its in-flight jobs typed, rebuild on the survivor via the
//! elastic-degradation path, and re-admit through a breaker probe while
//! replica 1 keeps serving.

use std::sync::Arc;
use std::time::{Duration, Instant};

use fg_comm::FaultPlan;
use fg_core::ServableModel;
use fg_nn::{init_params, GuardState, NetworkSpec, TrainState};
use fg_serve::{ReplicaSpec, ServeError, Server, ServerConfig};
use fg_tensor::{ProcGrid, Shape4, Tensor};

/// Small segmentation net: conv → BN → relu → 1×1 prediction conv. The
/// sharded head keeps distributed inference bitwise-equal to serial on
/// every grid, including post-failure fallbacks.
fn seg_spec() -> NetworkSpec {
    let mut spec = NetworkSpec::new();
    let i = spec.input("x", 2, 8, 8);
    let c1 = spec.conv("c1", i, 4, 3, 1, 1);
    let b1 = spec.batchnorm("b1", c1);
    let r1 = spec.relu("r1", b1);
    let pred = spec.conv("pred", r1, 2, 1, 1, 0);
    spec.loss("l", pred);
    spec
}

fn sample(seed: u64) -> Tensor {
    let mut state = seed | 1;
    Tensor::from_fn(Shape4::new(1, 2, 8, 8), |_, _, _, _| {
        state ^= state << 13;
        state ^= state >> 7;
        state ^= state << 17;
        ((state % 1000) as f32) / 250.0 - 2.0
    })
}

fn servable(seed: u64) -> Arc<ServableModel> {
    let spec = seg_spec();
    let params = init_params(&spec, seed);
    let velocity = params.iter().map(|p| p.zeros_like()).collect();
    let state = TrainState {
        step: 11,
        params,
        velocity,
        losses: vec![0.4; 11],
        guard: GuardState::default(),
        grid: None,
    };
    let calibration: Vec<Tensor> = (0..3u64)
        .map(|k| {
            let mut batch = Tensor::zeros(Shape4::new(4, 2, 8, 8));
            let row = 2 * 8 * 8;
            for n in 0..4 {
                batch.as_mut_slice()[n * row..(n + 1) * row]
                    .copy_from_slice(sample(seed ^ (k * 7 + n as u64 + 1)).as_slice());
            }
            batch
        })
        .collect();
    Arc::new(ServableModel::from_train_state(&spec, &state, &calibration, 0.1))
}

fn config() -> ServerConfig {
    ServerConfig {
        max_batch: 4,
        dispatchers: 2,
        attempt_timeout: Duration::from_millis(250),
        max_retries: 6,
        ..ServerConfig::default()
    }
}

/// Submit `n` requests, wait each out under a hang guard, and check the
/// contract: Ok ⇒ bitwise-equal to the serial reference; Err ⇒ typed.
/// Returns (ok, typed_errors).
fn drive_wave(
    server: &Server,
    model: &ServableModel,
    seed_base: u64,
    n: usize,
    deadline: Duration,
) -> (usize, usize) {
    let mut pending = Vec::new();
    for i in 0..n {
        let x = sample(seed_base + i as u64);
        match server.submit(x.clone(), Instant::now() + deadline) {
            Ok(resp) => pending.push((x, resp)),
            Err(ServeError::QueueFull { .. }) => {} // typed shed at admission
            Err(e) => panic!("submit can only shed, got {e}"),
        }
        // A trickle, so batches form with mixed sizes.
        if i % 3 == 0 {
            std::thread::sleep(Duration::from_micros(200));
        }
    }
    let (mut ok, mut typed) = (0, 0);
    for (x, resp) in pending {
        // Zero hangs: every accepted request must terminate well within
        // the guard (deadline + scheduling slack), or the test fails.
        let outcome = resp
            .wait_timeout(deadline + Duration::from_secs(30))
            .expect("accepted request hung past the guard");
        match outcome {
            Ok(reply) => {
                let reference = model.infer(&x);
                assert_eq!(
                    reply.logits,
                    reference.as_slice(),
                    "zero silent wrong answers: served logits must be \
                     bitwise-equal to the serial reference"
                );
                ok += 1;
            }
            Err(
                ServeError::DeadlineExceeded { .. }
                | ServeError::RetriesExhausted { .. }
                | ServeError::Shutdown
                | ServeError::QueueFull { .. },
            ) => typed += 1,
        }
    }
    (ok, typed)
}

#[test]
fn healthy_serving_returns_reference_logits_for_every_request() {
    let model = servable(41);
    let replicas = vec![
        ReplicaSpec::healthy(ProcGrid::spatial(2, 1)),
        ReplicaSpec::healthy(ProcGrid::spatial(2, 1)),
    ];
    let server = Server::start(Arc::clone(&model), replicas, config());
    let (ok, typed) = drive_wave(&server, &model, 9000, 40, Duration::from_secs(10));
    assert_eq!(ok, 40, "a healthy tier at trivial load completes everything ({typed} typed)");
    let m = server.shutdown();
    assert_eq!(m.completed_ok, 40);
    assert_eq!(m.replica_recycles, 0, "healthy worlds never rebuild");
    assert!(m.batches >= 10, "requests were batched, not serialized one per dispatch");
}

#[test]
fn chaos_serving_never_hangs_and_never_serves_wrong_answers() {
    let model = servable(57);
    // Replica 0: lossy links (drops + corruption, repaired bitwise by
    // the integrity layer) plus one mid-traffic kill of rank 1. The
    // kill is one-shot: the rebuilt world keeps only the rates.
    // Replica 1: lossy links throughout, no kill.
    let chaos0 = FaultPlan::new(0xC0FFEE).drop_rate(0.04).corrupt_rate(0.04).kill_rank(1, 30);
    let chaos1 = FaultPlan::new(0xBEEF).drop_rate(0.04).corrupt_rate(0.04);
    let replicas = vec![
        ReplicaSpec::healthy(ProcGrid::spatial(2, 1)).with_faults(chaos0),
        ReplicaSpec::healthy(ProcGrid::spatial(2, 1)).with_faults(chaos1),
    ];
    let server = Server::start(Arc::clone(&model), replicas, config());

    // Waves of traffic across the kill and the rebuild. Every accepted
    // request must terminate correct-or-typed regardless of which era
    // it lands in.
    let mut ok_total = 0;
    let mut typed_total = 0;
    for wave in 0..6u64 {
        let (ok, typed) =
            drive_wave(&server, &model, 50_000 + wave * 1000, 25, Duration::from_secs(10));
        ok_total += ok;
        typed_total += typed;
    }

    let m = server.shutdown();
    assert!(
        m.replica_recycles >= 1,
        "the mid-traffic kill must force at least one world rebuild (metrics: {m:?})"
    );
    assert!(
        ok_total >= 50,
        "the tier keeps serving through chaos (ok {ok_total}, typed {typed_total}, \
         metrics: {m:?})"
    );
    // Accounting closes: everything accepted got exactly one terminal
    // outcome (the per-request guard above already proved no hangs).
    assert_eq!(
        m.accepted,
        (ok_total + typed_total) as u64,
        "every accepted request reached a terminal outcome"
    );
}
