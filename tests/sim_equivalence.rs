//! DES ≡ threaded execution: the correctness anchor of the event-driven
//! virtual-time engine, quantified over the input space.
//!
//! The discrete-event scheduler (`fg_comm::simulate_traces`) claims to
//! compute *exactly* the per-rank clocks the thread-per-rank timed
//! runtime (`run_ranks_timed`) produces — not approximately, bit for
//! bit. Here that claim is pinned by property test on validation-scale
//! worlds (≤ 8 ranks, where the threaded runtime is still cheap): real
//! recorded model schedules — shipped mesh models plus a hand-built
//! net, across sample / spatial / hybrid strategies, with and without
//! modeled compute — executed under *random* link models drawn from
//! every shipped constructor (`alpha_beta`, `two_level`, `custom`).
//!
//! The same property run also pins determinism: the engine's result is
//! a function of the traces and the link model alone, independent of
//! the worker-pool size that happened to execute it.

use fg_bench::experiments::hybrid_grid;
use finegrain::comm::RankTrace;
use finegrain::comm::{
    replay_traces_timed, simulate_traces, simulate_traces_slowed, simulate_traces_with, LinkModel,
};
use finegrain::core::{DistExecutor, Strategy as ParallelStrategy};
use finegrain::models::{mesh_model, MeshSize};
use finegrain::nn::NetworkSpec;
use finegrain::perf::{ModeledCompute, Platform, SlowedCompute};
use finegrain::tensor::ProcGrid;
use proptest::prelude::*;
use std::sync::OnceLock;

/// A small segmentation net that is not one of the shipped models —
/// exercises a spec the mesh/ResNet recording paths never produce.
fn tiny_spec() -> NetworkSpec {
    let mut spec = NetworkSpec::new();
    let i = spec.input("x", 3, 16, 16);
    let c = spec.conv("conv", i, 8, 3, 1, 1);
    let r = spec.relu("relu", c);
    let p = spec.conv("pred", r, 2, 1, 1, 0);
    spec.loss("loss", p);
    spec
}

fn record(spec: NetworkSpec, grid: ProcGrid, batch: usize, modeled: bool) -> Vec<RankTrace> {
    let strategy = ParallelStrategy::uniform(&spec, grid);
    let exec = DistExecutor::new(spec.clone(), strategy.clone(), batch)
        .expect("validation configuration must compile");
    if modeled {
        let platform = Platform::lassen_like();
        let oracle = ModeledCompute::new(&platform, &spec, &strategy, batch);
        exec.record_traces(Some(&oracle))
    } else {
        exec.record_traces(None)
    }
}

/// Validation-scale schedules, recorded once: the link model does not
/// affect *what* is traced, only how long it takes, so every proptest
/// case reuses these and varies only the network.
fn schedules() -> &'static Vec<(&'static str, Vec<RankTrace>)> {
    static SCHEDULES: OnceLock<Vec<(&'static str, Vec<RankTrace>)>> = OnceLock::new();
    SCHEDULES.get_or_init(|| {
        vec![
            ("mesh-1K sample(4)", record(mesh_model(MeshSize::OneK), ProcGrid::sample(4), 4, true)),
            ("mesh-1K hybrid(2,4)", record(mesh_model(MeshSize::OneK), hybrid_grid(2, 4), 2, true)),
            ("mesh-2K hybrid(1,4)", record(mesh_model(MeshSize::TwoK), hybrid_grid(1, 4), 1, true)),
            ("mesh-2K hybrid(2,2)", record(mesh_model(MeshSize::TwoK), hybrid_grid(2, 2), 2, true)),
            ("tiny spatial(2,2) comm-only", record(tiny_spec(), ProcGrid::spatial(2, 2), 2, false)),
        ]
    })
}

/// A random link model from every shipped constructor. The `custom`
/// arm builds an arbitrary deterministic pair-dependent topology from
/// the seed — latencies the α–β forms cannot express.
fn link_model() -> impl Strategy<Value = LinkModel> {
    prop_oneof![
        (1e-7..1e-4f64, 1e-11..1e-8f64).prop_map(|(a, b)| LinkModel::alpha_beta(a, b)),
        (1usize..=4, 1e-7..1e-5f64, 1e-11..1e-9f64, 1.0..50.0f64)
            .prop_map(|(rpn, a, b, far)| LinkModel::two_level(rpn, a, b, a * far, b * far)),
        (1e-7..1e-5f64, 1e-11..1e-9f64, any::<u64>()).prop_map(|(a, b, seed)| {
            LinkModel::custom(move |src, dst, bytes| {
                let h = (src as u64)
                    .wrapping_mul(0x9E37_79B9_7F4A_7C15)
                    .wrapping_add((dst as u64).wrapping_mul(0xC2B2_AE3D_27D4_EB4F))
                    .wrapping_add(seed);
                a * (1.0 + (h % 7) as f64) + b * bytes as f64
            })
        }),
    ]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    /// For every recorded schedule under a random link model: the DES
    /// clocks equal the thread-per-rank clocks *exactly* (f64 `==`, no
    /// tolerance), and a run with a random worker-pool size reproduces
    /// the canonical run bit for bit.
    #[test]
    fn des_equals_threaded_and_is_deterministic(
        which in 0usize..5,
        link in link_model(),
        workers in 1usize..=4,
    ) {
        let (name, traces) = &schedules()[which];
        let des = simulate_traces(traces, &link)
            .unwrap_or_else(|e| panic!("{name}: {e}"));
        let threaded = replay_traces_timed(traces, &link);
        prop_assert_eq!(&des.clocks, &threaded, "schedule {}", name);

        let rerun = simulate_traces_with(traces, &link, workers)
            .unwrap_or_else(|e| panic!("{name} ({workers} workers): {e}"));
        prop_assert_eq!(
            des.deterministic_view(),
            rerun.deterministic_view(),
            "schedule {} with {} workers",
            name,
            workers
        );
    }
}

/// Determinism pinned explicitly across the whole worker-count range,
/// including pools larger than the world: every deterministic field of
/// the report — clocks, compute, waits, allreduce exposure, event and
/// message counts — is identical.
#[test]
fn worker_pool_size_never_changes_the_result() {
    let (_, traces) = &schedules()[1];
    let link = LinkModel::two_level(4, 2e-6, 1e-10, 15e-6, 2e-10);
    let canonical = simulate_traces_with(traces, &link, 1).expect("single worker");
    for workers in [2, 3, 5, 8, 64] {
        let run = simulate_traces_with(traces, &link, workers).expect("runs");
        assert_eq!(
            canonical.deterministic_view(),
            run.deterministic_view(),
            "{workers}-worker run diverged from the single-worker run"
        );
    }
}

/// Record a schedule whose modeled compute is stretched per rank by
/// gray-failure `factors` — the recording-side injection path
/// ([`SlowedCompute`]), as opposed to the post-hoc trace stretching of
/// [`simulate_traces_slowed`].
fn record_slowed(
    spec: NetworkSpec,
    grid: ProcGrid,
    batch: usize,
    factors: &[f64],
) -> Vec<RankTrace> {
    let strategy = ParallelStrategy::uniform(&spec, grid);
    let exec = DistExecutor::new(spec.clone(), strategy.clone(), batch)
        .expect("validation configuration must compile");
    let platform = Platform::lassen_like();
    let oracle = SlowedCompute::new(
        ModeledCompute::new(&platform, &spec, &strategy, batch),
        factors.to_vec(),
    );
    exec.record_traces(Some(&oracle))
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(6))]

    /// Slow-rank equivalence: a gray-failed rank can be injected on
    /// either side of the recording boundary — stretch the healthy
    /// trace's `Advance` durations post hoc (`simulate_traces_slowed`,
    /// how paper-scale straggler sweeps run) or record with a
    /// [`SlowedCompute`] oracle — and both must agree with each other
    /// and with the thread-per-rank timed replay, bit for bit, for any
    /// victim, factor, and link model. Both paths scale the same f64s,
    /// so the DES result is a property of the schedule, not of where
    /// the slowdown was applied.
    #[test]
    fn slow_rank_des_equals_threaded_replay(
        which in 0usize..2,
        victim in 0usize..8,
        factor in 1.0..32.0f64,
        link in link_model(),
    ) {
        let (spec, grid, batch) = match which {
            0 => (mesh_model(MeshSize::OneK), ProcGrid::sample(4), 4),
            _ => (mesh_model(MeshSize::OneK), hybrid_grid(2, 4), 2),
        };
        let world = grid.size();
        let mut factors = vec![1.0f64; world];
        factors[victim % world] = factor;

        // Post-hoc: healthy recording (shared across cases), stretched
        // at simulation time. schedules()[0..2] are exactly these two
        // configurations.
        let (_, healthy) = &schedules()[which];
        let slowed = simulate_traces_slowed(healthy, &link, &factors).expect("slowed DES runs");

        // Recording-side: the oracle itself is slow.
        let recorded = record_slowed(spec, grid, batch, &factors);
        let des = simulate_traces(&recorded, &link).expect("recorded DES runs");
        prop_assert_eq!(&slowed.clocks, &des.clocks, "injection side must not matter");

        // Ground truth: the threaded timed replay of the slowed world.
        let threaded = replay_traces_timed(&recorded, &link);
        prop_assert_eq!(&slowed.clocks, &threaded, "DES must equal the threaded replay");
    }
}
