//! Integration: distributed training must replicate single-device
//! training for the paper's model families, across parallelization
//! schemes — the end-to-end form of the paper's exact-replication claim
//! (§III), exercised through the public facade.

use finegrain::comm::{run_ranks, Communicator};
use finegrain::core::{BnMode, DistExecutor, Strategy};
use finegrain::data::{ImageDataset, MeshDataset};
use finegrain::models::{mesh_model_custom, resnet50_with, MeshSize, MESH_CHANNELS};
use finegrain::nn::{Network, Sgd};
use finegrain::tensor::ProcGrid;

/// Run `steps` of training both ways and compare losses.
fn check_equivalence(
    spec: finegrain::nn::NetworkSpec,
    grid: ProcGrid,
    x: finegrain::tensor::Tensor,
    labels: finegrain::kernels::Labels,
    steps: usize,
    tol: f64,
) {
    let batch = x.shape().n;
    let reference = Network::init(spec.clone(), 20240704);

    let mut serial = reference.clone();
    let mut opt = Sgd::new(0.02, 0.9, 1e-4, &serial.params);
    let mut serial_losses = Vec::new();
    for _ in 0..steps {
        let (loss, grads) = serial.loss_and_grads(&x, &labels);
        opt.step(&mut serial.params, &grads);
        serial_losses.push(loss);
    }

    let exec = DistExecutor::new(spec, Strategy::uniform(&reference.spec, grid), batch)
        .expect("valid strategy");
    let dist = run_ranks(grid.size(), |comm| {
        let mut params = reference.params.clone();
        let mut opt = Sgd::new(0.02, 0.9, 1e-4, &params);
        (0..steps)
            .map(|_| exec.train_step(comm, &mut params, &mut opt, &x, &labels))
            .collect::<Vec<_>>()
    });

    for ranks in &dist {
        assert_eq!(ranks, &dist[0], "ranks must agree exactly");
    }
    for (s, d) in serial_losses.iter().zip(&dist[0]) {
        assert!(
            (s - d).abs() <= tol * s.abs().max(1.0),
            "grid {grid}: serial {serial_losses:?} vs distributed {:?}",
            dist[0]
        );
    }
}

#[test]
fn mesh_model_equivalence_across_schemes() {
    // The real mesh architecture (narrowed channels) at reduced
    // resolution with real synthetic data, three schemes including 8
    // ranks of hybrid parallelism. Input 128² → 2×2 prediction map, so
    // the per-pixel loss itself is spatially partitioned.
    let ds = MeshDataset::new(128, 2, MESH_CHANNELS, 99);
    let (x, labels) = ds.batch(0, 4);
    for grid in [ProcGrid::sample(4), ProcGrid::spatial(2, 2), ProcGrid::hybrid(2, 2, 2)] {
        check_equivalence(
            mesh_model_custom(MeshSize::OneK, 128, 8),
            grid,
            x.clone(),
            labels.clone(),
            2,
            1e-3,
        );
    }
}

#[test]
fn resnet_equivalence_with_hybrid_parallelism() {
    // Scaled ResNet-50 (full 53-conv graph with residual joins, maxpool,
    // GAP, FC) under hybrid sample/spatial parallelism.
    // 64² input keeps res5's spatial maps at 2×2, so a 2-way height
    // split stays populated through the whole trunk.
    let ds = ImageDataset::new(64, 3, 4, 7);
    let (x, labels) = ds.batch(0, 2);
    check_equivalence(resnet50_with(64, 4), ProcGrid::hybrid(2, 2, 1), x, labels, 1, 3e-3);
}

#[test]
fn local_bn_mode_trains_but_differs_from_serial() {
    // The §III-B "local batch norm" variant: a legitimate training
    // configuration whose statistics differ from single-device ones.
    let ds = MeshDataset::new(128, 2, MESH_CHANNELS, 5);
    let (x, labels) = ds.batch(0, 4);
    let spec = mesh_model_custom(MeshSize::OneK, 128, 8);
    let net = Network::init(spec.clone(), 1);
    let (serial_loss, _) = net.loss_and_grads(&x, &labels);

    let strategy = Strategy::uniform(&spec, ProcGrid::sample(4)).with_bn_mode(BnMode::Local);
    let exec = DistExecutor::new(spec, strategy, 4).unwrap();
    let losses = run_ranks(4, |comm| exec.loss_and_grads(comm, &net.params, &x, &labels).0);
    for l in &losses {
        assert!(l.is_finite(), "local BN must still produce a finite loss");
        assert_eq!(*l, losses[0], "ranks agree under local BN too");
    }
    // Different statistics ⇒ (generally) different loss from serial.
    assert!(
        (losses[0] - serial_loss).abs() > 1e-9,
        "local BN unexpectedly identical to aggregated"
    );
}

#[test]
fn mixed_strategy_shuffles_activations_between_layer_groups() {
    // Spatial early layers + sample-parallel late layers, connected by
    // §III-C redistributions, end to end on the mesh model.
    let ds = MeshDataset::new(128, 2, MESH_CHANNELS, 17);
    let (x, labels) = ds.batch(0, 4);
    let spec = mesh_model_custom(MeshSize::OneK, 128, 8);
    let net = Network::init(spec.clone(), 3);
    let (serial_loss, _) = net.loss_and_grads(&x, &labels);

    let mut strategy = Strategy::uniform(&spec, ProcGrid::sample(4));
    // First two blocks spatial, rest sample-parallel.
    for (id, l) in spec.layers().iter().enumerate() {
        let name = &l.name;
        if name == "data" || name.contains("1_") || name.contains("2_") && !name.contains("branch")
        {
            strategy.grids[id] = ProcGrid::spatial(2, 2);
        }
    }
    let exec = DistExecutor::new(spec, strategy, 4).expect("mixed strategy valid");
    let losses = run_ranks(4, |comm| exec.loss_and_grads(comm, &net.params, &x, &labels).0);
    for l in &losses {
        assert!(
            (l - serial_loss).abs() < 1e-6 * serial_loss.abs().max(1.0),
            "mixed strategy loss {l} vs serial {serial_loss}"
        );
    }
}

#[test]
fn sharded_data_loading_matches_replicated_loading() {
    // Distributed data loading: each rank generates only its input
    // shard; results must be identical to the replicated-input path.
    let ds = MeshDataset::new(128, 2, MESH_CHANNELS, 41);
    let spec = mesh_model_custom(MeshSize::OneK, 128, 8);
    let net = Network::init(spec.clone(), 9);
    let grid = ProcGrid::spatial(2, 2);
    let strategy = Strategy::uniform(&spec, grid);
    let exec = DistExecutor::new(spec, strategy, 2).unwrap();
    let (x_full, labels) = ds.batch(0, 2);
    let input_dist = finegrain::tensor::TensorDist::new(x_full.shape(), grid);

    let replicated =
        run_ranks(4, |comm| exec.loss_and_grads(comm, &net.params, &x_full, &labels).0);
    let sharded = run_ranks(4, |comm| {
        let shard = ds.shard_batch(input_dist.clone(), comm.rank(), 0);
        exec.loss_and_grads_sharded(comm, &net.params, shard, &labels).0
    });
    assert_eq!(replicated, sharded, "sharded loading must be bit-identical");
}

#[test]
fn distributed_inference_matches_serial_inference() {
    use finegrain::nn::RunningStats;
    use finegrain::tensor::gather::gather_to_root;

    let spec = mesh_model_custom(MeshSize::OneK, 128, 8);
    let net = Network::init(spec.clone(), 55);
    let ds = MeshDataset::new(128, 2, MESH_CHANNELS, 61);
    let (x, labels) = ds.batch(0, 2);

    // Accumulate running BN statistics from a couple of training passes.
    let mut running = RunningStats::new(&spec, 0.1);
    for _ in 0..2 {
        let pass = net.forward(&x, Some(&labels));
        running.update(&pass);
    }
    let serial_pred = running.infer(&net, &x);

    let grid = ProcGrid::spatial(2, 2);
    let exec = DistExecutor::new(spec, Strategy::uniform(&net.spec, grid), 2).unwrap();
    let outs = run_ranks(4, |comm| {
        let pass = exec.forward_inference(comm, &net.params, &x, running.stats());
        match pass.acts.last().unwrap() {
            finegrain::core::Act::Shard(dt) => gather_to_root(comm, dt, 0),
            finegrain::core::Act::PerSample(_) => unreachable!("mesh loss is sharded"),
        }
    });
    assert_eq!(
        outs[0].as_ref().unwrap(),
        &serial_pred,
        "distributed inference must be bitwise-identical to serial"
    );
}

#[test]
fn non_power_of_two_world_matches_serial() {
    // The collectives carry non-power-of-two paths (fold-in pre/post
    // steps); exercise them end-to-end with 3 ranks of spatial
    // parallelism on the real architecture.
    // 192² input keeps the deepest feature maps at 3×3, so a 3-way
    // height split stays populated end to end.
    let ds = MeshDataset::new(192, 3, MESH_CHANNELS, 71);
    let (x, labels) = ds.batch(0, 2);
    check_equivalence(
        mesh_model_custom(MeshSize::OneK, 192, 8),
        ProcGrid::spatial(3, 1),
        x,
        labels,
        2,
        1e-3,
    );
}

#[test]
fn six_rank_hybrid_with_uneven_blocks() {
    // 3 sample groups × 2-way spatial on a batch of 3: one sample per
    // group, 2 ranks per sample, odd block sizes everywhere.
    let ds = MeshDataset::new(128, 2, MESH_CHANNELS, 73);
    let (x, labels) = ds.batch(0, 3);
    check_equivalence(
        mesh_model_custom(MeshSize::OneK, 128, 8),
        ProcGrid::hybrid(3, 2, 1),
        x,
        labels,
        1,
        1e-3,
    );
}
