//! Property test for checkpointed recovery: for random kill points,
//! checkpoint intervals, and victims, a training run that loses a rank
//! and recovers from its last snapshot must produce a loss trajectory
//! **bitwise identical** to an uninterrupted run. This is the executable
//! form of the recovery contract: determinism of the substrate plus
//! bitwise checkpoint round-trips imply replay is exact — any divergence
//! means either nondeterminism in a collective or a lossy checkpoint.

use finegrain::comm::{run_ranks, FaultPlan, IntegrityConfig};
use finegrain::core::{
    resilient_train, DistExecutor, GuardConfig, ResilientConfig, SgdHyper, Strategy,
};
use finegrain::kernels::Labels;
use finegrain::nn::{Network, NetworkSpec, Sgd};
use finegrain::tensor::{ProcGrid, Shape4, Tensor};
use proptest::prelude::*;

const STEPS: u64 = 5;
const WORLD: usize = 2;
const HYPER: SgdHyper = SgdHyper { lr: 0.05, momentum: 0.9, weight_decay: 1e-4 };

fn tiny_seg_net() -> NetworkSpec {
    let mut spec = NetworkSpec::new();
    let i = spec.input("x", 2, 8, 8);
    let c1 = spec.conv("c1", i, 3, 3, 1, 1);
    let r1 = spec.relu("r1", c1);
    let c2 = spec.conv("c2", r1, 2, 1, 1, 0);
    spec.loss("l", c2);
    spec
}

struct Fixture {
    exec: DistExecutor,
    params: Vec<finegrain::nn::LayerParams>,
    x: Tensor,
    labels: Labels,
}

fn fixture() -> Fixture {
    let spec = tiny_seg_net();
    let net = Network::init(spec.clone(), 2024);
    let strategy = Strategy::uniform(&spec, ProcGrid::spatial(1, WORLD));
    let exec = DistExecutor::new(spec, strategy, 2).expect("valid strategy");
    let x = Tensor::from_fn(Shape4::new(2, 2, 8, 8), |n, c, h, w| {
        ((n * 5 + c * 3 + h + 2 * w) % 13) as f32 * 0.11 - 0.7
    });
    let labels = Labels::per_pixel(2, 8, 8, (0..2 * 8 * 8).map(|i| (i % 2) as u32).collect());
    Fixture { exec, params: net.params, x, labels }
}

/// Reference trajectory: the same training run with no faults and no
/// checkpointing, as bits.
fn baseline_bits(f: &Fixture) -> Vec<u64> {
    let losses = run_ranks(WORLD, |comm| {
        let mut p = f.params.clone();
        let mut opt = Sgd::new(HYPER.lr, HYPER.momentum, HYPER.weight_decay, &p);
        (0..STEPS)
            .map(|_| f.exec.train_step(comm, &mut p, &mut opt, &f.x, &f.labels))
            .collect::<Vec<_>>()
    });
    losses[0].iter().map(|l| l.to_bits()).collect()
}

/// Comm ops one rank spends on the full run (the valid kill range).
fn ops_horizon(f: &Fixture) -> u64 {
    let probe = finegrain::comm::run_ranks_with_faults(WORLD, FaultPlan::default(), |comm| {
        let mut p = f.params.clone();
        let mut opt = Sgd::new(HYPER.lr, HYPER.momentum, HYPER.weight_decay, &p);
        for _ in 0..STEPS {
            f.exec.train_step(comm, &mut p, &mut opt, &f.x, &f.labels);
        }
        comm.ops()
    });
    *probe[0].as_ref().expect("probe run is fault-free")
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(6))]

    /// Recovered losses are bitwise identical to an uninterrupted run,
    /// for any victim, kill point, and checkpoint interval.
    #[test]
    fn recovery_is_bitwise_exact(
        victim in 0usize..WORLD,
        kill_frac in 1u64..100,
        ckpt_every in 1u64..4,
    ) {
        let f = fixture();
        let baseline = baseline_bits(&f);
        let horizon = ops_horizon(&f);
        // Anywhere in (0, horizon): before the first step, mid-step,
        // between checkpoints, or close enough to the end that the
        // uninterrupted ranks finish before the victim would die.
        let kill_op = (horizon * kill_frac / 100).max(1);
        let report = resilient_train(
            &f.exec,
            &f.params,
            HYPER,
            &f.x,
            &f.labels,
            STEPS,
            &ResilientConfig { ckpt_every, max_restarts: 2, ..Default::default() },
            FaultPlan::new(kill_frac ^ (victim as u64) << 32).kill_rank(victim, kill_op),
        );
        let got: Vec<u64> = report.losses.iter().map(|l| l.to_bits()).collect();
        prop_assert_eq!(got, baseline);
        // At most one rebuild: the plan only fires on the first attempt.
        prop_assert!(report.restarts <= 1);
    }

    /// Chaos under *rate-based* link faults: for pinned seeds and
    /// nonzero drop/corruption rates, a run protected by the integrity
    /// layer (level 1) and the step guard (level 2) repairs everything
    /// in-band — no restart, no rollback — and its loss trajectory is
    /// bitwise identical to a fault-free run of the same stack. The
    /// fault-free reference uses the same guard + integrity wiring so
    /// only the injected faults differ between the two runs.
    #[test]
    fn chaotic_links_with_integrity_and_guard_are_bitwise_exact(
        seed in 1u64..=u32::MAX as u64,
        drop_pct in 0u32..=15,
        corrupt_pct in 1u32..=15,
    ) {
        let f = fixture();
        let cfg = ResilientConfig {
            ckpt_every: 2,
            max_restarts: 0,
            guard: Some(GuardConfig::default()),
            integrity: Some(IntegrityConfig::default()),
            ..Default::default()
        };
        let clean = resilient_train(
            &f.exec, &f.params, HYPER, &f.x, &f.labels, STEPS, &cfg, FaultPlan::default(),
        );
        let plan = FaultPlan::new(seed)
            .drop_rate(drop_pct as f64 / 100.0)
            .corrupt_rate(corrupt_pct as f64 / 100.0);
        let report = resilient_train(
            &f.exec, &f.params, HYPER, &f.x, &f.labels, STEPS, &cfg, plan,
        );
        prop_assert_eq!(report.restarts, 0, "failures: {:?}", report.failures);
        prop_assert_eq!(report.rollbacks, 0, "in-band repair must not reach the guard");
        let clean_bits: Vec<u64> = clean.losses.iter().map(|l| l.to_bits()).collect();
        let got: Vec<u64> = report.losses.iter().map(|l| l.to_bits()).collect();
        prop_assert_eq!(got, clean_bits);
    }
}
