//! Property test for checkpointed recovery: for random kill points,
//! checkpoint intervals, and victims, a training run that loses a rank
//! and recovers from its last snapshot must produce a loss trajectory
//! **bitwise identical** to an uninterrupted run. This is the executable
//! form of the recovery contract: determinism of the substrate plus
//! bitwise checkpoint round-trips imply replay is exact — any divergence
//! means either nondeterminism in a collective or a lossy checkpoint.

use finegrain::comm::{run_ranks, FaultPlan, IntegrityConfig};
use finegrain::core::{
    resilient_train, DegradeConfig, DistExecutor, GuardConfig, ResilientConfig, SgdHyper,
    StragglerConfig, Strategy,
};
use finegrain::kernels::Labels;
use finegrain::nn::{Network, NetworkSpec, Sgd};
use finegrain::tensor::{ProcGrid, Shape4, Tensor};
use proptest::prelude::*;

const STEPS: u64 = 5;
const WORLD: usize = 2;
const HYPER: SgdHyper = SgdHyper { lr: 0.05, momentum: 0.9, weight_decay: 1e-4 };

fn tiny_seg_net() -> NetworkSpec {
    let mut spec = NetworkSpec::new();
    let i = spec.input("x", 2, 8, 8);
    let c1 = spec.conv("c1", i, 3, 3, 1, 1);
    let r1 = spec.relu("r1", c1);
    let c2 = spec.conv("c2", r1, 2, 1, 1, 0);
    spec.loss("l", c2);
    spec
}

struct Fixture {
    exec: DistExecutor,
    params: Vec<finegrain::nn::LayerParams>,
    x: Tensor,
    labels: Labels,
}

fn fixture() -> Fixture {
    let spec = tiny_seg_net();
    let net = Network::init(spec.clone(), 2024);
    let strategy = Strategy::uniform(&spec, ProcGrid::spatial(1, WORLD));
    let exec = DistExecutor::new(spec, strategy, 2).expect("valid strategy");
    let x = Tensor::from_fn(Shape4::new(2, 2, 8, 8), |n, c, h, w| {
        ((n * 5 + c * 3 + h + 2 * w) % 13) as f32 * 0.11 - 0.7
    });
    let labels = Labels::per_pixel(2, 8, 8, (0..2 * 8 * 8).map(|i| (i % 2) as u32).collect());
    Fixture { exec, params: net.params, x, labels }
}

/// Reference trajectory: the same training run with no faults and no
/// checkpointing, as bits.
fn baseline_bits(f: &Fixture) -> Vec<u64> {
    let losses = run_ranks(WORLD, |comm| {
        let mut p = f.params.clone();
        let mut opt = Sgd::new(HYPER.lr, HYPER.momentum, HYPER.weight_decay, &p);
        (0..STEPS)
            .map(|_| f.exec.train_step(comm, &mut p, &mut opt, &f.x, &f.labels))
            .collect::<Vec<_>>()
    });
    losses[0].iter().map(|l| l.to_bits()).collect()
}

/// Comm ops one rank spends on the full run (the valid kill range).
fn ops_horizon(f: &Fixture) -> u64 {
    let probe = finegrain::comm::run_ranks_with_faults(WORLD, FaultPlan::default(), |comm| {
        let mut p = f.params.clone();
        let mut opt = Sgd::new(HYPER.lr, HYPER.momentum, HYPER.weight_decay, &p);
        for _ in 0..STEPS {
            f.exec.train_step(comm, &mut p, &mut opt, &f.x, &f.labels);
        }
        comm.ops()
    });
    *probe[0].as_ref().expect("probe run is fault-free")
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(6))]

    /// Recovered losses are bitwise identical to an uninterrupted run,
    /// for any victim, kill point, and checkpoint interval.
    #[test]
    fn recovery_is_bitwise_exact(
        victim in 0usize..WORLD,
        kill_frac in 1u64..100,
        ckpt_every in 1u64..4,
    ) {
        let f = fixture();
        let baseline = baseline_bits(&f);
        let horizon = ops_horizon(&f);
        // Anywhere in (0, horizon): before the first step, mid-step,
        // between checkpoints, or close enough to the end that the
        // uninterrupted ranks finish before the victim would die.
        let kill_op = (horizon * kill_frac / 100).max(1);
        let report = resilient_train(
            &f.exec,
            &f.params,
            HYPER,
            &f.x,
            &f.labels,
            STEPS,
            &ResilientConfig { ckpt_every, max_restarts: 2, ..Default::default() },
            FaultPlan::new(kill_frac ^ (victim as u64) << 32).kill_rank(victim, kill_op),
        );
        let got: Vec<u64> = report.losses.iter().map(|l| l.to_bits()).collect();
        prop_assert_eq!(got, baseline);
        // At most one rebuild: the plan only fires on the first attempt.
        prop_assert!(report.restarts <= 1);
    }

    /// Chaos under *rate-based* link faults: for pinned seeds and
    /// nonzero drop/corruption rates, a run protected by the integrity
    /// layer (level 1) and the step guard (level 2) repairs everything
    /// in-band — no restart, no rollback — and its loss trajectory is
    /// bitwise identical to a fault-free run of the same stack. The
    /// fault-free reference uses the same guard + integrity wiring so
    /// only the injected faults differ between the two runs.
    #[test]
    fn chaotic_links_with_integrity_and_guard_are_bitwise_exact(
        seed in 1u64..=u32::MAX as u64,
        drop_pct in 0u32..=15,
        corrupt_pct in 1u32..=15,
    ) {
        let f = fixture();
        let cfg = ResilientConfig {
            ckpt_every: 2,
            max_restarts: 0,
            guard: Some(GuardConfig::default()),
            integrity: Some(IntegrityConfig::default()),
            ..Default::default()
        };
        let clean = resilient_train(
            &f.exec, &f.params, HYPER, &f.x, &f.labels, STEPS, &cfg, FaultPlan::default(),
        );
        let plan = FaultPlan::new(seed)
            .drop_rate(drop_pct as f64 / 100.0)
            .corrupt_rate(corrupt_pct as f64 / 100.0);
        let report = resilient_train(
            &f.exec, &f.params, HYPER, &f.x, &f.labels, STEPS, &cfg, plan,
        );
        prop_assert_eq!(report.restarts, 0, "failures: {:?}", report.failures);
        prop_assert_eq!(report.rollbacks, 0, "in-band repair must not reach the guard");
        let clean_bits: Vec<u64> = clean.losses.iter().map(|l| l.to_bits()).collect();
        let got: Vec<u64> = report.losses.iter().map(|l| l.to_bits()).collect();
        prop_assert_eq!(got, clean_bits);
    }
}

/// End-to-end pinned-seed chaos test for the degradation rung: a
/// 4-rank run whose rank 2 is **permanently** dead (it is re-killed on
/// every rebuild attempt) must shrink to 3 ranks and complete — and its
/// post-shrink trajectory must be bitwise identical, step for step, to
/// a fresh 3-rank run built from the degradation's own re-planned
/// strategy and restored from the same (re-sharded) snapshot. Run under
/// `FG_COMM_WATCHDOG=1 FG_COMM_INTEGRITY=1` in CI so the shrink
/// interoperates with the watchdog and integrity layers.
#[test]
fn permanently_dead_rank_degrades_4_to_3_bitwise() {
    const STEPS4: u64 = 6;
    let spec = tiny_seg_net();
    let net = Network::init(spec.clone(), 77);
    let grid = ProcGrid::spatial(2, 2);
    let strategy = Strategy::uniform(&spec, grid);
    let exec = DistExecutor::new(spec.clone(), strategy, 2).expect("valid strategy");
    let x = Tensor::from_fn(Shape4::new(2, 2, 8, 8), |n, c, h, w| {
        ((n * 5 + c * 3 + h + 2 * w) % 13) as f32 * 0.11 - 0.7
    });
    let labels = Labels::per_pixel(2, 8, 8, (0..2 * 8 * 8).map(|i| (i % 2) as u32).collect());

    // Probe the comm-op horizon to pin the kill mid-run, past the first
    // snapshot (step 2) and before the end.
    let probe = finegrain::comm::run_ranks_with_faults(4, FaultPlan::default(), |comm| {
        let mut p = net.params.clone();
        let mut opt = Sgd::new(HYPER.lr, HYPER.momentum, HYPER.weight_decay, &p);
        for _ in 0..STEPS4 {
            exec.train_step(comm, &mut p, &mut opt, &x, &labels);
        }
        comm.ops()
    });
    let kill_op = probe[2].as_ref().expect("probe is fault-free") / 2;

    let report = resilient_train(
        &exec,
        &net.params,
        HYPER,
        &x,
        &labels,
        STEPS4,
        &ResilientConfig {
            ckpt_every: 2,
            max_restarts: 1,
            degrade: Some(DegradeConfig::default()),
            ..Default::default()
        },
        FaultPlan::new(41).kill_rank_permanently(2, kill_op),
    );
    assert_eq!(report.degradations.len(), 1, "failures: {:?}", report.failures);
    let d = report.degradations[0].clone();
    assert_eq!((d.from_world, d.to_world), (4, 3), "degradation: {d:?}");
    assert_eq!(d.dead_ranks, vec![2]);
    assert_eq!(report.final_world, 3);
    assert_eq!(report.losses.len() as u64, STEPS4);
    assert!(d.at_step >= 2, "the shrink must resume from a real snapshot: {d:?}");
    assert!(d.reshard_total_bytes > 0);

    // Pre-shrink prefix: bitwise the 4-rank trajectory.
    let baseline4 = run_ranks(4, |comm| {
        let mut p = net.params.clone();
        let mut opt = Sgd::new(HYPER.lr, HYPER.momentum, HYPER.weight_decay, &p);
        (0..STEPS4)
            .map(|_| exec.train_step(comm, &mut p, &mut opt, &x, &labels))
            .collect::<Vec<_>>()
    });
    let at = d.at_step as usize;
    let bits = |v: &[f64]| v.iter().map(|l| l.to_bits()).collect::<Vec<_>>();
    assert_eq!(bits(&report.losses[..at]), bits(&baseline4[0][..at]));

    // Post-shrink suffix: recompute the snapshot state by replaying the
    // 4-rank world cleanly to the shrink point, re-shard it onto the
    // degradation's grid, and run a *fresh* 3-rank world from there.
    let replay = run_ranks(4, |comm| {
        let mut p = net.params.clone();
        let mut opt = Sgd::new(HYPER.lr, HYPER.momentum, HYPER.weight_decay, &p);
        for _ in 0..d.at_step {
            exec.train_step(comm, &mut p, &mut opt, &x, &labels);
        }
        (p, opt.velocity().to_vec())
    });
    let (snap_params, snap_vel) = replay.into_iter().next().unwrap();
    let state = finegrain::nn::TrainState {
        step: d.at_step,
        params: snap_params,
        velocity: snap_vel,
        losses: report.losses[..at].to_vec(),
        guard: finegrain::nn::GuardState::default(),
        grid: Some(grid),
    };
    let (restored, _) = finegrain::nn::reshard_train_state(&state, d.strategy.grids[0]);
    let small =
        DistExecutor::new(spec, d.strategy.clone(), 2).expect("replanned strategy compiles");
    let suffix = run_ranks(3, |comm| {
        let mut p = restored.params.clone();
        let mut opt = Sgd::with_state(
            HYPER.lr,
            HYPER.momentum,
            HYPER.weight_decay,
            restored.velocity.clone(),
        );
        (d.at_step..STEPS4)
            .map(|_| small.train_step(comm, &mut p, &mut opt, &x, &labels))
            .collect::<Vec<_>>()
    });
    assert_eq!(
        bits(&report.losses[at..]),
        bits(&suffix[0]),
        "post-shrink trajectory must match a fresh 3-rank resume step for step"
    );
}

/// The 4-rank gray-failure fixture: `tiny_seg_net` split along H so a
/// weighted re-decomposition has rows to shift, plus pinned inputs.
fn straggler_fixture() -> (NetworkSpec, Network, DistExecutor, Tensor, Labels) {
    let spec = tiny_seg_net();
    let net = Network::init(spec.clone(), 55);
    let strategy = Strategy::uniform(&spec, ProcGrid::spatial(4, 1));
    let exec = DistExecutor::new(spec.clone(), strategy, 2).expect("valid strategy");
    let x = Tensor::from_fn(Shape4::new(2, 2, 8, 8), |n, c, h, w| {
        ((n * 5 + c * 3 + h + 2 * w) % 13) as f32 * 0.11 - 0.7
    });
    let labels = Labels::per_pixel(2, 8, 8, (0..2 * 8 * 8).map(|i| (i % 2) as u32).collect());
    (spec, net, exec, x, labels)
}

/// End-to-end pinned-seed gray-failure test for the rebalance rung: a
/// 4-rank run whose rank 2 is persistently 6× slow must be *detected*
/// (all-rank agreement, one flag event) and *rebalanced* (weighted
/// re-decomposition, no restart, no lost steps) — and the trajectory
/// must be the stitched-bitwise contract: the pre-flag prefix equals
/// the uniform baseline, the post-rebalance suffix equals a fresh
/// weighted-layout run resumed from the same snapshot. Run under
/// `FG_COMM_WATCHDOG=1 FG_COMM_INTEGRITY=1` in CI so detection
/// interoperates with the watchdog and integrity layers.
#[test]
fn persistent_straggler_is_detected_and_rebalanced_bitwise() {
    const STEPS6: u64 = 6;
    let (spec, net, exec, x, labels) = straggler_fixture();
    // Default detection thresholds (warmup 2, patience 2, threshold 2x)
    // with eviction pushed out of reach: the injected rank must
    // rebalance, not evict. On this tiny fixture the healthy per-step
    // compute is microseconds, so the live-measured busy-time ratio is
    // far above the injected 6x (the per-op straggler sleeps dominate);
    // only an unreachable evict_ratio keeps the ladder on the rebalance
    // rung. The flag lands at observation warmup+patience = step 4, so
    // the 2 post-rebalance steps cannot re-flag (< warmup+patience) and
    // the run completes under a single mitigation.
    let cfg = ResilientConfig {
        ckpt_every: 5,
        max_restarts: 0,
        straggler: Some(StragglerConfig { evict_ratio: 1e9, ..Default::default() }),
        ..Default::default()
    };
    let report = resilient_train(
        &exec,
        &net.params,
        HYPER,
        &x,
        &labels,
        STEPS6,
        &cfg,
        FaultPlan::new(91).slow_rank(2, 6.0),
    );
    assert_eq!(report.rebalances.len(), 1, "failures: {:?}", report.failures);
    let r = report.rebalances[0].clone();
    assert_eq!(r.slow_rank, 2, "agreement must name the injected rank");
    assert!(r.ratio >= 2.0, "flagged ratio must clear the threshold: {}", r.ratio);
    assert!(report.straggler_flags >= 1);
    assert_eq!(report.evictions, 0);
    assert_eq!(report.restarts, 0, "a rebalance is not a restart");
    assert_eq!(report.replayed_steps, 0, "the fresh snapshot loses no steps");
    assert_eq!(report.final_world, 4, "nobody was evicted");
    assert_eq!(report.losses.len() as u64, STEPS6);
    assert!(r.strategy.rank_weights.is_some(), "the new layout is weighted");
    let weights = r.strategy.rank_weights.as_ref().unwrap();
    assert!(weights[2] < weights[0], "the slow rank's share must shrink: {weights:?}");

    // Pre-flag prefix: detection never touches the math, so the prefix
    // is bitwise the uniform no-fault trajectory.
    let baseline = run_ranks(4, |comm| {
        let mut p = net.params.clone();
        let mut opt = Sgd::new(HYPER.lr, HYPER.momentum, HYPER.weight_decay, &p);
        (0..STEPS6)
            .map(|_| exec.train_step(comm, &mut p, &mut opt, &x, &labels))
            .collect::<Vec<_>>()
    });
    let at = r.at_step as usize;
    assert!(at >= 4, "default warmup+patience lands the flag at step 4: {at}");
    let bits = |v: &[f64]| v.iter().map(|l| l.to_bits()).collect::<Vec<_>>();
    assert_eq!(bits(&report.losses[..at]), bits(&baseline[0][..at]));

    // Post-rebalance suffix: the stitched contract. Replay the uniform
    // world cleanly to the flag step, then run a fresh executor under
    // the rebalance's own weighted strategy from that state — the
    // suffix must match bitwise. (The weighted layout reduces boundary
    // sums in a different order, so the suffix legitimately differs
    // from the uniform baseline; what must hold is equality with a
    // clean weighted run from the same snapshot.)
    let replay = run_ranks(4, |comm| {
        let mut p = net.params.clone();
        let mut opt = Sgd::new(HYPER.lr, HYPER.momentum, HYPER.weight_decay, &p);
        for _ in 0..r.at_step {
            exec.train_step(comm, &mut p, &mut opt, &x, &labels);
        }
        (p, opt.velocity().to_vec())
    });
    let (snap_params, snap_vel) = replay.into_iter().next().unwrap();
    let weighted =
        DistExecutor::new(spec, r.strategy.clone(), 2).expect("weighted strategy compiles");
    let suffix = run_ranks(4, |comm| {
        let mut p = snap_params.clone();
        let mut opt =
            Sgd::with_state(HYPER.lr, HYPER.momentum, HYPER.weight_decay, snap_vel.clone());
        (r.at_step..STEPS6)
            .map(|_| weighted.train_step(comm, &mut p, &mut opt, &x, &labels))
            .collect::<Vec<_>>()
    });
    assert_eq!(
        bits(&report.losses[at..]),
        bits(&suffix[0]),
        "post-rebalance trajectory must match a fresh weighted resume step for step"
    );
}

/// Escalation: a rank so slow that no weighted layout can absorb it
/// (ratio at or beyond `evict_ratio`) is softly evicted on the first
/// flag — the elastic-degradation rung shrinks the world around it and
/// the run completes on the survivors.
#[test]
fn irredeemably_slow_rank_is_softly_evicted_end_to_end() {
    const STEPS6: u64 = 6;
    let (_, net, exec, x, labels) = straggler_fixture();
    let cfg = ResilientConfig {
        ckpt_every: 5,
        max_restarts: 0,
        straggler: Some(StragglerConfig { evict_ratio: 3.0, ..Default::default() }),
        degrade: Some(DegradeConfig::default()),
        ..Default::default()
    };
    let report = resilient_train(
        &exec,
        &net.params,
        HYPER,
        &x,
        &labels,
        STEPS6,
        &cfg,
        FaultPlan::new(92).slow_rank(1, 24.0),
    );
    assert_eq!(report.evictions, 1, "failures: {:?}", report.failures);
    assert!(report.rebalances.is_empty(), "past evict_ratio there is no rebalance attempt");
    assert_eq!(report.restarts, 0);
    assert_eq!(report.degradations.len(), 1);
    let d = &report.degradations[0];
    assert_eq!((d.from_world, d.to_world), (4, 3));
    assert_eq!(d.dead_ranks, vec![1], "the eviction must name the straggler");
    assert_eq!(report.final_world, 3);
    assert_eq!(report.losses.len() as u64, STEPS6, "no steps are lost");
}

/// False-positive bound, end to end: on a healthy world the detector
/// must stay silent for the whole run — no flags, no mitigation, and a
/// loss trajectory bitwise identical to a run without detection. The
/// flag threshold is set well above the default here because this
/// fixture's steps are *microseconds* of busy time, where an OS
/// scheduling blip can legitimately exceed 2x the world median — the
/// tight-threshold false-positive bound is pinned at the unit level
/// (crates/core/src/straggler.rs), where observations are injected
/// rather than measured. What this test pins is that the measurement
/// and agreement machinery itself never perturbs the math.
#[test]
fn healthy_world_with_detection_enabled_is_bitwise_inert() {
    const STEPS6: u64 = 6;
    let (_, net, exec, x, labels) = straggler_fixture();
    let cfg = ResilientConfig {
        ckpt_every: 3,
        max_restarts: 0,
        straggler: Some(StragglerConfig { threshold: 50.0, ..Default::default() }),
        ..Default::default()
    };
    let report =
        resilient_train(&exec, &net.params, HYPER, &x, &labels, STEPS6, &cfg, FaultPlan::default());
    assert_eq!(report.straggler_flags, 0, "healthy world must not flag");
    assert!(report.rebalances.is_empty());
    assert_eq!(report.evictions, 0);
    assert_eq!(report.restarts, 0);
    assert_eq!(report.rank_time_ema.len(), 4, "telemetry still reports per-rank EMAs");
    let baseline = run_ranks(4, |comm| {
        let mut p = net.params.clone();
        let mut opt = Sgd::new(HYPER.lr, HYPER.momentum, HYPER.weight_decay, &p);
        (0..STEPS6)
            .map(|_| exec.train_step(comm, &mut p, &mut opt, &x, &labels))
            .collect::<Vec<_>>()
    });
    let bits = |v: &[f64]| v.iter().map(|l| l.to_bits()).collect::<Vec<_>>();
    assert_eq!(bits(&report.losses), bits(&baseline[0]));
}

// ---------------------------------------------------------------------------
// Durable checkpoint store: the same ladder, but snapshots live on disk
// in the replicated, versioned `CkptStore` — and the storage itself is
// under chaos.
// ---------------------------------------------------------------------------

use finegrain::nn::{CkptStore, Redundancy, StorageFaultPlan, StoreConfig};

/// A fresh scratch directory for one test's store, under the target
/// temp dir (gitignored).
fn scratch_store(tag: &str) -> std::path::PathBuf {
    let dir = std::env::temp_dir().join(format!("fg-resilience-{tag}-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

/// A run snapshotting through the durable store is bitwise identical to
/// the in-memory run, and the report carries the store's telemetry.
#[test]
fn durable_store_run_is_bitwise_identical_to_memory_store_run() {
    let f = fixture();
    let dir = scratch_store("parity-mem");
    let mem_cfg = ResilientConfig { ckpt_every: 2, max_restarts: 0, ..Default::default() };
    let dur_cfg = ResilientConfig { ckpt_store: Some(StoreConfig::at(&dir)), ..mem_cfg.clone() };
    let mem = resilient_train(
        &f.exec,
        &f.params,
        HYPER,
        &f.x,
        &f.labels,
        STEPS,
        &mem_cfg,
        FaultPlan::default(),
    );
    let dur = resilient_train(
        &f.exec,
        &f.params,
        HYPER,
        &f.x,
        &f.labels,
        STEPS,
        &dur_cfg,
        FaultPlan::default(),
    );
    let bits = |v: &[f64]| v.iter().map(|l| l.to_bits()).collect::<Vec<_>>();
    assert_eq!(bits(&mem.losses), bits(&dur.losses), "the store backend never touches the math");
    assert!(!mem.snapshot.durable);
    assert!(dur.snapshot.durable);
    assert_eq!(dur.snapshot.versions_written, dur.snapshots);
    assert!(dur.snapshot.payload_bytes > 0);
    assert!(
        dur.snapshot.bytes_written > dur.snapshot.payload_bytes,
        "default ring replication writes redundancy: {:?}",
        dur.snapshot
    );
    // The store outlives the process: a reopened store serves the last
    // snapshot (the driver-restart path).
    let mut reopened = CkptStore::open(&dir).expect("reopen");
    let loaded = reopened.load_latest().expect("newest version verifies");
    assert_eq!(loaded.state.step, 4, "snapshots landed at steps 2 and 4");
    let _ = std::fs::remove_dir_all(&dir);
}

/// Acceptance e2e: rank 2 dies **permanently** and every version's
/// primary shard 2 — the dead rank's slab of the checkpoint — is
/// deleted from storage. The degradation rung must reconstruct the
/// shard from its ring replica, shrink 4 → 3, and produce a post-shrink
/// trajectory bitwise identical to a fresh 3-rank resume from the same
/// re-sharded snapshot.
#[test]
fn dead_rank_with_deleted_shard_reconstructs_from_replicas_and_degrades_bitwise() {
    const STEPS4: u64 = 6;
    let spec = tiny_seg_net();
    let net = Network::init(spec.clone(), 77);
    let grid = ProcGrid::spatial(2, 2);
    let strategy = Strategy::uniform(&spec, grid);
    let exec = DistExecutor::new(spec.clone(), strategy, 2).expect("valid strategy");
    let x = Tensor::from_fn(Shape4::new(2, 2, 8, 8), |n, c, h, w| {
        ((n * 5 + c * 3 + h + 2 * w) % 13) as f32 * 0.11 - 0.7
    });
    let labels = Labels::per_pixel(2, 8, 8, (0..2 * 8 * 8).map(|i| (i % 2) as u32).collect());

    let probe = finegrain::comm::run_ranks_with_faults(4, FaultPlan::default(), |comm| {
        let mut p = net.params.clone();
        let mut opt = Sgd::new(HYPER.lr, HYPER.momentum, HYPER.weight_decay, &p);
        for _ in 0..STEPS4 {
            exec.train_step(comm, &mut p, &mut opt, &x, &labels);
        }
        comm.ops()
    });
    let kill_op = probe[2].as_ref().expect("probe is fault-free") / 2;

    // Storage chaos: rank 2's primary shard is deleted right after
    // every publish — its "local disk" is as dead as the rank. The
    // ring replica (on a surviving peer) must carry every restore.
    let dir = scratch_store("dead-shard");
    let mut storage = StorageFaultPlan::new(0xD15C);
    for call in 0..32 {
        storage = storage.delete_shard_at(call, 2);
    }
    let report = resilient_train(
        &exec,
        &net.params,
        HYPER,
        &x,
        &labels,
        STEPS4,
        &ResilientConfig {
            ckpt_every: 2,
            max_restarts: 1,
            degrade: Some(DegradeConfig::default()),
            ckpt_store: Some(
                StoreConfig::at(&dir).redundancy(Redundancy::Replicas(1)).faults(storage),
            ),
            ..Default::default()
        },
        FaultPlan::new(41).kill_rank_permanently(2, kill_op),
    );
    assert_eq!(report.degradations.len(), 1, "failures: {:?}", report.failures);
    let d = report.degradations[0].clone();
    assert_eq!((d.from_world, d.to_world), (4, 3), "degradation: {d:?}");
    assert_eq!(d.dead_ranks, vec![2]);
    assert_eq!(report.final_world, 3);
    assert_eq!(report.losses.len() as u64, STEPS4);
    assert!(d.at_step >= 2, "the shrink must resume from a real snapshot: {d:?}");
    assert!(d.reshard_total_bytes > 0);
    assert!(report.snapshot.durable);
    assert!(
        report.snapshot.shards_reconstructed >= 1,
        "every restore crossed the deleted shard: {:?}",
        report.snapshot
    );
    assert_eq!(report.snapshot.store_errors, 0);

    // Pre-shrink prefix: bitwise the 4-rank trajectory.
    let baseline4 = run_ranks(4, |comm| {
        let mut p = net.params.clone();
        let mut opt = Sgd::new(HYPER.lr, HYPER.momentum, HYPER.weight_decay, &p);
        (0..STEPS4)
            .map(|_| exec.train_step(comm, &mut p, &mut opt, &x, &labels))
            .collect::<Vec<_>>()
    });
    let at = d.at_step as usize;
    let bits = |v: &[f64]| v.iter().map(|l| l.to_bits()).collect::<Vec<_>>();
    assert_eq!(bits(&report.losses[..at]), bits(&baseline4[0][..at]));

    // Post-shrink suffix: bitwise a fresh 3-rank resume from the same
    // (reconstructed, re-sharded) snapshot.
    let replay = run_ranks(4, |comm| {
        let mut p = net.params.clone();
        let mut opt = Sgd::new(HYPER.lr, HYPER.momentum, HYPER.weight_decay, &p);
        for _ in 0..d.at_step {
            exec.train_step(comm, &mut p, &mut opt, &x, &labels);
        }
        (p, opt.velocity().to_vec())
    });
    let (snap_params, snap_vel) = replay.into_iter().next().unwrap();
    let state = finegrain::nn::TrainState {
        step: d.at_step,
        params: snap_params,
        velocity: snap_vel,
        losses: report.losses[..at].to_vec(),
        guard: finegrain::nn::GuardState::default(),
        grid: Some(grid),
    };
    let (restored, _) = finegrain::nn::reshard_train_state(&state, d.strategy.grids[0]);
    let small =
        DistExecutor::new(spec, d.strategy.clone(), 2).expect("replanned strategy compiles");
    let suffix = run_ranks(3, |comm| {
        let mut p = restored.params.clone();
        let mut opt = Sgd::with_state(
            HYPER.lr,
            HYPER.momentum,
            HYPER.weight_decay,
            restored.velocity.clone(),
        );
        (d.at_step..STEPS4)
            .map(|_| small.train_step(comm, &mut p, &mut opt, &x, &labels))
            .collect::<Vec<_>>()
    });
    assert_eq!(
        bits(&report.losses[at..]),
        bits(&suffix[0]),
        "post-shrink trajectory must match a fresh 3-rank resume step for step"
    );
    let _ = std::fs::remove_dir_all(&dir);
}

/// Acceptance e2e: the newest version's write is torn mid-shard (no
/// redundancy to save it), and the world then loses a rank. The rebuild
/// must fall back to the previous verifiable version — typed, recorded,
/// never a panic and never a silent stale resume — and still finish
/// with the uninterrupted run's bitwise trajectory.
#[test]
fn torn_newest_version_falls_back_to_previous_verifiable_and_recovers_bitwise() {
    const STEPS6: u64 = 6;
    let f = fixture();
    let baseline = {
        let losses = run_ranks(WORLD, |comm| {
            let mut p = f.params.clone();
            let mut opt = Sgd::new(HYPER.lr, HYPER.momentum, HYPER.weight_decay, &p);
            (0..STEPS6)
                .map(|_| f.exec.train_step(comm, &mut p, &mut opt, &f.x, &f.labels))
                .collect::<Vec<_>>()
        });
        losses[0].iter().map(|l| l.to_bits()).collect::<Vec<_>>()
    };
    let probe = finegrain::comm::run_ranks_with_faults(WORLD, FaultPlan::default(), |comm| {
        let mut p = f.params.clone();
        let mut opt = Sgd::new(HYPER.lr, HYPER.momentum, HYPER.weight_decay, &p);
        for _ in 0..STEPS6 {
            f.exec.train_step(comm, &mut p, &mut opt, &f.x, &f.labels);
        }
        comm.ops()
    });
    // Kill rank 1 late — past the step-4 snapshot (store call 1), whose
    // shard 0 the storage chaos tears mid-write.
    let kill_op = probe[1].as_ref().expect("probe is fault-free") * 5 / 6;
    let dir = scratch_store("torn-newest");
    let report = resilient_train(
        &f.exec,
        &f.params,
        HYPER,
        &f.x,
        &f.labels,
        STEPS6,
        &ResilientConfig {
            ckpt_every: 2,
            max_restarts: 2,
            ckpt_store: Some(
                StoreConfig::at(&dir)
                    .redundancy(Redundancy::None)
                    .faults(StorageFaultPlan::new(0x7EA5).torn_write_at(1, 0)),
            ),
            ..Default::default()
        },
        FaultPlan::new(3).kill_rank(1, kill_op),
    );
    assert_eq!(report.restarts, 1, "failures: {:?}", report.failures);
    assert!(report.snapshot.durable);
    assert!(
        report.snapshot.version_fallbacks >= 1,
        "the torn step-4 version must be skipped, typed: {:?}",
        report.snapshot
    );
    let got: Vec<u64> = report.losses.iter().map(|l| l.to_bits()).collect();
    assert_eq!(got, baseline, "fallback replay still lands the uninterrupted trajectory");

    // The damage is still on disk, and still typed: loading the torn
    // version directly names the file, version, and shard.
    let mut store = CkptStore::open(&dir).expect("reopen");
    assert!(store.versions().contains(&2), "the torn version was published");
    match store.load_version(2) {
        Err(finegrain::nn::CheckpointError::Torn { version: 2, shard: Some(0), .. }) => {}
        other => panic!("expected the typed torn-shard error, got {other:?}"),
    }
    // A later, verifiable version exists (the replay re-stored step 4),
    // so the newest-verifiable walk succeeds without touching v2.
    let loaded = store.load_latest().expect("a verifiable version exists");
    assert!(loaded.version > 2, "recovery republished past the torn version");
    let _ = std::fs::remove_dir_all(&dir);
}
