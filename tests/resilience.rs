//! Property test for checkpointed recovery: for random kill points,
//! checkpoint intervals, and victims, a training run that loses a rank
//! and recovers from its last snapshot must produce a loss trajectory
//! **bitwise identical** to an uninterrupted run. This is the executable
//! form of the recovery contract: determinism of the substrate plus
//! bitwise checkpoint round-trips imply replay is exact — any divergence
//! means either nondeterminism in a collective or a lossy checkpoint.

use finegrain::comm::{run_ranks, FaultPlan, IntegrityConfig};
use finegrain::core::{
    resilient_train, DegradeConfig, DistExecutor, GuardConfig, ResilientConfig, SgdHyper, Strategy,
};
use finegrain::kernels::Labels;
use finegrain::nn::{Network, NetworkSpec, Sgd};
use finegrain::tensor::{ProcGrid, Shape4, Tensor};
use proptest::prelude::*;

const STEPS: u64 = 5;
const WORLD: usize = 2;
const HYPER: SgdHyper = SgdHyper { lr: 0.05, momentum: 0.9, weight_decay: 1e-4 };

fn tiny_seg_net() -> NetworkSpec {
    let mut spec = NetworkSpec::new();
    let i = spec.input("x", 2, 8, 8);
    let c1 = spec.conv("c1", i, 3, 3, 1, 1);
    let r1 = spec.relu("r1", c1);
    let c2 = spec.conv("c2", r1, 2, 1, 1, 0);
    spec.loss("l", c2);
    spec
}

struct Fixture {
    exec: DistExecutor,
    params: Vec<finegrain::nn::LayerParams>,
    x: Tensor,
    labels: Labels,
}

fn fixture() -> Fixture {
    let spec = tiny_seg_net();
    let net = Network::init(spec.clone(), 2024);
    let strategy = Strategy::uniform(&spec, ProcGrid::spatial(1, WORLD));
    let exec = DistExecutor::new(spec, strategy, 2).expect("valid strategy");
    let x = Tensor::from_fn(Shape4::new(2, 2, 8, 8), |n, c, h, w| {
        ((n * 5 + c * 3 + h + 2 * w) % 13) as f32 * 0.11 - 0.7
    });
    let labels = Labels::per_pixel(2, 8, 8, (0..2 * 8 * 8).map(|i| (i % 2) as u32).collect());
    Fixture { exec, params: net.params, x, labels }
}

/// Reference trajectory: the same training run with no faults and no
/// checkpointing, as bits.
fn baseline_bits(f: &Fixture) -> Vec<u64> {
    let losses = run_ranks(WORLD, |comm| {
        let mut p = f.params.clone();
        let mut opt = Sgd::new(HYPER.lr, HYPER.momentum, HYPER.weight_decay, &p);
        (0..STEPS)
            .map(|_| f.exec.train_step(comm, &mut p, &mut opt, &f.x, &f.labels))
            .collect::<Vec<_>>()
    });
    losses[0].iter().map(|l| l.to_bits()).collect()
}

/// Comm ops one rank spends on the full run (the valid kill range).
fn ops_horizon(f: &Fixture) -> u64 {
    let probe = finegrain::comm::run_ranks_with_faults(WORLD, FaultPlan::default(), |comm| {
        let mut p = f.params.clone();
        let mut opt = Sgd::new(HYPER.lr, HYPER.momentum, HYPER.weight_decay, &p);
        for _ in 0..STEPS {
            f.exec.train_step(comm, &mut p, &mut opt, &f.x, &f.labels);
        }
        comm.ops()
    });
    *probe[0].as_ref().expect("probe run is fault-free")
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(6))]

    /// Recovered losses are bitwise identical to an uninterrupted run,
    /// for any victim, kill point, and checkpoint interval.
    #[test]
    fn recovery_is_bitwise_exact(
        victim in 0usize..WORLD,
        kill_frac in 1u64..100,
        ckpt_every in 1u64..4,
    ) {
        let f = fixture();
        let baseline = baseline_bits(&f);
        let horizon = ops_horizon(&f);
        // Anywhere in (0, horizon): before the first step, mid-step,
        // between checkpoints, or close enough to the end that the
        // uninterrupted ranks finish before the victim would die.
        let kill_op = (horizon * kill_frac / 100).max(1);
        let report = resilient_train(
            &f.exec,
            &f.params,
            HYPER,
            &f.x,
            &f.labels,
            STEPS,
            &ResilientConfig { ckpt_every, max_restarts: 2, ..Default::default() },
            FaultPlan::new(kill_frac ^ (victim as u64) << 32).kill_rank(victim, kill_op),
        );
        let got: Vec<u64> = report.losses.iter().map(|l| l.to_bits()).collect();
        prop_assert_eq!(got, baseline);
        // At most one rebuild: the plan only fires on the first attempt.
        prop_assert!(report.restarts <= 1);
    }

    /// Chaos under *rate-based* link faults: for pinned seeds and
    /// nonzero drop/corruption rates, a run protected by the integrity
    /// layer (level 1) and the step guard (level 2) repairs everything
    /// in-band — no restart, no rollback — and its loss trajectory is
    /// bitwise identical to a fault-free run of the same stack. The
    /// fault-free reference uses the same guard + integrity wiring so
    /// only the injected faults differ between the two runs.
    #[test]
    fn chaotic_links_with_integrity_and_guard_are_bitwise_exact(
        seed in 1u64..=u32::MAX as u64,
        drop_pct in 0u32..=15,
        corrupt_pct in 1u32..=15,
    ) {
        let f = fixture();
        let cfg = ResilientConfig {
            ckpt_every: 2,
            max_restarts: 0,
            guard: Some(GuardConfig::default()),
            integrity: Some(IntegrityConfig::default()),
            ..Default::default()
        };
        let clean = resilient_train(
            &f.exec, &f.params, HYPER, &f.x, &f.labels, STEPS, &cfg, FaultPlan::default(),
        );
        let plan = FaultPlan::new(seed)
            .drop_rate(drop_pct as f64 / 100.0)
            .corrupt_rate(corrupt_pct as f64 / 100.0);
        let report = resilient_train(
            &f.exec, &f.params, HYPER, &f.x, &f.labels, STEPS, &cfg, plan,
        );
        prop_assert_eq!(report.restarts, 0, "failures: {:?}", report.failures);
        prop_assert_eq!(report.rollbacks, 0, "in-band repair must not reach the guard");
        let clean_bits: Vec<u64> = clean.losses.iter().map(|l| l.to_bits()).collect();
        let got: Vec<u64> = report.losses.iter().map(|l| l.to_bits()).collect();
        prop_assert_eq!(got, clean_bits);
    }
}

/// End-to-end pinned-seed chaos test for the degradation rung: a
/// 4-rank run whose rank 2 is **permanently** dead (it is re-killed on
/// every rebuild attempt) must shrink to 3 ranks and complete — and its
/// post-shrink trajectory must be bitwise identical, step for step, to
/// a fresh 3-rank run built from the degradation's own re-planned
/// strategy and restored from the same (re-sharded) snapshot. Run under
/// `FG_COMM_WATCHDOG=1 FG_COMM_INTEGRITY=1` in CI so the shrink
/// interoperates with the watchdog and integrity layers.
#[test]
fn permanently_dead_rank_degrades_4_to_3_bitwise() {
    const STEPS4: u64 = 6;
    let spec = tiny_seg_net();
    let net = Network::init(spec.clone(), 77);
    let grid = ProcGrid::spatial(2, 2);
    let strategy = Strategy::uniform(&spec, grid);
    let exec = DistExecutor::new(spec.clone(), strategy, 2).expect("valid strategy");
    let x = Tensor::from_fn(Shape4::new(2, 2, 8, 8), |n, c, h, w| {
        ((n * 5 + c * 3 + h + 2 * w) % 13) as f32 * 0.11 - 0.7
    });
    let labels = Labels::per_pixel(2, 8, 8, (0..2 * 8 * 8).map(|i| (i % 2) as u32).collect());

    // Probe the comm-op horizon to pin the kill mid-run, past the first
    // snapshot (step 2) and before the end.
    let probe = finegrain::comm::run_ranks_with_faults(4, FaultPlan::default(), |comm| {
        let mut p = net.params.clone();
        let mut opt = Sgd::new(HYPER.lr, HYPER.momentum, HYPER.weight_decay, &p);
        for _ in 0..STEPS4 {
            exec.train_step(comm, &mut p, &mut opt, &x, &labels);
        }
        comm.ops()
    });
    let kill_op = probe[2].as_ref().expect("probe is fault-free") / 2;

    let report = resilient_train(
        &exec,
        &net.params,
        HYPER,
        &x,
        &labels,
        STEPS4,
        &ResilientConfig {
            ckpt_every: 2,
            max_restarts: 1,
            degrade: Some(DegradeConfig::default()),
            ..Default::default()
        },
        FaultPlan::new(41).kill_rank_permanently(2, kill_op),
    );
    assert_eq!(report.degradations.len(), 1, "failures: {:?}", report.failures);
    let d = report.degradations[0].clone();
    assert_eq!((d.from_world, d.to_world), (4, 3), "degradation: {d:?}");
    assert_eq!(d.dead_ranks, vec![2]);
    assert_eq!(report.final_world, 3);
    assert_eq!(report.losses.len() as u64, STEPS4);
    assert!(d.at_step >= 2, "the shrink must resume from a real snapshot: {d:?}");
    assert!(d.reshard_total_bytes > 0);

    // Pre-shrink prefix: bitwise the 4-rank trajectory.
    let baseline4 = run_ranks(4, |comm| {
        let mut p = net.params.clone();
        let mut opt = Sgd::new(HYPER.lr, HYPER.momentum, HYPER.weight_decay, &p);
        (0..STEPS4)
            .map(|_| exec.train_step(comm, &mut p, &mut opt, &x, &labels))
            .collect::<Vec<_>>()
    });
    let at = d.at_step as usize;
    let bits = |v: &[f64]| v.iter().map(|l| l.to_bits()).collect::<Vec<_>>();
    assert_eq!(bits(&report.losses[..at]), bits(&baseline4[0][..at]));

    // Post-shrink suffix: recompute the snapshot state by replaying the
    // 4-rank world cleanly to the shrink point, re-shard it onto the
    // degradation's grid, and run a *fresh* 3-rank world from there.
    let replay = run_ranks(4, |comm| {
        let mut p = net.params.clone();
        let mut opt = Sgd::new(HYPER.lr, HYPER.momentum, HYPER.weight_decay, &p);
        for _ in 0..d.at_step {
            exec.train_step(comm, &mut p, &mut opt, &x, &labels);
        }
        (p, opt.velocity().to_vec())
    });
    let (snap_params, snap_vel) = replay.into_iter().next().unwrap();
    let state = finegrain::nn::TrainState {
        step: d.at_step,
        params: snap_params,
        velocity: snap_vel,
        losses: report.losses[..at].to_vec(),
        guard: finegrain::nn::GuardState::default(),
        grid: Some(grid),
    };
    let (restored, _) = finegrain::nn::reshard_train_state(&state, d.strategy.grids[0]);
    let small =
        DistExecutor::new(spec, d.strategy.clone(), 2).expect("replanned strategy compiles");
    let suffix = run_ranks(3, |comm| {
        let mut p = restored.params.clone();
        let mut opt = Sgd::with_state(
            HYPER.lr,
            HYPER.momentum,
            HYPER.weight_decay,
            restored.velocity.clone(),
        );
        (d.at_step..STEPS4)
            .map(|_| small.train_step(comm, &mut p, &mut opt, &x, &labels))
            .collect::<Vec<_>>()
    });
    assert_eq!(
        bits(&report.losses[at..]),
        bits(&suffix[0]),
        "post-shrink trajectory must match a fresh 3-rank resume step for step"
    );
}
