//! Executed-schedule timing vs closed-form model (§VI-B3, strengthened).
//!
//! The cost model's forward formula `FP = max(C_interior…, halo) + …` is
//! an *assumption* about how the §IV-A schedule behaves. Here we run the
//! real schedule — post halo sends, compute interior (as modeled device
//! time on the virtual clock), receive, compute boundary — through the
//! discrete-event communicator and check that the resulting virtual time
//! tracks the closed-form `conv_layer_cost` prediction. The event order
//! is the actual implementation's message order, so this validates the
//! model against execution rather than against itself.

use finegrain::comm::{run_ranks_timed, Communicator, LinkModel};
use finegrain::core::overlap::InteriorPlan;
use finegrain::core::DistConv2d;
use finegrain::kernels::conv::ConvGeometry;
use finegrain::perf::{conv_layer_cost, ConvLayerDesc, ConvPass, ConvWork, CostOptions, Platform};
use finegrain::tensor::halo::{finish_halo_exchange, start_halo_exchange, HaloPlan};
use finegrain::tensor::{DistTensor, ProcGrid};

/// Virtual-time execution of the overlapped forward schedule for one
/// conv layer; returns the max rank clock.
fn executed_forward_time(platform: &Platform, desc: &ConvLayerDesc, grid: ProcGrid) -> f64 {
    let geom = ConvGeometry::square(desc.h, desc.w, desc.k, desc.s, desc.k / 2);
    let conv = DistConv2d::new(desc.n, desc.c, desc.f, geom, grid);
    let device = platform.device;
    let plat = *platform;
    let link =
        LinkModel::custom(move |src, dst, bytes| plat.link_between(src, dst).ptp(bytes as f64));
    let out = run_ranks_timed(grid.size(), link, |comm| {
        // Window with zeroed data — we time the schedule, not the values.
        let win =
            DistTensor::new(conv.in_dist.clone(), comm.rank(), conv.x_margins.0, conv.x_margins.1);
        let mut win = win;
        let plan = HaloPlan::build(&win);
        let iplan = InteriorPlan::build(&conv, comm.rank());
        let ob = conv.out_dist.local_box(comm.rank());
        let n_loc = ob.hi[0] - ob.lo[0];

        // (1) Post sends at t = 0.
        let tag = start_halo_exchange(comm, &win, &plan);
        // (2) Interior compute on the virtual clock.
        if let Some((rows, cols)) = iplan.interior {
            let work = ConvWork {
                n: n_loc,
                c: desc.c,
                h: (rows.1 - rows.0) * desc.s,
                w: (cols.1 - cols.0) * desc.s,
                f: desc.f,
                k: desc.k,
                s: desc.s,
            };
            comm.advance(device.conv_time(&work, ConvPass::Forward));
        }
        // (3) Receive halos (clock jumps to arrivals if not yet hidden).
        finish_halo_exchange(comm, &mut win, &plan, tag);
        // (4) Boundary compute.
        for &(rows, cols) in &iplan.boundary {
            let work = ConvWork {
                n: n_loc,
                c: desc.c,
                h: ((rows.1 - rows.0) * desc.s).max(1),
                w: ((cols.1 - cols.0) * desc.s).max(1),
                f: desc.f,
                k: desc.k,
                s: desc.s,
            };
            comm.advance(device.conv_time(&work, ConvPass::Forward));
        }
        comm.now()
    });
    out.into_iter().map(|(_, t)| t).fold(0.0, f64::max)
}

#[test]
fn executed_schedule_tracks_the_closed_form_model() {
    let platform = Platform::lassen_like();
    let opts = CostOptions::default();
    // Representative layers: huge spatial (halo fully hidden) and
    // moderate spatial with a larger kernel.
    // Per-case acceptance bands. The executed schedule is systematically
    // ≥ the closed form: splitting the output into interior + boundary
    // kernels pays per-region launch overhead and reduced small-kernel
    // throughput that `FP = max(C, halo)` ignores — the same lower-order
    // effect the paper's own validation flags at 16 GPUs/sample
    // (§VI-B3). For the huge mesh layer the effect is small; for a small
    // layer the boundary strips are launch-bound and the gap widens —
    // which is precisely why implementations skip the split when the
    // interior is too small to pay for it.
    let cases = [
        (
            ConvLayerDesc { n: 1, c: 18, h: 2048, w: 2048, f: 128, k: 5, s: 2 },
            ProcGrid::spatial(2, 2),
            1.3,
        ),
        (
            ConvLayerDesc { n: 1, c: 18, h: 2048, w: 2048, f: 128, k: 5, s: 2 },
            ProcGrid::spatial(4, 4),
            2.2,
        ),
        (
            ConvLayerDesc { n: 2, c: 64, h: 128, w: 128, f: 64, k: 3, s: 1 },
            ProcGrid::hybrid(2, 2, 1),
            5.0,
        ),
    ];
    for (desc, grid, max_ratio) in cases {
        let executed = executed_forward_time(&platform, &desc, grid);
        let modeled = conv_layer_cost(&platform, &desc, grid, &opts).fp;
        let ratio = executed / modeled;
        assert!(
            (0.6..max_ratio).contains(&ratio),
            "executed schedule {executed} vs closed form {modeled} (ratio {ratio:.2}) for {desc:?} on {grid}"
        );
    }
}

#[test]
fn executed_schedule_shows_the_strong_scaling_ladder() {
    // Virtual-time execution reproduces the Fig. 3 scaling shape for
    // conv1_1 without any closed-form halo assumption.
    let platform = Platform::lassen_like();
    let desc = ConvLayerDesc { n: 1, c: 18, h: 2048, w: 2048, f: 128, k: 5, s: 2 };
    let t1 = executed_forward_time(&platform, &desc, ProcGrid::spatial(1, 1));
    let t4 = executed_forward_time(&platform, &desc, ProcGrid::spatial(2, 2));
    let t16 = executed_forward_time(&platform, &desc, ProcGrid::spatial(4, 4));
    assert!(t4 < t1 / 2.5, "4-way: {t1} → {t4}");
    // 16-way keeps improving, sublinearly: the boundary-kernel
    // efficiency cost grows with decomposition (cf. the paper's
    // degradation remarks at 16 GPUs/sample).
    assert!(t16 < t4 / 2.0, "16-way: {t4} → {t16}");
    assert!(t1 / t16 > 7.0, "overall 16-way speedup only {:.1}x", t1 / t16);
}
