//! Property test for checkpoint re-sharding — the restore path of the
//! elastic-degradation rung. For random source grids, destination grids
//! (different world sizes, non-power-of-two included), and layer
//! shapes, re-laying a grid-tagged `TrainState` from the old
//! `ProcGrid` onto the new one must preserve every parameter and every
//! SGD velocity element **bitwise**: the regrid moves blocks, never
//! values. Any divergence means the overlap fragments mis-cover the
//! global index space — exactly the bug class that would silently
//! corrupt a run resumed on a shrunken world.

use finegrain::nn::{
    load_train_state, reshard_train_state, save_train_state, GuardState, LayerParams, TrainState,
};
use finegrain::tensor::{ProcGrid, Shape4, Tensor};
use proptest::prelude::*;

/// Deterministic pseudo-random tensor: every element distinct-ish and
/// derived from the seed, so misplaced blocks cannot alias.
fn filled(seed: u64, shape: Shape4) -> Tensor {
    Tensor::from_fn(shape, |n, c, h, w| {
        let i = ((n * 31 + c * 17 + h * 7 + w) as u64).wrapping_mul(seed | 1);
        (i % 8191) as f32 * 0.013 - 50.0
    })
}

fn filled_vec(seed: u64, len: usize) -> Vec<f32> {
    (0..len).map(|i| ((i as u64 + 3).wrapping_mul(seed | 1) % 4093) as f32 * 0.021 - 40.0).collect()
}

/// A mixed parameter set exercising every `LayerParams` variant.
fn demo_params(seed: u64, oc: usize, ic: usize, k: usize, features: usize) -> Vec<LayerParams> {
    vec![
        LayerParams::None,
        LayerParams::Conv {
            w: filled(seed, Shape4::new(oc, ic, k, k)),
            b: Some(filled_vec(seed ^ 1, oc)),
        },
        LayerParams::Bn { gamma: filled_vec(seed ^ 2, oc), beta: filled_vec(seed ^ 3, oc) },
        LayerParams::Fc {
            w: filled(seed ^ 4, Shape4::new(features, oc, 1, 1)),
            b: filled_vec(seed ^ 5, features),
        },
    ]
}

fn bits_of(params: &[LayerParams]) -> Vec<Vec<u32>> {
    params
        .iter()
        .map(|p| match p {
            LayerParams::None => Vec::new(),
            LayerParams::Conv { w, b } => {
                let mut v: Vec<u32> = w.as_slice().iter().map(|x| x.to_bits()).collect();
                if let Some(b) = b {
                    v.extend(b.iter().map(|x| x.to_bits()));
                }
                v
            }
            LayerParams::Bn { gamma, beta } => {
                gamma.iter().chain(beta.iter()).map(|x| x.to_bits()).collect()
            }
            LayerParams::Fc { w, b } => {
                w.as_slice().iter().chain(b.iter()).map(|x| x.to_bits()).collect()
            }
        })
        .collect()
}

/// Grid pool spanning world sizes 1–8, including the non-power-of-two
/// sizes a shrink produces and channel/sample-partitioned layouts.
const GRIDS: [ProcGrid; 10] = [
    ProcGrid::new(1, 1, 1, 1),
    ProcGrid::new(1, 1, 1, 2),
    ProcGrid::new(1, 1, 1, 3),
    ProcGrid::new(1, 1, 2, 2),
    ProcGrid::new(1, 1, 3, 1),
    ProcGrid::new(2, 1, 1, 2),
    ProcGrid::new(1, 2, 2, 1),
    ProcGrid::new(1, 1, 2, 3),
    ProcGrid::new(2, 2, 1, 1),
    ProcGrid::new(1, 1, 7, 1),
];

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Params and SGD velocity survive old-grid → new-grid re-sharding
    /// bitwise, for arbitrary grid pairs of unequal world sizes.
    #[test]
    fn resharding_is_bitwise_lossless(
        seed in 1u64..u32::MAX as u64,
        old_i in 0usize..10,
        new_i in 0usize..10,
        oc in 2usize..=5, ic in 1usize..=3, k in 1usize..=3, features in 1usize..=4,
    ) {
        let old = GRIDS[old_i];
        let new = GRIDS[new_i];
        let params = demo_params(seed, oc, ic, k, features);
        let velocity = demo_params(seed.rotate_left(17), oc, ic, k, features);
        let state = TrainState {
            step: 12,
            params: params.clone(),
            velocity: velocity.clone(),
            losses: vec![1.5, 1.25],
            guard: GuardState::default(),
            grid: Some(old),
        };
        let (resharded, stats) = reshard_train_state(&state, new);
        prop_assert_eq!(resharded.grid, Some(new));
        prop_assert_eq!(bits_of(&resharded.params), bits_of(&params));
        prop_assert_eq!(bits_of(&resharded.velocity), bits_of(&velocity));
        prop_assert!(stats.moved_bytes <= stats.total_bytes);
        // Identity regrids move nothing; real regrids account all bytes.
        if old == new {
            prop_assert_eq!(stats.moved_bytes, 0);
        }
        // The re-laid state round-trips through the v3 wire format on
        // the new grid — the degraded world can actually load it.
        let mut buf = Vec::new();
        save_train_state(&mut buf, &resharded).unwrap();
        let loaded = load_train_state(&mut buf.as_slice()).unwrap();
        prop_assert_eq!(loaded.grid, Some(new));
        prop_assert_eq!(bits_of(&loaded.params), bits_of(&params));
        prop_assert_eq!(bits_of(&loaded.velocity), bits_of(&velocity));
    }
}
