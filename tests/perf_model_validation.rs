//! Integration: the §VI-B3 model-validation experiment as assertions —
//! the performance model's communication volumes must track the traffic
//! the thread-simulated communicator actually moves, and the calibrated
//! compute model must predict held-out kernel shapes.

use fg_bench::experiments::modelval::{
    calibrate_cpu_device, measure_conv, measured_traffic, predicted_traffic,
};
use finegrain::perf::{ConvPass, ConvWork};
use finegrain::tensor::ProcGrid;

#[test]
fn traffic_model_tracks_execution_across_schemes() {
    for grid in [ProcGrid::spatial(2, 2), ProcGrid::hybrid(2, 2, 1)] {
        let measured = measured_traffic(grid, 2, 32);
        let (halo_pred, ar_pred) = predicted_traffic(grid, 2, 32);
        let halo_meas = measured.iter().map(|m| m.1).max().unwrap() as f64;
        let ar_meas = measured.iter().map(|m| m.3).max().unwrap() as f64;
        assert!(halo_meas > 0.0, "spatial schemes must exchange halos");
        let halo_ratio = halo_pred / halo_meas;
        assert!(
            (0.4..2.5).contains(&halo_ratio),
            "grid {grid}: halo volume ratio {halo_ratio:.2} (pred {halo_pred}, meas {halo_meas})"
        );
        let ar_ratio = ar_pred / ar_meas;
        assert!(
            (0.4..2.5).contains(&ar_ratio),
            "grid {grid}: allreduce volume ratio {ar_ratio:.2}"
        );
    }
}

#[test]
fn sample_parallelism_moves_no_halo_bytes() {
    let measured = measured_traffic(ProcGrid::sample(4), 4, 32);
    for (halo_msgs, halo_bytes, ar_msgs, _ar_bytes) in &measured {
        assert_eq!(*halo_msgs, 0);
        assert_eq!(*halo_bytes, 0);
        assert!(*ar_msgs > 0, "gradients must still be allreduced");
    }
}

#[test]
fn calibrated_compute_model_generalizes() {
    let model = calibrate_cpu_device();
    // Held-out shapes, different from the calibration set. Unit-stride
    // shapes must predict tightly; the strided shape gets a wide band —
    // the flops-based model does not see the CPU kernel's slower
    // strided inner loop (the paper sidesteps this by *measuring* every
    // layer it models, per §V-A).
    for (work, lo, hi) in [
        (ConvWork { n: 2, c: 8, h: 40, w: 40, f: 8, k: 3, s: 1 }, 0.25, 4.0),
        (ConvWork { n: 1, c: 16, h: 30, w: 30, f: 24, k: 5, s: 1 }, 0.25, 4.0),
        (ConvWork { n: 1, c: 16, h: 28, w: 28, f: 24, k: 5, s: 2 }, 0.05, 8.0),
    ] {
        let measured = measure_conv(&work);
        let modeled = model.conv_time(&work, ConvPass::Forward);
        let ratio = modeled / measured;
        assert!((lo..hi).contains(&ratio), "model does not generalize: {ratio:.2} on {work:?}");
    }
}
