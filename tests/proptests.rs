//! Property-based tests over the distributed substrate: for *random*
//! layer geometries and process-grid factorizations, the distributed
//! algorithms must replicate serial execution; redistribution must be a
//! lossless permutation; collectives must match their sequential
//! reductions. These are the paper's correctness claims quantified over
//! the input space rather than at hand-picked points.

use finegrain::comm::collectives::block_range;
use finegrain::comm::{run_ranks, AllreduceAlgorithm, Collectives, Communicator, ReduceOp};
use finegrain::core::{DistConv2d, DistExecutor};
use finegrain::kernels::conv::{conv2d_backward_data, conv2d_forward, ConvGeometry};
use finegrain::kernels::Labels;
use finegrain::nn::{Network, NetworkSpec, Sgd};
use finegrain::tensor::gather::gather_to_root;
use finegrain::tensor::shuffle::{redistribute, ShufflePlan};
use finegrain::tensor::weighted_block_range;
use finegrain::tensor::{DistTensor, ProcGrid, Shape4, Tensor, TensorDist};
use proptest::prelude::*;

fn tensor_from_seed(shape: Shape4, seed: u64) -> Tensor {
    let mut state = seed | 1;
    Tensor::from_fn(shape, |_, _, _, _| {
        // xorshift64 — fast deterministic pseudo-noise.
        state ^= state << 13;
        state ^= state >> 7;
        state ^= state << 17;
        ((state % 1000) as f32) / 250.0 - 2.0
    })
}

/// Random-but-valid conv problem + grid.
fn conv_case() -> impl Strategy<Value = (usize, usize, usize, ConvGeometry, ProcGrid, u64)> {
    (
        1usize..3,                                   // n multiplier
        1usize..4,                                   // c
        1usize..4,                                   // f
        prop_oneof![Just(1usize), Just(3), Just(5)], // k
        1usize..3,                                   // s
        8usize..15,                                  // h
        8usize..15,                                  // w
        prop_oneof![
            Just(ProcGrid::sample(2)),
            Just(ProcGrid::spatial(2, 1)),
            Just(ProcGrid::spatial(1, 2)),
            Just(ProcGrid::spatial(2, 2)),
            Just(ProcGrid::hybrid(2, 2, 1)),
            Just(ProcGrid::spatial(3, 1)),
        ],
        any::<u64>(),
    )
        .prop_map(|(nm, c, f, k, s, h, w, grid, seed)| {
            let n = grid.n * nm;
            let geom = ConvGeometry::square(h, w, k, s, k / 2);
            (n, c, f, geom, grid, seed)
        })
        .prop_filter("grid must populate the problem", |(n, c, f, geom, grid, _)| {
            let in_shape = Shape4::new(*n, *c, geom.in_h, geom.in_w);
            let out_shape = Shape4::new(*n, *f, geom.out_h(), geom.out_w());
            TensorDist::new(in_shape, *grid).is_fully_populated()
                && TensorDist::new(out_shape, *grid).is_fully_populated()
        })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    #[test]
    fn distributed_conv_replicates_serial((n, c, f, geom, grid, seed) in conv_case()) {
        let x = tensor_from_seed(Shape4::new(n, c, geom.in_h, geom.in_w), seed);
        let w = tensor_from_seed(Shape4::new(f, c, geom.kh, geom.kw), seed ^ 0xABCD);
        let y_serial = conv2d_forward(&x, &w, None, &geom);
        let dy = tensor_from_seed(y_serial.shape(), seed ^ 0x1234);
        let dx_serial = conv2d_backward_data(&dy, &w, &geom);

        let layer = DistConv2d::new(n, c, f, geom, grid);
        let outs = run_ranks(grid.size(), |comm| {
            let xs = DistTensor::from_global(layer.in_dist.clone(), comm.rank(), &x, [0; 4], [0; 4]);
            let (y, _win) = layer.forward(comm, &xs, &w, None);
            let dys = DistTensor::from_global(layer.out_dist.clone(), comm.rank(), &dy, [0; 4], [0; 4]);
            let dx = layer.backward_data(comm, &dys, &w);
            (gather_to_root(comm, &y, 0), gather_to_root(comm, &dx, 0))
        });
        // Bitwise identity: same inner loops, same windows.
        prop_assert_eq!(outs[0].0.as_ref().unwrap(), &y_serial);
        prop_assert_eq!(outs[0].1.as_ref().unwrap(), &dx_serial);
    }

    #[test]
    fn redistribution_is_a_lossless_permutation(
        n in 1usize..5,
        c in 1usize..4,
        h in 4usize..12,
        w in 4usize..12,
        from_idx in 0usize..4,
        to_idx in 0usize..4,
        seed in any::<u64>(),
    ) {
        let grids = [
            ProcGrid::sample(4),
            ProcGrid::spatial(2, 2),
            ProcGrid::spatial(4, 1),
            ProcGrid::hybrid(2, 1, 2),
        ];
        let shape = Shape4::new(n.max(4), c, h, w); // N ≥ 4 so sample(4) populates
        let from = TensorDist::new(shape, grids[from_idx]);
        let to = TensorDist::new(shape, grids[to_idx]);
        prop_assume!(from.is_fully_populated() && to.is_fully_populated());
        let global = tensor_from_seed(shape, seed);
        let ok = run_ranks(4, |comm| {
            let src = DistTensor::from_global(from.clone(), comm.rank(), &global, [0; 4], [0; 4]);
            let mid = redistribute(comm, &src, to.clone(), [0; 4], [0; 4]);
            // Every element still present exactly once, values intact.
            for idx in mid.own_box().iter() {
                if mid.get_global(idx) != Some(global.at_idx(idx)) {
                    return false;
                }
            }
            // Round-trip restores the original shard bit-for-bit.
            let back = redistribute(comm, &mid, from.clone(), [0; 4], [0; 4]);
            back.owned_tensor() == src.owned_tensor()
        });
        prop_assert!(ok.iter().all(|&v| v));
    }

    #[test]
    fn precompiled_shuffle_plan_matches_one_shot_redistribute(
        n in 1usize..5,
        c in 1usize..4,
        h in 4usize..12,
        w in 4usize..12,
        from_idx in 0usize..4,
        to_idx in 0usize..4,
        seed in any::<u64>(),
    ) {
        // The plan-once/execute-many path (compiled in DistExecutor::new)
        // must be bitwise-identical to the historical one-shot
        // redistribute, for every grid pair — including repeated
        // executions of the same plan.
        let grids = [
            ProcGrid::sample(4),
            ProcGrid::spatial(2, 2),
            ProcGrid::spatial(4, 1),
            ProcGrid::hybrid(2, 1, 2),
        ];
        let shape = Shape4::new(n.max(4), c, h, w); // N ≥ 4 so sample(4) populates
        let from = TensorDist::new(shape, grids[from_idx]);
        let to = TensorDist::new(shape, grids[to_idx]);
        prop_assume!(from.is_fully_populated() && to.is_fully_populated());
        let a = tensor_from_seed(shape, seed);
        let b = tensor_from_seed(shape, seed ^ 0x5EED);
        let ok = run_ranks(4, |comm| {
            let plan = ShufflePlan::build(from.clone(), to.clone(), comm.rank());
            for global in [&a, &b] {
                let src = DistTensor::from_global(from.clone(), comm.rank(), global, [0; 4], [0; 4]);
                let one_shot = redistribute(comm, &src, to.clone(), [0; 4], [0; 4]);
                let planned = plan.execute(comm, &src, [0; 4], [0; 4]);
                if planned.owned_tensor() != one_shot.owned_tensor()
                    || planned.dist() != one_shot.dist()
                {
                    return false;
                }
            }
            true
        });
        prop_assert!(ok.iter().all(|&v| v));
    }

    #[test]
    fn allreduce_algorithms_agree_with_sequential_sum(
        p in 2usize..7,
        len in 1usize..40,
        seed in any::<u64>(),
    ) {
        let inputs: Vec<Vec<f64>> = (0..p)
            .map(|r| {
                (0..len)
                    .map(|i| {
                        let v = seed
                            .wrapping_mul(r as u64 + 1)
                            .wrapping_add(i as u64 * 7919);
                        ((v % 2000) as f64) / 100.0 - 10.0
                    })
                    .collect()
            })
            .collect();
        let want: Vec<f64> =
            (0..len).map(|i| inputs.iter().map(|v| v[i]).sum()).collect();
        for alg in [
            AllreduceAlgorithm::Ring,
            AllreduceAlgorithm::RecursiveDoubling,
            AllreduceAlgorithm::Rabenseifner,
        ] {
            let outs = run_ranks(p, |comm| {
                comm.allreduce_with(&inputs[comm.rank()], ReduceOp::Sum, alg)
            });
            for out in &outs {
                prop_assert_eq!(out.len(), len);
                for (a, b) in out.iter().zip(&want) {
                    prop_assert!((a - b).abs() < 1e-9 * b.abs().max(1.0),
                        "alg {:?}: {} vs {}", alg, a, b);
                }
                prop_assert_eq!(out, &outs[0]);
            }
        }
    }

    #[test]
    fn halo_exchange_establishes_window_invariant(
        h in 6usize..16,
        w in 6usize..16,
        mh in 0usize..3,
        mw in 0usize..3,
        seed in any::<u64>(),
    ) {
        let shape = Shape4::new(1, 2, h, w);
        let grid = ProcGrid::spatial(2, 2);
        let dist = TensorDist::new(shape, grid);
        prop_assume!(dist.is_fully_populated());
        let global = tensor_from_seed(shape, seed);
        let ok = run_ranks(4, |comm| {
            let mut dt = DistTensor::from_global(
                dist.clone(), comm.rank(), &global, [0, 0, mh, mw], [0, 0, mh, mw],
            );
            finegrain::tensor::halo::exchange_halo(comm, &mut dt);
            // Every in-bounds window position matches the global tensor.
            for idx in dt.needed_box().iter() {
                if dt.get_global(idx) != Some(global.at_idx(idx)) {
                    return false;
                }
            }
            true
        });
        prop_assert!(ok.iter().all(|&v| v));
    }
}

/// Tiny segmentation net for the weighted-partition property below:
/// just enough structure (halo-carrying conv, pointwise head) to make a
/// layout change observable in the loss bits.
fn tiny_weighted_net() -> NetworkSpec {
    let mut spec = NetworkSpec::new();
    let i = spec.input("x", 2, 8, 8);
    let c1 = spec.conv("c1", i, 3, 3, 1, 1);
    let r1 = spec.relu("r1", c1);
    let c2 = spec.conv("c2", r1, 2, 1, 1, 0);
    spec.loss("l", c2);
    spec
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    /// Gray-failure rebalance contract, quantified: a weighted partition
    /// whose per-rank weights are all *equal* IS the uniform partition.
    /// Three layers of the same fact — the weighted range computation
    /// degenerates to `block_range` for any total/parts/weight, equal
    /// rank weights normalize out of the `Strategy` entirely, and the
    /// training trajectory is bitwise the uniform one. Together they
    /// license leaving the weighted machinery permanently enabled: a
    /// rebalance back to health is a no-op, not a new layout.
    #[test]
    fn equal_weight_partition_is_bitwise_uniform(
        total in 1usize..2000,
        parts in 1usize..9,
        w in 1u64..50,
        grid_idx in 0usize..4,
        wv in 1u64..24,
        seed in any::<u64>(),
    ) {
        // Range-level identity: the non-normalized weighted path slices
        // exactly the blocks the uniform path does.
        let weights = vec![w; parts];
        for part in 0..parts {
            prop_assert_eq!(
                weighted_block_range(total, &weights, part),
                block_range(total, parts, part),
            );
        }

        // Strategy-level identity: equal weights normalize away.
        let grids = [
            ProcGrid::spatial(4, 1),
            ProcGrid::spatial(2, 2),
            ProcGrid::spatial(1, 4),
            ProcGrid::hybrid(2, 2, 1),
        ];
        let grid = grids[grid_idx];
        let spec = tiny_weighted_net();
        // (`finegrain::core::Strategy` spelled out: the name collides
        // with proptest's `Strategy` trait used by `conv_case` above.)
        let uniform = finegrain::core::Strategy::uniform(&spec, grid);
        let weighted = uniform.clone().with_rank_weights(vec![wv; grid.size()]);
        prop_assert_eq!(&uniform, &weighted);

        // Trajectory-level identity: two steps, bitwise equal losses.
        let net = Network::init(spec.clone(), seed);
        let x = Tensor::from_fn(Shape4::new(2, 2, 8, 8), |n, c, h, w| {
            ((n * 5 + c * 3 + h + 2 * w) % 13) as f32 * 0.11 - 0.7
        });
        let labels =
            Labels::per_pixel(2, 8, 8, (0..2 * 8 * 8).map(|i| (i % 2) as u32).collect());
        let uexec = DistExecutor::new(spec.clone(), uniform, 2).expect("uniform compiles");
        let wexec = DistExecutor::new(spec, weighted, 2).expect("equal weights compile");
        let run = |exec: &DistExecutor| {
            run_ranks(grid.size(), |comm| {
                let mut p = net.params.clone();
                let mut opt = Sgd::new(0.05, 0.9, 1e-4, &p);
                (0..2)
                    .map(|_| exec.train_step(comm, &mut p, &mut opt, &x, &labels).to_bits())
                    .collect::<Vec<_>>()
            })
        };
        prop_assert_eq!(run(&uexec), run(&wexec));
    }
}

/// Tiny classifier (conv → BN → relu → GAP → FC) — the shape the
/// serving tier hosts. Its final activation is per-sample logits, which
/// exercises the sample-group assembly path of `infer_logits`.
fn tiny_classifier_net() -> NetworkSpec {
    let mut spec = NetworkSpec::new();
    let i = spec.input("x", 2, 8, 8);
    let c1 = spec.conv("c1", i, 4, 3, 1, 1);
    let b1 = spec.batchnorm("b1", c1);
    let r1 = spec.relu("r1", b1);
    let g = spec.global_avg_pool("g", r1);
    let f = spec.fc("f", g, 3);
    spec.loss("l", f);
    spec
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    /// The serving tier's correctness contract, quantified: for random
    /// parameters, random calibrated BN statistics, random batch sizes,
    /// and every grid family, the distributed inference path
    /// (`DistExecutor::infer_logits`, which runs
    /// `DistExecutor::forward_inference` and assembles the final
    /// activation at the root) replicates the serial reference
    /// (`RunningStats::infer` over `Network::forward_inference`).
    ///
    /// The equality grade is head-dependent and pinned exactly:
    /// *sharded* heads (segmentation — the paper's model family) are
    /// **bitwise** on every grid, because convolutions compute identical
    /// windows over identical halos; *per-sample* heads (GAP → FC) are
    /// bitwise under pure sample parallelism but only ULP-close under
    /// spatial partitioning, where GAP reduces spatial partial sums with
    /// an allreduce whose summation order differs from the serial loop.
    #[test]
    fn distributed_inference_replicates_serial(
        grid_idx in 0usize..4,
        batch_mult in 1usize..4,
        calib_batches in 1usize..4,
        seed in any::<u64>(),
    ) {
        let grids = [
            ProcGrid::sample(2),
            ProcGrid::spatial(2, 1),
            ProcGrid::spatial(2, 2),
            ProcGrid::hybrid(2, 2, 1),
        ];
        let grid = grids[grid_idx];
        // Mixed batch sizes: every multiple of the sample-group count
        // is a batch the serving batcher can legally dispatch.
        let batch = grid.n * batch_mult;

        for (spec, head_is_sharded) in
            [(tiny_classifier_net(), false), (tiny_weighted_net(), true)]
        {
            let net = Network::init(spec.clone(), seed);
            // Running statistics from real training-mode passes — the
            // same derivation `ServableModel` uses at checkpoint load.
            let mut rs = finegrain::nn::RunningStats::new(&spec, 0.1);
            for s in 0..calib_batches {
                let cal = tensor_from_seed(Shape4::new(4, 2, 8, 8), seed ^ (s as u64 + 1));
                rs.update(&net.forward(&cal, None));
            }
            let x = tensor_from_seed(Shape4::new(batch, 2, 8, 8), seed ^ 0x5EE5);
            let serial = rs.infer(&net, &x);

            let strategy = finegrain::core::Strategy::uniform(&spec, grid);
            let exec = DistExecutor::new(spec, strategy, batch).expect("strategy compiles");
            let outs = run_ranks(grid.size(), |comm| {
                exec.infer_logits(comm, &net.params, &x, rs.stats(), 0)
            });
            let assembled = outs[0].as_ref().expect("root assembles the output");
            let sample_parallel = grid.h == 1 && grid.w == 1;
            if head_is_sharded || sample_parallel {
                prop_assert_eq!(assembled, &serial);
            } else {
                prop_assert_eq!(assembled.shape(), serial.shape());
                for (a, b) in assembled.as_slice().iter().zip(serial.as_slice()) {
                    prop_assert!(
                        (a - b).abs() <= 1e-5 * b.abs().max(1.0),
                        "spatially-reduced GAP stays ULP-close: {} vs {}", a, b
                    );
                }
            }
            for out in &outs[1..] {
                prop_assert!(out.is_none(), "non-root ranks hold no assembled output");
            }
        }
    }
}
