//! Integration: the full §V pipeline — performance model → strategy
//! optimizer → distributed executor. The optimizer's plan must not only
//! look good in the model; it must *execute* and produce single-device
//! results.

use finegrain::comm::run_ranks;
use finegrain::core::DistExecutor;
use finegrain::data::MeshDataset;
use finegrain::models::{mesh_model_custom, mesh_model_scaled, MeshSize, MESH_CHANNELS};
use finegrain::nn::Network;
use finegrain::perf::{network_cost, CostOptions, Platform, StrategyOptimizer};

#[test]
fn optimized_strategy_executes_and_matches_serial() {
    let spec = mesh_model_custom(MeshSize::OneK, 128, 8);
    let batch = 2;
    let world = 4;
    let platform = Platform::lassen_like();

    let (strategy, predicted) = StrategyOptimizer::new(&platform, &spec, batch, world).optimize();
    assert_eq!(strategy.validate(&spec, batch), Ok(()));
    assert!(predicted.total() > 0.0);

    let net = Network::init(spec.clone(), 4242);
    let ds = MeshDataset::new(128, 2, MESH_CHANNELS, 31);
    let (x, labels) = ds.batch(0, batch);
    let (serial_loss, _) = net.loss_and_grads(&x, &labels);

    let exec = DistExecutor::new(spec, strategy, batch).expect("optimized strategy executes");
    let losses = run_ranks(world, |comm| exec.loss_and_grads(comm, &net.params, &x, &labels).0);
    for l in &losses {
        assert!(
            (l - serial_loss).abs() < 1e-3 * serial_loss.abs().max(1.0),
            "optimized strategy changed results: {l} vs {serial_loss}"
        );
    }
}

#[test]
fn optimizer_prediction_is_consistent_with_direct_model_evaluation() {
    // The cost the optimizer reports must equal network_cost of the
    // strategy it returns (no hidden state).
    let spec = mesh_model_scaled(MeshSize::OneK, 256);
    let platform = Platform::lassen_like();
    let (strategy, predicted) = StrategyOptimizer::new(&platform, &spec, 2, 8).optimize();
    let direct = network_cost(&platform, &spec, 2, &strategy, &CostOptions::default());
    assert!(
        (predicted.total() - direct.total()).abs() < 1e-12,
        "optimizer cost {} vs direct {}",
        predicted.total(),
        direct.total()
    );
}

#[test]
fn batch_one_memory_scenario_runs_spatially() {
    // The paper's motivating scenario: a batch of ONE sample cannot be
    // sample-parallelized; the optimizer must produce a spatial plan and
    // that plan must run.
    let spec = mesh_model_custom(MeshSize::OneK, 128, 8);
    let platform = Platform::lassen_like();
    let (strategy, _) = StrategyOptimizer::new(&platform, &spec, 1, 4).optimize();
    for g in &strategy.grids {
        assert_eq!(g.n, 1, "no sample partitioning is possible at N=1");
        assert_eq!(g.ranks_per_sample(), 4);
    }
    let net = Network::init(spec.clone(), 5);
    let ds = MeshDataset::new(128, 2, MESH_CHANNELS, 77);
    let (x, labels) = ds.batch(0, 1);
    let exec = DistExecutor::new(spec, strategy, 1).unwrap();
    let losses = run_ranks(4, |comm| exec.loss_and_grads(comm, &net.params, &x, &labels).0);
    assert!(losses[0].is_finite());
}
