//! Offline stand-in for the subset of `crossbeam` this workspace uses:
//! `channel::unbounded` with blocking, timed, and non-blocking receives.
//! Built on `std::sync::mpsc` with the receiver wrapped in a mutex so
//! the handle is `Sync` and cloneable like the real crossbeam receiver.

pub mod channel {
    use std::sync::{mpsc, Arc, Mutex};
    use std::time::Duration;

    /// Error returned when the receiving side is gone; carries the
    /// unsent value, like `crossbeam::channel::SendError`.
    #[derive(Debug, Clone, Copy, PartialEq, Eq)]
    pub struct SendError<T>(pub T);

    /// Error returned when the channel is empty and all senders are gone.
    #[derive(Debug, Clone, Copy, PartialEq, Eq)]
    pub struct RecvError;

    /// Error returned by [`Receiver::recv_timeout`], mirroring
    /// `crossbeam::channel::RecvTimeoutError`.
    #[derive(Debug, Clone, Copy, PartialEq, Eq)]
    pub enum RecvTimeoutError {
        /// The wait elapsed without a message arriving.
        Timeout,
        /// The channel is empty and all senders are gone.
        Disconnected,
    }

    /// Sending half of an unbounded channel.
    pub struct Sender<T> {
        inner: mpsc::Sender<T>,
    }

    impl<T> Clone for Sender<T> {
        fn clone(&self) -> Self {
            Sender { inner: self.inner.clone() }
        }
    }

    impl<T> Sender<T> {
        /// Enqueue a value; never blocks.
        pub fn send(&self, value: T) -> Result<(), SendError<T>> {
            self.inner.send(value).map_err(|mpsc::SendError(v)| SendError(v))
        }
    }

    /// Receiving half of an unbounded channel (shareable, like
    /// crossbeam's MPMC receiver).
    pub struct Receiver<T> {
        inner: Arc<Mutex<mpsc::Receiver<T>>>,
    }

    impl<T> Clone for Receiver<T> {
        fn clone(&self) -> Self {
            Receiver { inner: Arc::clone(&self.inner) }
        }
    }

    impl<T> Receiver<T> {
        /// Block until a value arrives.
        pub fn recv(&self) -> Result<T, RecvError> {
            self.inner.lock().expect("receiver lock").recv().map_err(|_| RecvError)
        }

        /// Non-blocking receive.
        pub fn try_recv(&self) -> Result<T, mpsc::TryRecvError> {
            self.inner.lock().expect("receiver lock").try_recv()
        }

        /// Block until a value arrives or `timeout` elapses.
        pub fn recv_timeout(&self, timeout: Duration) -> Result<T, RecvTimeoutError> {
            self.inner.lock().expect("receiver lock").recv_timeout(timeout).map_err(|e| match e {
                mpsc::RecvTimeoutError::Timeout => RecvTimeoutError::Timeout,
                mpsc::RecvTimeoutError::Disconnected => RecvTimeoutError::Disconnected,
            })
        }
    }

    /// An unbounded FIFO channel.
    pub fn unbounded<T>() -> (Sender<T>, Receiver<T>) {
        let (tx, rx) = mpsc::channel();
        (Sender { inner: tx }, Receiver { inner: Arc::new(Mutex::new(rx)) })
    }

    #[cfg(test)]
    mod tests {
        use super::*;

        #[test]
        fn recv_timeout_times_out_then_delivers() {
            let (tx, rx) = unbounded::<u32>();
            assert_eq!(
                rx.recv_timeout(std::time::Duration::from_millis(1)),
                Err(RecvTimeoutError::Timeout)
            );
            tx.send(7).unwrap();
            assert_eq!(rx.recv_timeout(std::time::Duration::from_millis(1)), Ok(7));
            drop(tx);
            assert_eq!(
                rx.recv_timeout(std::time::Duration::from_millis(1)),
                Err(RecvTimeoutError::Disconnected)
            );
        }

        #[test]
        fn fifo_across_threads() {
            let (tx, rx) = unbounded::<u32>();
            let tx2 = tx.clone();
            let h = std::thread::spawn(move || {
                for i in 0..100 {
                    tx2.send(i).unwrap();
                }
            });
            let got: Vec<u32> = (0..100).map(|_| rx.recv().unwrap()).collect();
            h.join().unwrap();
            assert_eq!(got, (0..100).collect::<Vec<_>>());
        }
    }
}
