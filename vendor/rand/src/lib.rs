//! Offline stand-in for the subset of the `rand` crate this workspace
//! uses: `StdRng::seed_from_u64` + `Rng::gen_range` over numeric ranges.
//! Deterministic for a fixed seed (splitmix64 seeding, xorshift64*
//! stream); the bit stream differs from the real `rand`, which nothing
//! in-tree depends on.

/// Core source of random 64-bit words.
pub trait RngCore {
    /// Next word of the stream.
    fn next_u64(&mut self) -> u64;

    /// Next 32-bit word.
    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }
}

/// Types a range can draw uniform samples of.
pub trait SampleRange<T> {
    /// Draw one sample from the range.
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

macro_rules! int_range {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for core::ops::Range<$t> {
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "gen_range on an empty range");
                let span = (self.end as i128 - self.start as i128) as u128;
                let v = (rng.next_u64() as u128) % span;
                (self.start as i128 + v as i128) as $t
            }
        }
        impl SampleRange<$t> for core::ops::RangeInclusive<$t> {
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (lo, hi) = self.into_inner();
                assert!(lo <= hi, "gen_range on an empty range");
                let span = (hi as i128 - lo as i128) as u128 + 1;
                let v = (rng.next_u64() as u128) % span;
                (lo as i128 + v as i128) as $t
            }
        }
    )*};
}
int_range!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

macro_rules! float_range {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for core::ops::Range<$t> {
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "gen_range on an empty range");
                // 53 high bits -> uniform in [0, 1).
                let unit = (rng.next_u64() >> 11) as f64 / (1u64 << 53) as f64;
                self.start + (unit as $t) * (self.end - self.start)
            }
        }
    )*};
}
float_range!(f32, f64);

/// User-facing sampling methods, blanket-implemented for every core rng.
pub trait Rng: RngCore {
    /// Uniform sample from `range`.
    fn gen_range<T, Rg>(&mut self, range: Rg) -> T
    where
        Rg: SampleRange<T>,
        Self: Sized,
    {
        range.sample_single(self)
    }
}

impl<R: RngCore> Rng for R {}

/// Rngs that can be constructed from a seed.
pub trait SeedableRng: Sized {
    /// Build from a 64-bit seed (deterministic).
    fn seed_from_u64(seed: u64) -> Self;
}

/// The standard deterministic rng: splitmix64-expanded seed feeding an
/// xorshift64* stream.
#[derive(Debug, Clone)]
pub struct StdRng {
    state: u64,
}

impl SeedableRng for StdRng {
    fn seed_from_u64(seed: u64) -> Self {
        // splitmix64 scrambles low-entropy seeds into a full-width state.
        let mut z = seed.wrapping_add(0x9E37_79B9_7F4A_7C15);
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        StdRng { state: (z ^ (z >> 31)) | 1 }
    }
}

impl RngCore for StdRng {
    fn next_u64(&mut self) -> u64 {
        self.state ^= self.state << 13;
        self.state ^= self.state >> 7;
        self.state ^= self.state << 17;
        self.state.wrapping_mul(0x2545_F491_4F6C_DD1D)
    }
}

/// Namespaced rngs, mirroring `rand::rngs`.
pub mod rngs {
    pub use crate::StdRng;
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic_for_fixed_seed() {
        let mut a = StdRng::seed_from_u64(42);
        let mut b = StdRng::seed_from_u64(42);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn ranges_stay_in_bounds() {
        let mut rng = StdRng::seed_from_u64(7);
        for _ in 0..1000 {
            let v = rng.gen_range(3usize..17);
            assert!((3..17).contains(&v));
            let f = rng.gen_range(-1.0f32..1.0);
            assert!((-1.0..1.0).contains(&f));
            let i = rng.gen_range(-5i32..=5);
            assert!((-5..=5).contains(&i));
        }
    }

    #[test]
    fn floats_cover_the_range() {
        let mut rng = StdRng::seed_from_u64(1);
        let samples: Vec<f32> = (0..256).map(|_| rng.gen_range(0.0f32..1.0)).collect();
        assert!(samples.iter().any(|&v| v < 0.25));
        assert!(samples.iter().any(|&v| v > 0.75));
    }
}
