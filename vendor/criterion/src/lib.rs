//! Offline stand-in for the subset of `criterion` this workspace uses.
//! Benchmarks run a fixed warmup plus `sample_size` timed iterations and
//! print mean wall-clock time per iteration — no statistics, plots, or
//! baselines, but the same source-level API.

use std::fmt::Display;
use std::time::Instant;

pub use std::hint::black_box;

/// Identifier combining a function name and a parameter, like
/// `criterion::BenchmarkId`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct BenchmarkId {
    id: String,
}

impl BenchmarkId {
    /// `function_name/parameter`.
    pub fn new(function_name: impl Display, parameter: impl Display) -> BenchmarkId {
        BenchmarkId { id: format!("{function_name}/{parameter}") }
    }

    /// Parameter-only id.
    pub fn from_parameter(parameter: impl Display) -> BenchmarkId {
        BenchmarkId { id: parameter.to_string() }
    }
}

impl Display for BenchmarkId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(&self.id)
    }
}

/// Timing harness handed to benchmark closures.
pub struct Bencher {
    samples: usize,
    /// Mean seconds per iteration, recorded by `iter`.
    mean: f64,
}

impl Bencher {
    /// Time `f`, running one warmup pass then `sample_size` samples.
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut f: F) {
        black_box(f());
        let start = Instant::now();
        for _ in 0..self.samples {
            black_box(f());
        }
        self.mean = start.elapsed().as_secs_f64() / self.samples as f64;
    }
}

/// A named group of related benchmarks.
pub struct BenchmarkGroup<'a> {
    name: String,
    samples: usize,
    _criterion: &'a mut Criterion,
}

impl BenchmarkGroup<'_> {
    /// Number of timed iterations per benchmark (minimum 1).
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.samples = n.max(1);
        self
    }

    fn run(&mut self, id: String, f: impl FnOnce(&mut Bencher)) {
        let mut b = Bencher { samples: self.samples, mean: 0.0 };
        f(&mut b);
        println!("{}/{id}: {:.3e} s/iter ({} samples)", self.name, b.mean, self.samples);
    }

    /// Benchmark a closure under `id`.
    pub fn bench_function(&mut self, id: impl Display, f: impl FnMut(&mut Bencher)) -> &mut Self {
        let mut f = f;
        self.run(id.to_string(), |b| f(b));
        self
    }

    /// Benchmark a closure that receives `input`.
    pub fn bench_with_input<I: ?Sized>(
        &mut self,
        id: BenchmarkId,
        input: &I,
        f: impl FnMut(&mut Bencher, &I),
    ) -> &mut Self {
        let mut f = f;
        self.run(id.to_string(), |b| f(b, input));
        self
    }

    /// End the group (no-op; kept for API compatibility).
    pub fn finish(self) {}
}

/// Top-level benchmark driver.
#[derive(Debug, Default)]
pub struct Criterion {}

impl Criterion {
    /// Open a named group.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup { name: name.into(), samples: 10, _criterion: self }
    }

    /// Benchmark a closure outside any group.
    pub fn bench_function(&mut self, id: &str, f: impl FnMut(&mut Bencher)) -> &mut Self {
        let mut group = self.benchmark_group("bench");
        group.bench_function(id, f);
        group.finish();
        self
    }
}

/// Collect benchmark functions into a runnable group.
#[macro_export]
macro_rules! criterion_group {
    (name = $name:ident; config = $cfg:expr; targets = $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion: $crate::Criterion = $cfg;
            $($target(&mut criterion);)+
        }
    };
    ($name:ident, $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion = $crate::Criterion::default();
            $($target(&mut criterion);)+
        }
    };
}

/// Generate `main` running the listed groups.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bencher_records_positive_time() {
        let mut c = Criterion::default();
        let mut group = c.benchmark_group("g");
        group.sample_size(3);
        let mut ran = 0u32;
        group.bench_function("work", |b| b.iter(|| ran += 1));
        group.finish();
        // 1 warmup + 3 samples.
        assert_eq!(ran, 4);
    }
}
