//! Test-runner plumbing: case-count configuration, the deterministic
//! rng, and the rejection marker `prop_assume!` returns.

/// Marker for a rejected (filtered-out) test case.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Rejected;

/// Runner configuration. Only `cases` is honored by this stand-in.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Config {
    /// Number of accepted cases each test must pass.
    pub cases: u32,
}

impl Config {
    /// Configuration running `cases` accepted cases per test.
    pub fn with_cases(cases: u32) -> Config {
        Config { cases }
    }
}

impl Default for Config {
    fn default() -> Config {
        Config { cases: 64 }
    }
}

/// Deterministic rng for value generation, seeded from the test's path
/// so every test sees a distinct but reproducible stream.
#[derive(Debug, Clone)]
pub struct TestRng {
    state: u64,
}

impl TestRng {
    /// Seed from a test identifier (FNV-1a over the name).
    pub fn from_name(name: &str) -> TestRng {
        let mut h: u64 = 0xCBF2_9CE4_8422_2325;
        for b in name.bytes() {
            h ^= b as u64;
            h = h.wrapping_mul(0x0000_0100_0000_01B3);
        }
        TestRng { state: h | 1 }
    }

    /// Next word of the stream (xorshift64*).
    pub fn next_u64(&mut self) -> u64 {
        self.state ^= self.state << 13;
        self.state ^= self.state >> 7;
        self.state ^= self.state << 17;
        self.state.wrapping_mul(0x2545_F491_4F6C_DD1D)
    }

    /// Uniform index in `0..n`.
    pub fn index(&mut self, n: usize) -> usize {
        assert!(n > 0, "index over an empty range");
        (self.next_u64() % n as u64) as usize
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn distinct_tests_get_distinct_streams() {
        let a = TestRng::from_name("mod::a").next_u64();
        let b = TestRng::from_name("mod::b").next_u64();
        assert_ne!(a, b);
    }

    #[test]
    fn streams_are_reproducible() {
        let mut a = TestRng::from_name("x");
        let mut b = TestRng::from_name("x");
        for _ in 0..10 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }
}
