//! Offline stand-in for the subset of `proptest` this workspace uses.
//!
//! Differences from the real crate, none of which in-tree tests depend
//! on: no shrinking (a failing case panics with the assertion message
//! directly), a smaller default case count, and a different (but still
//! deterministic) random stream seeded from the test's module path.

pub mod strategy;
pub mod test_runner;

/// The glob import used by every property test file.
pub mod prelude {
    pub use crate::strategy::{any, BoxedStrategy, Just, Strategy, Union};
    pub use crate::test_runner::Config as ProptestConfig;
    pub use crate::{
        prop_assert, prop_assert_eq, prop_assert_ne, prop_assume, prop_oneof, proptest,
    };
}

/// Reject the current case (it does not count toward the case budget).
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr) => {
        if !($cond) {
            return ::core::result::Result::Err($crate::test_runner::Rejected);
        }
    };
    ($cond:expr, $($fmt:tt)*) => {
        if !($cond) {
            return ::core::result::Result::Err($crate::test_runner::Rejected);
        }
    };
}

/// Assert inside a property test (fails the test; no shrinking).
#[macro_export]
macro_rules! prop_assert {
    ($($args:tt)*) => { assert!($($args)*) };
}

/// Equality assertion inside a property test.
#[macro_export]
macro_rules! prop_assert_eq {
    ($($args:tt)*) => { assert_eq!($($args)*) };
}

/// Inequality assertion inside a property test.
#[macro_export]
macro_rules! prop_assert_ne {
    ($($args:tt)*) => { assert_ne!($($args)*) };
}

/// Uniform choice among strategies producing the same value type.
#[macro_export]
macro_rules! prop_oneof {
    ($($strat:expr),+ $(,)?) => {
        $crate::strategy::Union::new(vec![$($crate::strategy::Strategy::boxed($strat)),+])
    };
}

/// Define property tests: each generated case binds the patterns from
/// their strategies and runs the body `Config::cases` times.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_items! { ($cfg) $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_items! { ($crate::test_runner::Config::default()) $($rest)* }
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_items {
    ( ($cfg:expr) ) => {};
    ( ($cfg:expr)
      $(#[$meta:meta])*
      fn $name:ident ( $($bind:pat in $strat:expr),+ $(,)? ) $body:block
      $($rest:tt)*
    ) => {
        $(#[$meta])*
        fn $name() {
            let config: $crate::test_runner::Config = $cfg;
            let strat = ($($strat,)+);
            let mut rng = $crate::test_runner::TestRng::from_name(concat!(
                module_path!(), "::", stringify!($name)
            ));
            let mut accepted: u32 = 0;
            let mut attempts: u32 = 0;
            while accepted < config.cases {
                attempts += 1;
                assert!(
                    attempts <= config.cases.saturating_mul(256).saturating_add(4096),
                    "proptest: too many rejected samples in {}",
                    stringify!($name),
                );
                let vals = match $crate::strategy::Strategy::gen_value(&strat, &mut rng) {
                    ::core::option::Option::Some(v) => v,
                    ::core::option::Option::None => continue,
                };
                let ($($bind,)+) = vals;
                let outcome: ::core::result::Result<(), $crate::test_runner::Rejected> =
                    (|| {
                        { $body }
                        ::core::result::Result::Ok(())
                    })();
                if outcome.is_ok() {
                    accepted += 1;
                }
            }
        }
        $crate::__proptest_items! { ($cfg) $($rest)* }
    };
}
