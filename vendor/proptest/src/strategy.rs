//! Value-generation strategies: numeric ranges, `Just`, unions, tuples,
//! `any::<T>()`, and the `prop_map`/`prop_filter` combinators.

use crate::test_runner::TestRng;

/// A generator of test values. `gen_value` returns `None` when the
/// sample was rejected by a filter (the runner retries).
pub trait Strategy {
    /// The type of generated values.
    type Value;

    /// Generate one candidate value.
    fn gen_value(&self, rng: &mut TestRng) -> Option<Self::Value>;

    /// Map generated values through `f`.
    fn prop_map<O, F>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
        F: Fn(Self::Value) -> O,
    {
        Map { inner: self, f }
    }

    /// Keep only values for which `pred` holds; `reason` is unused by
    /// this stand-in but kept for API compatibility.
    fn prop_filter<F>(self, reason: &'static str, pred: F) -> Filter<Self, F>
    where
        Self: Sized,
        F: Fn(&Self::Value) -> bool,
    {
        let _ = reason;
        Filter { inner: self, pred }
    }

    /// Map and filter in one step: keep only values for which `f`
    /// returns `Some`. `reason` is unused by this stand-in but kept for
    /// API compatibility.
    fn prop_filter_map<O, F>(self, reason: &'static str, f: F) -> FilterMap<Self, F>
    where
        Self: Sized,
        F: Fn(Self::Value) -> Option<O>,
    {
        let _ = reason;
        FilterMap { inner: self, f }
    }

    /// Erase the concrete strategy type.
    fn boxed(self) -> BoxedStrategy<Self::Value>
    where
        Self: Sized + 'static,
    {
        Box::new(self)
    }
}

/// A type-erased strategy.
pub type BoxedStrategy<T> = Box<dyn Strategy<Value = T>>;

impl<T> Strategy for BoxedStrategy<T> {
    type Value = T;

    fn gen_value(&self, rng: &mut TestRng) -> Option<T> {
        (**self).gen_value(rng)
    }
}

/// Strategy always yielding a clone of one value.
#[derive(Debug, Clone)]
pub struct Just<T: Clone>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;

    fn gen_value(&self, _rng: &mut TestRng) -> Option<T> {
        Some(self.0.clone())
    }
}

/// Uniform choice among erased strategies (built by `prop_oneof!`).
pub struct Union<T> {
    options: Vec<BoxedStrategy<T>>,
}

impl<T> Union<T> {
    /// Choose uniformly among `options`.
    pub fn new(options: Vec<BoxedStrategy<T>>) -> Union<T> {
        assert!(!options.is_empty(), "prop_oneof! needs at least one option");
        Union { options }
    }
}

impl<T> Strategy for Union<T> {
    type Value = T;

    fn gen_value(&self, rng: &mut TestRng) -> Option<T> {
        let pick = rng.index(self.options.len());
        self.options[pick].gen_value(rng)
    }
}

/// See [`Strategy::prop_map`].
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S, O, F> Strategy for Map<S, F>
where
    S: Strategy,
    F: Fn(S::Value) -> O,
{
    type Value = O;

    fn gen_value(&self, rng: &mut TestRng) -> Option<O> {
        self.inner.gen_value(rng).map(&self.f)
    }
}

/// See [`Strategy::prop_filter`].
pub struct Filter<S, F> {
    inner: S,
    pred: F,
}

impl<S, F> Strategy for Filter<S, F>
where
    S: Strategy,
    F: Fn(&S::Value) -> bool,
{
    type Value = S::Value;

    fn gen_value(&self, rng: &mut TestRng) -> Option<S::Value> {
        self.inner.gen_value(rng).filter(|v| (self.pred)(v))
    }
}

/// See [`Strategy::prop_filter_map`].
pub struct FilterMap<S, F> {
    inner: S,
    f: F,
}

impl<S, O, F> Strategy for FilterMap<S, F>
where
    S: Strategy,
    F: Fn(S::Value) -> Option<O>,
{
    type Value = O;

    fn gen_value(&self, rng: &mut TestRng) -> Option<O> {
        self.inner.gen_value(rng).and_then(&self.f)
    }
}

macro_rules! int_strategies {
    ($($t:ty),*) => {$(
        impl Strategy for core::ops::Range<$t> {
            type Value = $t;

            fn gen_value(&self, rng: &mut TestRng) -> Option<$t> {
                assert!(self.start < self.end, "strategy over an empty range");
                let span = (self.end as i128 - self.start as i128) as u128;
                let v = (rng.next_u64() as u128) % span;
                Some((self.start as i128 + v as i128) as $t)
            }
        }

        impl Strategy for core::ops::RangeInclusive<$t> {
            type Value = $t;

            fn gen_value(&self, rng: &mut TestRng) -> Option<$t> {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "strategy over an empty range");
                let span = (hi as i128 - lo as i128) as u128 + 1;
                let v = (rng.next_u64() as u128) % span;
                Some((lo as i128 + v as i128) as $t)
            }
        }
    )*};
}
int_strategies!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

macro_rules! float_strategies {
    ($($t:ty),*) => {$(
        impl Strategy for core::ops::Range<$t> {
            type Value = $t;

            fn gen_value(&self, rng: &mut TestRng) -> Option<$t> {
                assert!(self.start < self.end, "strategy over an empty range");
                let unit = (rng.next_u64() >> 11) as f64 / (1u64 << 53) as f64;
                Some(self.start + (unit as $t) * (self.end - self.start))
            }
        }
    )*};
}
float_strategies!(f32, f64);

/// Whole-domain strategy for primitives, used via [`any`].
#[derive(Debug, Clone, Copy, Default)]
pub struct Any<T> {
    _marker: core::marker::PhantomData<T>,
}

/// The full domain of `T`, like `proptest::prelude::any`.
pub fn any<T>() -> Any<T>
where
    Any<T>: Strategy<Value = T>,
{
    Any { _marker: core::marker::PhantomData }
}

macro_rules! any_int {
    ($($t:ty),*) => {$(
        impl Strategy for Any<$t> {
            type Value = $t;

            fn gen_value(&self, rng: &mut TestRng) -> Option<$t> {
                Some(rng.next_u64() as $t)
            }
        }
    )*};
}
any_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Strategy for Any<bool> {
    type Value = bool;

    fn gen_value(&self, rng: &mut TestRng) -> Option<bool> {
        Some(rng.next_u64() & 1 == 1)
    }
}

macro_rules! tuple_strategies {
    ($(($($s:ident $idx:tt),+);)*) => {$(
        impl<$($s: Strategy),+> Strategy for ($($s,)+) {
            type Value = ($($s::Value,)+);

            fn gen_value(&self, rng: &mut TestRng) -> Option<Self::Value> {
                Some(($(self.$idx.gen_value(rng)?,)+))
            }
        }
    )*};
}

tuple_strategies! {
    (A 0);
    (A 0, B 1);
    (A 0, B 1, C 2);
    (A 0, B 1, C 2, D 3);
    (A 0, B 1, C 2, D 3, E 4);
    (A 0, B 1, C 2, D 3, E 4, F 5);
    (A 0, B 1, C 2, D 3, E 4, F 5, G 6);
    (A 0, B 1, C 2, D 3, E 4, F 5, G 6, H 7);
    (A 0, B 1, C 2, D 3, E 4, F 5, G 6, H 7, I 8);
    (A 0, B 1, C 2, D 3, E 4, F 5, G 6, H 7, I 8, J 9);
}

#[cfg(test)]
mod tests {
    use super::*;

    fn rng() -> TestRng {
        TestRng::from_name("strategy-tests")
    }

    #[test]
    fn ranges_generate_in_bounds() {
        let mut r = rng();
        for _ in 0..200 {
            let v = (3usize..9).gen_value(&mut r).unwrap();
            assert!((3..9).contains(&v));
        }
    }

    #[test]
    fn map_filter_compose() {
        let s = (0usize..10).prop_map(|v| v * 2).prop_filter("keep small", |v| *v < 10);
        let mut r = rng();
        let mut seen = 0;
        for _ in 0..200 {
            if let Some(v) = s.gen_value(&mut r) {
                assert!(v % 2 == 0 && v < 10);
                seen += 1;
            }
        }
        assert!(seen > 0);
    }

    #[test]
    fn union_picks_every_arm() {
        let u = Union::new(vec![Just(1u32).boxed(), Just(2u32).boxed(), Just(3u32).boxed()]);
        let mut r = rng();
        let mut hits = [false; 3];
        for _ in 0..100 {
            hits[u.gen_value(&mut r).unwrap() as usize - 1] = true;
        }
        assert_eq!(hits, [true; 3]);
    }

    #[test]
    fn tuples_thread_the_rng() {
        let mut r = rng();
        let (a, b) = (0usize..4, 10usize..14).gen_value(&mut r).unwrap();
        assert!((0..4).contains(&a) && (10..14).contains(&b));
    }
}
