//! Offline stand-in for `parking_lot`: `Mutex`/`RwLock`/`Condvar` over
//! `std::sync` with parking_lot's no-poisoning API (lock methods return
//! guards directly).

use std::sync;

/// A mutex whose `lock` never reports poisoning.
#[derive(Debug, Default)]
pub struct Mutex<T> {
    inner: sync::Mutex<T>,
}

impl<T> Mutex<T> {
    /// Wrap `value`.
    pub fn new(value: T) -> Self {
        Mutex { inner: sync::Mutex::new(value) }
    }

    /// Acquire the lock.
    pub fn lock(&self) -> sync::MutexGuard<'_, T> {
        self.inner.lock().unwrap_or_else(|e| e.into_inner())
    }

    /// Consume the mutex, returning the inner value.
    pub fn into_inner(self) -> T {
        self.inner.into_inner().unwrap_or_else(|e| e.into_inner())
    }
}

/// A reader-writer lock without poisoning.
#[derive(Debug, Default)]
pub struct RwLock<T> {
    inner: sync::RwLock<T>,
}

impl<T> RwLock<T> {
    /// Wrap `value`.
    pub fn new(value: T) -> Self {
        RwLock { inner: sync::RwLock::new(value) }
    }

    /// Acquire a shared read guard.
    pub fn read(&self) -> sync::RwLockReadGuard<'_, T> {
        self.inner.read().unwrap_or_else(|e| e.into_inner())
    }

    /// Acquire an exclusive write guard.
    pub fn write(&self) -> sync::RwLockWriteGuard<'_, T> {
        self.inner.write().unwrap_or_else(|e| e.into_inner())
    }
}

/// A condition variable compatible with [`Mutex`].
#[derive(Debug, Default)]
pub struct Condvar {
    inner: sync::Condvar,
}

impl Condvar {
    /// Create a condition variable.
    pub fn new() -> Self {
        Condvar { inner: sync::Condvar::new() }
    }

    /// Wake one waiter.
    pub fn notify_one(&self) {
        self.inner.notify_one();
    }

    /// Wake all waiters.
    pub fn notify_all(&self) {
        self.inner.notify_all();
    }

    /// Atomically release the guard and wait for a notification.
    pub fn wait<'a, T>(&self, guard: sync::MutexGuard<'a, T>) -> sync::MutexGuard<'a, T> {
        self.inner.wait(guard).unwrap_or_else(|e| e.into_inner())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mutex_roundtrip() {
        let m = Mutex::new(5);
        *m.lock() += 1;
        assert_eq!(*m.lock(), 6);
        assert_eq!(m.into_inner(), 6);
    }

    #[test]
    fn rwlock_roundtrip() {
        let l = RwLock::new(1);
        assert_eq!(*l.read(), 1);
        *l.write() = 2;
        assert_eq!(*l.read(), 2);
    }
}
