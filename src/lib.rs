//! # finegrain — fine-grained parallelism for CNN training
//!
//! A Rust reproduction of Dryden, Maruyama, Benson, Moon, Snir &
//! Van Essen, *Improving Strong-Scaling of CNN Training by Exploiting
//! Finer-Grained Parallelism* (IPDPS 2019): distributed-memory
//! convolution with sample, spatial, hybrid, channel and filter
//! parallelism, a distributed tensor library with halo exchange and
//! redistribution, a performance model, and a parallel-execution-strategy
//! optimizer — plus every substrate (communicator, kernels, serial
//! trainer, models, synthetic data) needed to run it end to end.
//!
//! This crate is a facade: it re-exports the workspace crates under
//! stable names. Start with [`core::DistExecutor`] (distributed
//! training), [`perf::StrategyOptimizer`] (automatic parallelization),
//! or the `examples/` directory.
//!
//! ```
//! use finegrain::comm::run_ranks;
//! use finegrain::core::{DistExecutor, Strategy};
//! use finegrain::nn::{Network, NetworkSpec};
//! use finegrain::tensor::{ProcGrid, Shape4, Tensor};
//! use finegrain::kernels::Labels;
//!
//! // A small segmentation CNN, spatially partitioned over 4 ranks.
//! let mut spec = NetworkSpec::new();
//! let i = spec.input("x", 3, 16, 16);
//! let c = spec.conv("conv", i, 8, 3, 1, 1);
//! let r = spec.relu("relu", c);
//! let p = spec.conv("pred", r, 2, 1, 1, 0);
//! spec.loss("loss", p);
//!
//! let net = Network::init(spec.clone(), 42);
//! let exec = DistExecutor::new(spec, Strategy::uniform(&net.spec, ProcGrid::spatial(2, 2)), 2)
//!     .expect("valid strategy");
//! let x = Tensor::from_fn(Shape4::new(2, 3, 16, 16), |_, c, h, w| (c + h + w) as f32 * 0.1);
//! let labels = Labels::per_pixel(2, 16, 16, vec![0; 2 * 256]);
//! let losses = run_ranks(4, |comm| exec.loss_and_grads(comm, &net.params, &x, &labels).0);
//! assert!(losses.iter().all(|l| *l == losses[0]), "ranks agree on the loss");
//! ```

/// The rank-threaded simulated communicator (MPI/NCCL stand-in).
pub use fg_comm as comm;
/// The paper's contribution: distributed convolution and the executor.
pub use fg_core as core;
/// Synthetic datasets.
pub use fg_data as data;
/// CPU compute kernels (cuDNN stand-in).
pub use fg_kernels as kernels;
/// ResNet-50 and the mesh-tangling models.
pub use fg_models as models;
/// Serial network definition and training.
pub use fg_nn as nn;
/// Performance model and strategy optimizer.
pub use fg_perf as perf;
/// Inference serving tier: admission, batching, replica routing.
pub use fg_serve as serve;
/// Distributed NCHW tensors: halo exchange, redistribution.
pub use fg_tensor as tensor;
