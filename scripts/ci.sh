#!/usr/bin/env bash
# Repository CI gate: formatting, lints, build, and the tier-1 test
# suite. Run from anywhere; everything executes at the repo root.
#
#   scripts/ci.sh          # full gate
#   scripts/ci.sh --quick  # skip the release build (lints + tests only)
#
# The workspace vendors its external dependencies (vendor/), so every
# cargo invocation runs --offline; no network access is required.
set -euo pipefail
cd "$(dirname "$0")/.."

quick=0
for arg in "$@"; do
    case "$arg" in
    --quick) quick=1 ;;
    *)
        echo "unknown argument: $arg" >&2
        exit 2
        ;;
    esac
done

step() { printf '\n==> %s\n' "$*"; }

step "cargo fmt --all --check"
cargo fmt --all --check

step "cargo clippy --workspace --all-targets (deny warnings)"
cargo clippy --workspace --all-targets --offline -- -D warnings

if [ "$quick" -eq 0 ]; then
    step "cargo build --release"
    cargo build --release --offline
fi

# Run every test under the deadlock watchdog (a hung collective fails
# with a wait-graph diagnostic instead of stalling the CI job) and with
# end-to-end message integrity envelopes on (every world-internal send
# is checksummed and sequence-numbered; message/byte counts are
# unchanged, so count-asserting tests still hold).
export FG_COMM_WATCHDOG=1
export FG_COMM_INTEGRITY=1

step "tier-1 tests (root package, watchdog + integrity on)"
cargo test -q --offline

step "workspace tests (watchdog + integrity on)"
cargo test -q --offline --workspace

step "chaos suite (fault injection + corruption repair, pinned seeds)"
cargo test -q --offline -p fg-comm --test faults

step "elastic degradation (permanent rank loss, watchdog + integrity on)"
cargo test -q --offline --test resilience degrade

printf '\nCI gate passed.\n'
