#!/usr/bin/env bash
# Repository CI gate: formatting, lints, build, and the tier-1 test
# suite. Run from anywhere; everything executes at the repo root.
#
#   scripts/ci.sh          # full gate
#   scripts/ci.sh --quick  # skip the release build (lints + tests only)
#
# The workspace vendors its external dependencies (vendor/), so every
# cargo invocation runs --offline; no network access is required.
set -euo pipefail
cd "$(dirname "$0")/.."

quick=0
for arg in "$@"; do
    case "$arg" in
    --quick) quick=1 ;;
    *)
        echo "unknown argument: $arg" >&2
        exit 2
        ;;
    esac
done

step() { printf '\n==> %s\n' "$*"; }

step "cargo fmt --all --check"
cargo fmt --all --check

step "cargo clippy --workspace --all-targets (deny warnings)"
cargo clippy --workspace --all-targets --offline -- -D warnings

# Custom lint: raw point-to-point calls (`.send(…)` / `.recv::<…>(…)`)
# are forbidden outside the communicator crate and the plan-execution
# modules. Everything else must go through compiled plans (HaloPlan,
# ShufflePlan, collectives), which the static verifier (fg-verify) can
# see; a stray raw send is invisible to it and can deadlock.
# Allowlist:
#   crates/comm/              the communicator implementation + its tests
#   crates/tensor/src/halo.rs HaloPlan execution (start/finish exchange)
#   crates/core/src/spatial3d.rs  3-D halo-plan execution
#   crates/serve/             crossbeam job/reply/response channels
#                             (admission queue → batcher → dispatcher →
#                             replica), not Communicator p2p — the
#                             serving tier's world-internal traffic
#                             still goes through compiled plans
# `rec.send/recv` lines are TraceRecorder bookkeeping, not wire calls.
step "lint: raw Communicator::send/recv confined to comm + plan execution"
raw_p2p=$(grep -rnE '\.(send|recv)(::<[^>]*>)?\(' crates --include='*.rs' |
    grep -vE '^crates/comm/' |
    grep -vE '^crates/tensor/src/halo\.rs' |
    grep -vE '^crates/core/src/spatial3d\.rs' |
    grep -vE '^crates/serve/' |
    grep -vE '\brec\.(send|recv)\(' || true)
if [ -n "$raw_p2p" ]; then
    echo "raw Communicator::send/recv outside the allowlisted modules:" >&2
    echo "$raw_p2p" >&2
    exit 1
fi

# Custom lint: direct tensor allocation on the step path. The executor
# runs training steps out of a per-rank bump arena sized by the static
# memory analyzer (fg-core::mem); step-transient windows must come from
# `ArenaSlot::alloc`, not ad-hoc `Vec`s the analyzer cannot see. Any
# `Vec::with_capacity(` / `vec![` / `.to_window(` in the executor/layer
# hot paths needs an `// arena-exempt: <why>` marker on the same or the
# preceding line (bookkeeping slot tables, one-element edge lists, and
# construction-time code are exempt; `.to_window_in(`, the arena-fed
# variant, does not match). `crates/core/src/layers/mod.rs` is excluded
# wholesale: it is the construction-time layer builder, never the step
# path. `#[cfg(test)]` modules are ignored.
step "lint: step-path tensor allocation goes through the arena API"
alloc_files=$(ls crates/core/src/executor.rs crates/core/src/distconv.rs \
    crates/core/src/overlap.rs crates/core/src/layers/*.rs |
    grep -v 'layers/mod\.rs')
step_alloc=$(for f in $alloc_files; do
    awk -v fn="$f" '
        /#\[cfg\(test\)\]/ { exit }
        /arena-exempt/ { skip = 2 }
        skip > 0 { skip--; next }
        /\.to_window\(|Vec::with_capacity\(|vec!\[/ { print fn ":" FNR ": " $0 }
    ' "$f"
done)
if [ -n "$step_alloc" ]; then
    echo "step-path tensor allocation outside the arena API (mark intentional" >&2
    echo "bookkeeping with '// arena-exempt: <why>'):" >&2
    echo "$step_alloc" >&2
    exit 1
fi

if [ "$quick" -eq 0 ]; then
    step "cargo build --release"
    cargo build --release --offline
fi

# Run every test under the deadlock watchdog (a hung collective fails
# with a wait-graph diagnostic instead of stalling the CI job) and with
# end-to-end message integrity envelopes on (every world-internal send
# is checksummed and sequence-numbered; message/byte counts are
# unchanged, so count-asserting tests still hold).
export FG_COMM_WATCHDOG=1
export FG_COMM_INTEGRITY=1

step "tier-1 tests (root package, watchdog + integrity on)"
cargo test -q --offline

step "workspace tests (watchdog + integrity on)"
cargo test -q --offline --workspace

step "chaos suite (fault injection + corruption repair, pinned seeds)"
cargo test -q --offline -p fg-comm --test faults

step "elastic degradation (permanent rank loss, watchdog + integrity on)"
cargo test -q --offline --test resilience degrade

# Gray-failure ladder, pinned seeds: a persistently slow rank must be
# detected (all-rank agreement), rebalanced onto a weighted layout with
# the stitched-bitwise trajectory contract, or softly evicted when
# irredeemable — all while the watchdog and integrity envelopes are
# live, and with every compiled schedule (including the weighted
# post-rebalance layouts) re-checked by the static verifier (FG_VERIFY).
step "gray-failure resilience (straggler detect/rebalance/evict, FG_VERIFY on)"
FG_VERIFY=1 cargo test -q --offline --test resilience -- \
    persistent_straggler irredeemably_slow healthy_world

# Static memory verifier, same ladder rung as FG_VERIFY: with FG_VERIFY=1
# every DistExecutor construction now also runs the tensor-liveness
# analyzer (fg-core::mem) and rejects unsound memory plans, so the
# schedule runs above already exercise it. This step pins the analyzer's
# own contracts explicitly: clean plans bound every rank on every
# model × strategy × grid, each corruption class (overlapping slots,
# undersized arena, understated halo/shuffle staging) yields a named
# violation, and a tiny FG_MEM_BUDGET rejects with the typed
# MemBudgetExceeded error before any plan executes (the mem_budget
# binary sets/unsets the env var itself).
step "memory verifier (liveness bounds, mutation catches, FG_MEM_BUDGET gate)"
FG_VERIFY=1 cargo test -q --offline -p fg-core --test mem_mutations
cargo test -q --offline -p fg-core --test mem_budget
cargo test -q --offline -p fg-perf --lib budget_rejects_over_budget_candidates_typed
FG_VERIFY=1 cargo test -q --offline -p fg-core --lib -- arena_execution static_bounds

# Serving tier: chaos traffic (lossy links + a mid-stream rank kill)
# through the full admission → batch → dispatch → replica stack. The
# contract under test: every accepted request terminates — no hangs —
# with either logits bitwise-equal to the serial reference or a typed
# error, across the kill, the world rebuild, and the breaker-probed
# re-admission. Watchdog + integrity are already exported above;
# FG_VERIFY additionally re-checks every rebuilt world's schedule.
step "serving tier smoke (chaos traffic with a mid-stream rank kill, FG_VERIFY on)"
FG_VERIFY=1 cargo test -q --offline -p fg-serve --test chaos

# Durable checkpoint store under storage chaos, pinned seeds: a rank
# dies permanently while its primary shard is deleted on every publish
# (reconstruction from ring replicas must carry the degradation rung),
# and a torn newest version must fall back to the previous verifiable
# one with a typed record — never a panic, never a silent stale resume.
# Watchdog + integrity are already exported above; FG_VERIFY re-checks
# the shrunken worlds' schedules. The scratch stores live under the OS
# temp dir, so no repo paths are dirtied.
step "storage chaos (deleted-shard reconstruction + torn-write fallback, FG_VERIFY on)"
FG_VERIFY=1 cargo test -q --offline --test resilience -- \
    deleted_shard torn_newest durable_store
FG_VERIFY=1 cargo test -q --offline -p fg-nn --test ckpt_chaos

# The event-driven virtual-time engine's correctness anchor: DES clocks
# must equal the thread-per-rank runtime's clocks exactly, and must be
# independent of the worker-pool size. Run explicitly (the suites are
# also part of the workspace run above) so a regression names itself.
step "DES equivalence + determinism (sim engine vs threaded runtime)"
cargo test -q --offline -p fg-comm --lib sim::
cargo test -q --offline --test sim_equivalence

# Sanitizer jobs — both are gated on toolchain availability because the
# build image is offline (no `rustup component add`); when the
# components are absent the jobs are skipped with a note, not failed.
#
# Exclusions (why only a subset runs under miri):
#   * miri covers fg-comm's p2p, integrity, and stats unit tests — the
#     unsafe-adjacent envelope/byte-cast paths. The runtime, collective,
#     and fault suites spawn full thread worlds with timeouts; under
#     miri's interpreter they run orders of magnitude slower and the
#     watchdog's wall-clock heuristics misfire, so they stay native.
#   * the tsan smoke runs only the watchdog tests (pending-counter
#     ordering); full-suite tsan needs -Zbuild-std and a rebuilt std.
if cargo +nightly miri --version >/dev/null 2>&1; then
    step "miri: fg-comm p2p/integrity/stats unit tests"
    MIRIFLAGS="-Zmiri-disable-isolation" \
        cargo +nightly miri test --offline -p fg-comm --lib -- p2p:: integrity:: stats::
else
    step "miri not installed for the nightly toolchain — skipping (see exclusions above)"
fi

if rustup component list --toolchain nightly --installed 2>/dev/null | grep -q '^rust-src'; then
    step "tsan smoke: watchdog pending-counter ordering"
    RUSTFLAGS="-Zsanitizer=thread" \
        cargo +nightly test --offline -Zbuild-std \
        --target x86_64-unknown-linux-gnu -p fg-comm --lib -- watchdog::
else
    step "nightly rust-src not installed (needed for -Zbuild-std) — skipping tsan smoke"
fi

printf '\nCI gate passed.\n'
