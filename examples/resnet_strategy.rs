//! Strategy optimization demo (§V-C): ask the performance model for good
//! parallel execution strategies for ResNet-50 and the mesh model on a
//! Lassen-like machine, and compare against the uniform decompositions
//! the paper's experiments use.
//!
//! ```text
//! cargo run --release --example resnet_strategy
//! ```

use finegrain::core::Strategy;
use finegrain::models::{mesh_model, resnet50, MeshSize};
use finegrain::nn::NetworkSpec;
use finegrain::perf::{network_cost, CostOptions, Platform, StrategyOptimizer};
use finegrain::tensor::ProcGrid;

fn report(platform: &Platform, name: &str, spec: &NetworkSpec, batch: usize, world: usize) {
    println!("=== {name}: batch {batch} on {world} GPUs ===");
    let (strategy, cost) = StrategyOptimizer::new(platform, spec, batch, world).optimize();
    strategy.validate(spec, batch).expect("optimizer emits valid strategies");

    // Summarize the per-layer choices as runs.
    let mut runs: Vec<(ProcGrid, usize, String)> = Vec::new();
    for (id, &g) in strategy.grids.iter().enumerate() {
        match runs.last_mut() {
            Some((last, count, _)) if *last == g => *count += 1,
            _ => runs.push((g, 1, spec.layer(id).name.clone())),
        }
    }
    for (g, count, first) in &runs {
        println!("  from {first:<24} {count:>3} layers on grid {g}");
    }
    println!("  predicted mini-batch time: {:.2} ms", cost.total() * 1e3);
    println!(
        "    forward {:.2} ms | backward compute {:.2} ms | exposed allreduce {:.2} ms | shuffles {:.2} ms",
        cost.fp * 1e3,
        cost.bp_compute * 1e3,
        cost.bpa_exposed * 1e3,
        cost.shuffle * 1e3
    );

    // Compare with uniform strategies.
    let opts = CostOptions::default();
    print!("  uniform baselines: ");
    for k in [1usize, 2, 4, 8, 16] {
        if !world.is_multiple_of(k) || world / k > batch {
            continue;
        }
        let (ph, pw) = match k {
            1 => (1, 1),
            2 => (2, 1),
            4 => (2, 2),
            8 => (4, 2),
            _ => (4, 4),
        };
        let uniform = Strategy::uniform(spec, ProcGrid::hybrid(world / k, ph, pw));
        if uniform.validate(spec, batch).is_err() {
            continue;
        }
        let t = network_cost(platform, spec, batch, &uniform, &opts).total();
        print!("{k} GPU/sample: {:.2} ms  ", t * 1e3);
    }
    println!("\n");
}

fn main() {
    let platform = Platform::lassen_like();
    println!(
        "platform: {} GPUs/node, intra {:.0} GB/s, inter {:.0} GB/s\n",
        platform.ranks_per_node,
        1.0 / platform.intra.beta / 1e9,
        1.0 / platform.inter.beta / 1e9
    );
    let mesh = mesh_model(MeshSize::OneK);
    report(&platform, "mesh-1K (memory-bound, N=1)", &mesh, 1, 4);
    report(&platform, "mesh-1K", &mesh, 4, 16);
    let rn = resnet50();
    report(&platform, "ResNet-50", &rn, 64, 16);
    report(&platform, "ResNet-50 (strong-scaled)", &rn, 16, 16);
}
