//! The finer-grained frontiers: channel/filter parallelism (§III-D) and
//! 3-D spatial parallelism (the paper's conclusion), both executed live
//! on the simulated communicator and verified against serial kernels.
//!
//! ```text
//! cargo run --release --example finer_grained
//! ```

use finegrain::comm::{run_ranks, Communicator, OpClass};
use finegrain::core::channel_filter::ChannelFilterConv2d;
use finegrain::core::spatial3d::{DistConv3d, Grid3};
use finegrain::kernels::conv::ConvGeometry;
use finegrain::kernels::conv3d::{conv3d_forward, Conv3dGeometry, Tensor5};
use finegrain::tensor::{Box4, Shape4, Tensor};

fn main() {
    channel_filter_demo();
    println!();
    spatial_3d_demo();
}

/// §III-D: a res5-style layer (many channels, tiny spatial domain) split
/// over channels/filters across 4 ranks.
fn channel_filter_demo() {
    println!("=== channel/filter parallelism (§III-D) ===");
    let geom = ConvGeometry::square(7, 7, 1, 1, 0);
    let (n, c, f, parts) = (4usize, 256usize, 128usize, 4usize);
    let layer = ChannelFilterConv2d::new(n, c, f, geom, parts);
    let x = Tensor::from_fn(Shape4::new(n, c, 7, 7), |k, ci, h, w| {
        ((k + ci + h + w) % 7) as f32 * 0.2 - 0.6
    });
    let w = Tensor::from_fn(Shape4::new(f, c, 1, 1), |fi, ci, _, _| {
        ((fi * 3 + ci) % 11) as f32 * 0.05 - 0.25
    });
    let serial = finegrain::kernels::conv::conv2d_forward(&x, &w, None, &geom);

    let outs = run_ranks(parts, |comm| {
        let r = comm.rank();
        let cb = layer.c_block(r);
        let (w_c, w_f) = layer.shard_weights(&w, r);
        let x_loc = x.slice_box(&Box4::new([0, cb.start, 0, 0], [n, cb.end, 7, 7]));
        let y_loc = layer.forward(comm, &x_loc, &w_c);
        let _ = w_f; // used by backward-data; forward demo only
        let bytes = comm.stats().total_bytes();
        (y_loc, bytes)
    });
    // Verify every rank's filter block against the serial result.
    for (r, (y_loc, bytes)) in outs.iter().enumerate() {
        let fb = layer.f_block(r);
        let want = serial.slice_box(&Box4::new([0, fb.start, 0, 0], [n, fb.end, 7, 7]));
        y_loc.assert_close(&want, 1e-4);
        println!(
            "  rank {r}: owns channels {:?} / filters {fb:?}, weights {}+{} of {} elems, moved {} KiB",
            layer.c_block(r),
            f * layer.c_block(r).len(),
            fb.len() * c,
            w.len(),
            bytes / 1024
        );
    }
    println!("  every filter block matches serial convolution ✓");
    println!("  (weights split 2/P per rank — the §III-D memory win)");
}

/// The conclusion's 3-D claim: partition a volume over a 2×2×2 grid and
/// show face/edge/corner halo exchange with bitwise-equal results.
fn spatial_3d_demo() {
    println!("=== 3-D spatial parallelism (conclusion) ===");
    let geom = Conv3dGeometry { in_d: 16, in_h: 16, in_w: 16, k: 3, s: 1, p: 1 };
    let grid = Grid3 { d: 2, h: 2, w: 2 };
    let (n, c, f) = (1usize, 4usize, 4usize);
    let layer = DistConv3d::new(n, c, f, geom, grid);
    let x = Tensor5::from_fn(n, c, 16, 16, 16, |_, ci, d, h, w| {
        ((ci + d + h + w) % 9) as f32 * 0.3 - 1.2
    });
    let wt = Tensor5::from_fn(f, c, 3, 3, 3, |fi, ci, a, b, e| {
        ((fi + ci + a + b + e) % 5) as f32 * 0.1 - 0.2
    });
    let serial = conv3d_forward(&x, &wt, &geom);

    let results = run_ranks(grid.size(), |comm| {
        let (lo, hi) = layer.in_box(comm.rank());
        let shard = Tensor5::from_fn(
            n,
            c,
            hi[0] - lo[0],
            hi[1] - lo[1],
            hi[2] - lo[2],
            |ni, ci, d, h, w| x.at(ni, ci, lo[0] + d, lo[1] + h, lo[2] + w),
        );
        let y = layer.forward(comm, &shard, &wt);
        let halos = comm.stats().messages(OpClass::Halo);
        (y, halos, layer.out_box(comm.rank()))
    });
    let mut checked = 0usize;
    for (y, halos, (olo, ohi)) in &results {
        for fi in 0..f {
            for d in olo[0]..ohi[0] {
                for h in olo[1]..ohi[1] {
                    for w in olo[2]..ohi[2] {
                        assert_eq!(
                            y.at(0, fi, d - olo[0], h - olo[1], w - olo[2]),
                            serial.at(0, fi, d, h, w)
                        );
                        checked += 1;
                    }
                }
            }
        }
        println!("  a rank exchanged {halos} halo messages (3 faces + 3 edges + 1 corner)");
    }
    println!("  {checked} output voxels bitwise-identical to serial 3-D convolution ✓");
}
