//! Layer microbenchmark demo (Figs. 2–3): the modeled per-layer
//! forward/backward times of the paper's four benchmark layers under
//! every parallelization scheme, plus a live distributed execution of a
//! scaled-down layer on the thread-simulated communicator with its
//! traffic statistics.
//!
//! ```text
//! cargo run --release --example layer_microbench
//! ```

use std::time::Instant;

use finegrain::comm::{run_ranks, Communicator, OpClass};
use finegrain::core::DistConv2d;
use finegrain::kernels::ConvGeometry;
use finegrain::perf::Platform;
use finegrain::tensor::{DistTensor, ProcGrid, Shape4, Tensor};

use fg_bench::experiments::microbench::{layer_series, paper_layers};

fn main() {
    let platform = Platform::lassen_like();

    println!("modeled layer microbenchmarks (Lassen-like V100 model), N = samples/group:\n");
    for (name, desc, ns) in paper_layers() {
        let n = ns[0];
        println!(
            "{name} (C={} H={} W={} F={} K={} S={}), N={n}:",
            desc.c, desc.h, desc.w, desc.f, desc.k, desc.s
        );
        println!("  {:>14} {:>12} {:>12}", "scheme", "FP", "BP");
        for p in layer_series(&platform, &desc, n, 16) {
            if p.gpus == 16 || (p.scheme == 1 && p.gpus == 1) {
                println!(
                    "  {:>10} @{:>2}G {:>10.3}ms {:>10.3}ms",
                    format!("{}/sample", p.scheme),
                    p.gpus,
                    p.fp * 1e3,
                    p.bp * 1e3
                );
            }
        }
        println!();
    }

    // Live execution: a conv1_1-like layer at 1/16 scale on 4 ranks.
    println!("live distributed execution (thread-sim, 4 ranks, conv1_1-like at 128x128):");
    let geom = ConvGeometry::square(128, 128, 5, 2, 2);
    for (label, grid) in [
        ("1 GPU/sample (sample parallel)", ProcGrid::sample(4)),
        ("2 GPUs/sample (hybrid)", ProcGrid::hybrid(2, 2, 1)),
        ("4 GPUs/sample (spatial 2x2)", ProcGrid::spatial(2, 2)),
    ] {
        let conv = DistConv2d::new(4, 18, 16, geom, grid);
        let x = Tensor::from_fn(Shape4::new(4, 18, 128, 128), |n, c, h, w| {
            ((n + c + h + w) % 7) as f32 * 0.1
        });
        let w = Tensor::from_fn(Shape4::new(16, 18, 5, 5), |f, c, r, s| {
            ((f + c + r + s) % 5) as f32 * 0.05
        });
        let start = Instant::now();
        let stats = run_ranks(4, |comm| {
            let xs = DistTensor::from_global(conv.in_dist.clone(), comm.rank(), &x, [0; 4], [0; 4]);
            let (_y, _win) = conv.forward(comm, &xs, &w, None);
            comm.stats()
        });
        let elapsed = start.elapsed().as_secs_f64();
        let halo_bytes: u64 = stats.iter().map(|s| s.bytes(OpClass::Halo)).sum();
        let halo_msgs: u64 = stats.iter().map(|s| s.messages(OpClass::Halo)).sum();
        println!(
            "  {label:<34} wall {:>7.1} ms | halo: {halo_msgs:>2} msgs, {:>8} bytes",
            elapsed * 1e3,
            halo_bytes
        );
    }
    println!("\n(1 CPU core runs all ranks: wall time ≈ total work; the halo columns show");
    println!(" the communication the schemes trade for parallelism — zero for sample parallel.)");
}
