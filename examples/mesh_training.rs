//! Mesh-tangling training demo — the paper's headline capability:
//! training on samples too large for one device's memory by spatial
//! partitioning (§VI-B1), at laptop scale.
//!
//! We run the real mesh-model architecture (same depth and channel
//! schedule, scaled input resolution) on the synthetic hydrodynamics
//! dataset, spatially partitioned over 4 simulated GPUs, and report the
//! per-rank activation memory vs the single-device requirement — the
//! quantity that makes the 2K model untrainable on one 16 GB V100 and
//! trainable with spatial parallelism.
//!
//! ```text
//! cargo run --release --example mesh_training
//! ```

use finegrain::comm::run_ranks;
use finegrain::core::{DistExecutor, Strategy};
use finegrain::data::MeshDataset;
use finegrain::models::{mesh_model_scaled, MeshSize, MESH_CHANNELS};
use finegrain::nn::{Network, Sgd};
use finegrain::tensor::ProcGrid;

fn main() {
    let input_hw = 128; // 1/8 the 1K dataset resolution; same architecture
    let batch = 2;
    let grid = ProcGrid::hybrid(2, 2, 1); // 2 samples × 2-way spatial

    let spec = mesh_model_scaled(MeshSize::OneK, input_hw);
    let shapes = spec.shapes();

    // Memory accounting, as in the paper's motivation (§I): activations
    // plus error signals, per sample.
    let act_bytes: usize = shapes.iter().map(|(c, h, w)| 2 * c * h * w * 4).sum();
    println!("mesh model at {input_hw}x{input_hw}: {} layers", spec.len());
    println!(
        "training footprint per sample: {:.1} MiB single-device, {:.1} MiB per rank at {}-way spatial",
        act_bytes as f64 / (1 << 20) as f64,
        act_bytes as f64 / (1 << 20) as f64 / grid.ranks_per_sample() as f64,
        grid.ranks_per_sample(),
    );
    println!(
        "(at the paper's full 2048x2048 that is ~46 GiB vs ~2.9 GiB at 16-way — \
         infeasible on a 16 GiB V100 without spatial parallelism)"
    );

    let net = Network::init(spec.clone(), 7);
    let strategy = Strategy::uniform(&spec, grid);
    let exec = DistExecutor::new(spec, strategy, batch).expect("valid strategy");

    let ds = MeshDataset::new(input_hw, input_hw / 64, MESH_CHANNELS, 11);
    println!("\ntraining on synthetic hydrodynamics fields ({batch} samples/batch),");
    println!("with *sharded* data loading — no rank ever holds a full sample:");
    let input_dist = finegrain::tensor::TensorDist::new(
        finegrain::tensor::Shape4::new(batch, MESH_CHANNELS, input_hw, input_hw),
        grid,
    );
    let losses = run_ranks(grid.size(), |comm| {
        use finegrain::comm::Communicator;
        let mut params = net.params.clone();
        let mut opt = Sgd::new(0.02, 0.9, 1e-4, &params);
        let mut out = Vec::new();
        for step in 0..6 {
            // Each rank generates only its shard of the inputs; labels
            // are small (the prediction map) and stay replicated.
            let x_shard = ds.shard_batch(input_dist.clone(), comm.rank(), step * batch);
            // Labels derive from the fields; the generator materializes
            // one sample at a time, never the whole batch.
            let labels = ds.batch_labels(step * batch, batch);
            let (loss, grads) = exec.loss_and_grads_sharded(comm, &params, x_shard, &labels);
            opt.step(&mut params, &grads);
            out.push(loss);
        }
        out
    });
    for (step, loss) in losses[0].iter().enumerate() {
        println!("  step {step}: loss {loss:.4}");
    }
    assert!(losses[0].last().unwrap() < losses[0].first().unwrap(), "loss should decrease");
    println!("\nloss decreased; all {} ranks agree bit-for-bit.", grid.size());
}
