//! Quickstart: train a small CNN with hybrid sample/spatial parallelism
//! and verify it matches single-device training.
//!
//! ```text
//! cargo run --release --example quickstart
//! ```

use finegrain::comm::run_ranks;
use finegrain::core::{DistExecutor, Strategy};
use finegrain::kernels::Labels;
use finegrain::nn::{Network, NetworkSpec, Sgd};
use finegrain::tensor::{ProcGrid, Shape4, Tensor};

fn main() {
    // 1. Describe a network declaratively: a small semantic-segmentation
    //    CNN in the style of the paper's mesh-tangling model.
    let mut spec = NetworkSpec::new();
    let input = spec.input("data", 4, 32, 32);
    let c1 = spec.conv("conv1", input, 16, 5, 2, 2);
    let b1 = spec.batchnorm("bn1", c1);
    let r1 = spec.relu("relu1", b1);
    let c2 = spec.conv("conv2", r1, 16, 3, 1, 1);
    let r2 = spec.relu("relu2", c2);
    let pred = spec.conv("pred", r2, 2, 1, 1, 0);
    spec.loss("loss", pred);

    // 2. Initialize parameters (seeded, so every run is reproducible).
    let serial = Network::init(spec.clone(), 2024);

    // 3. Pick a parallel execution strategy: 8 ranks as 2 sample groups,
    //    each sample split over a 2x2 spatial grid (the paper's hybrid
    //    sample/spatial parallelism).
    let grid = ProcGrid::hybrid(2, 2, 2);
    let strategy = Strategy::uniform(&spec, grid);
    let batch = 4;
    let exec = DistExecutor::new(spec, strategy, batch).expect("strategy is valid");

    // 4. Synthetic batch: smooth fields + checkerboard-ish labels.
    let x = Tensor::from_fn(Shape4::new(batch, 4, 32, 32), |n, c, h, w| {
        (((n + 1) * (c + 2)) as f32 * 0.1 * ((h as f32 * 0.4).sin() + (w as f32 * 0.3).cos()))
            .tanh()
    });
    let labels =
        Labels::per_pixel(batch, 16, 16, (0..batch * 256).map(|i| ((i / 2) % 2) as u32).collect());

    // 5. Train for a few steps on 8 simulated ranks. Every rank holds
    //    replicated parameters and sees identical losses.
    println!("training distributed over {} ranks (grid {grid})...", grid.size());
    let dist_losses = run_ranks(grid.size(), |comm| {
        let mut params = serial.params.clone();
        let mut opt = Sgd::new(0.05, 0.9, 1e-4, &params);
        (0..5)
            .map(|_| exec.train_step(comm, &mut params, &mut opt, &x, &labels))
            .collect::<Vec<_>>()
    });

    // 6. The same training run on a single device.
    let mut single = serial.clone();
    let mut opt = Sgd::new(0.05, 0.9, 1e-4, &single.params);
    let serial_losses: Vec<f64> = (0..5)
        .map(|_| {
            let (loss, grads) = single.loss_and_grads(&x, &labels);
            opt.step(&mut single.params, &grads);
            loss
        })
        .collect();

    println!("{:>6} {:>14} {:>14} {:>10}", "step", "distributed", "single-device", "rel diff");
    for (i, (d, s)) in dist_losses[0].iter().zip(&serial_losses).enumerate() {
        println!("{i:>6} {d:>14.6} {s:>14.6} {:>10.2e}", (d - s).abs() / s);
    }
    let ok = dist_losses[0]
        .iter()
        .zip(&serial_losses)
        .all(|(d, s)| (d - s).abs() < 1e-3 * s.abs().max(1.0));
    assert!(ok, "distributed training diverged from the single-device reference");
    println!("distributed == single-device: OK (the paper's exact-replication property)");
}
